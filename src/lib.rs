//! # ftr — fault tolerant routings for general networks
//!
//! Umbrella crate for the reproduction of Peleg & Simons, *On Fault
//! Tolerant Routings in General Networks* (PODC 1986 / Information and
//! Computation 74, 1987). It re-exports the workspace layers:
//!
//! * [`graph`] (`ftr-graph`) — the graph substrate: fault overlays,
//!   unit-node-capacity max flow, vertex connectivity, separators,
//!   neighborhood sets, two-trees detection, topology generators;
//! * [`core`] (`ftr-core`) — the paper's constructions (kernel,
//!   circular, tri-circular, bipolar, multiroutings, augmentation) plus
//!   surviving route graphs and the `(d, f)`-tolerance verifier;
//! * [`audit`] (`ftr-audit`) — adversarial fault-set search: a
//!   branch-and-bound searcher that certifies or refutes `(d, f)`
//!   claims orders of magnitude faster than exhaustive enumeration,
//!   emitting machine-checkable certificates with an independent
//!   re-checker;
//! * [`sim`] (`ftr-sim`) — fault scenarios, the broadcast and message
//!   protocols from the paper's introduction, churn streams, the
//!   per-theorem experiment harness and figure rendering;
//! * [`serve`] (`ftr-serve`) — the online query service: epoch-versioned
//!   snapshots of the surviving route graph, batched fault ingestion,
//!   and a line-delimited TCP protocol with client library.
//!
//! # Quickstart
//!
//! ```
//! use ftr::core::{CircularRouting, FaultStrategy, verify_tolerance};
//! use ftr::graph::gen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-connected network (t = 2 tolerated faults).
//! let network = gen::harary(3, 18)?;
//! // Theorem 10: the circular routing keeps the surviving diameter <= 6.
//! let routing = CircularRouting::build(&network)?;
//! let report = verify_tolerance(routing.routing(), 2, FaultStrategy::Exhaustive, 2);
//! assert!(report.satisfies(&routing.guarantee().claim()));
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftr_audit as audit;
pub use ftr_core as core;
pub use ftr_graph as graph;
pub use ftr_serve as serve;
pub use ftr_sim as sim;

//! Secure overlay scenario: the paper's motivating system — a network
//! that encrypts a message when it is sent and decrypts it at the
//! destination, so transmission time is dominated by *endpoint
//! processing* and proportional to the number of routes chained.
//!
//! A 20-node overlay with connectivity 3 runs the bidirectional bipolar
//! routing. We price end-to-end delivery with and without faults under
//! the endpoint-dominated cost model, and show why a routing with a
//! small surviving diameter keeps worst-case latency flat.
//!
//! Run with: `cargo run --example secure_overlay`

use ftr::core::{BipolarRouting, KernelRouting, RoutingKind};
use ftr::graph::{gen, NodeSet};
use ftr::sim::faults::FaultPlan;
use ftr::sim::message::{simulate_transmission, worst_transmission, CostModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The overlay: a long-girth ring of 20 gateways. Girth >= 5 and
    // diameter >= 5 give the two-trees property, enabling the bipolar
    // routing; connectivity 2 means t = 1 fault is tolerated.
    let overlay = gen::cycle(20)?;
    let bipolar = BipolarRouting::build(&overlay, RoutingKind::Bidirectional)?;
    let (r1, r2) = bipolar.roots();
    println!(
        "overlay: {overlay}; bipolar roots r1 = {r1}, r2 = {r2}, claim {}",
        bipolar.guarantee().claim()
    );

    // Cost model: encrypting + decrypting at every route endpoint costs
    // 100 time units; forwarding over a link costs 1.
    let model = CostModel {
        per_route: 100.0,
        per_link: 1.0,
    };

    // Fault-free delivery between two far-apart gateways.
    let clean = NodeSet::new(20);
    let tx = simulate_transmission(bipolar.routing(), &clean, 0, 10, model)
        .expect("no faults: connected");
    println!(
        "0 -> 10 fault-free: {} routes, {} links, cost {:.0}, relays {:?}",
        tx.routes_traversed, tx.links_crossed, tx.cost, tx.relay_points
    );

    // A gateway fails; the fixed routes through it are dead, but the
    // surviving graph still chains at most 5 routes (Theorem 23).
    let faults = FaultPlan::Explicit(vec![5]).materialize(20);
    let tx = simulate_transmission(bipolar.routing(), &faults, 0, 10, model)
        .expect("t = 1 fault is tolerated");
    println!(
        "0 -> 10 with gateway 5 down: {} routes, cost {:.0}, relays {:?}",
        tx.routes_traversed, tx.cost, tx.relay_points
    );

    // Worst case over every ordered pair, for each single fault.
    let mut worst_routes = 0;
    for f in 0..20u32 {
        let faults = FaultPlan::Explicit(vec![f]).materialize(20);
        let w = worst_transmission(bipolar.routing(), &faults, model)
            .expect("single faults never disconnect");
        worst_routes = worst_routes.max(w.routes_traversed);
    }
    println!(
        "worst-case routes chained over all single faults: {worst_routes} (claim: {})",
        bipolar.guarantee().claim().diameter
    );
    assert!(worst_routes <= bipolar.guarantee().claim().diameter);

    // Compare with the kernel routing: same guarantee class, different
    // constant — (max{2t,4}, t) instead of (5, t).
    let kernel = KernelRouting::build(&overlay)?;
    let mut kernel_worst = 0;
    for f in 0..20u32 {
        let faults = FaultPlan::Explicit(vec![f]).materialize(20);
        let w = worst_transmission(kernel.routing(), &faults, model)
            .expect("single faults never disconnect");
        kernel_worst = kernel_worst.max(w.routes_traversed);
    }
    println!(
        "kernel routing worst-case routes: {kernel_worst} (claim: {})",
        kernel.guarantee_theorem_3().claim().diameter
    );

    println!("endpoint-dominated latency stays bounded by the surviving diameter OK");
    Ok(())
}

//! Datacenter torus scenario: a 6x10 torus fabric (κ = 4) where racks
//! fail and the operator wants a *fixed* route table — no dynamic
//! recomputation on the data path — that still connects everyone within
//! a constant number of route hops.
//!
//! Compares the kernel routing (Theorems 3/4) against the circular
//! routing (Theorem 10) under increasing numbers of random rack
//! failures, and shows the adversarial fault search closing in on the
//! worst case faster than sampling.
//!
//! Run with: `cargo run --example datacenter_torus --release`

use ftr::core::{verify_tolerance, CircularRouting, FaultStrategy, KernelRouting, RouteTable};
use ftr::graph::{gen, traversal};
use ftr::sim::faults::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = gen::torus(6, 10)?; // 60 racks, 4-connected: t = 3
    println!(
        "fabric: {fabric}, physical diameter {:?}",
        traversal::diameter(&fabric, None)
    );

    let kernel = KernelRouting::build(&fabric)?;
    let circular = CircularRouting::build(&fabric)?;
    println!(
        "kernel separator: {:?} | circular concentrator: {:?}",
        kernel.separator(),
        circular.concentrator().members()
    );

    // Random rack failures: how do the surviving diameters compare?
    println!("\n|F| | kernel surviving diameter | circular surviving diameter");
    for f in 0..=3usize {
        let mut kernel_worst = 0u32;
        let mut circ_worst = 0u32;
        for trial in 0..20u64 {
            let faults = FaultPlan::Uniform {
                count: f,
                seed: 0xDC + trial,
            }
            .materialize(60);
            let kd = kernel
                .routing()
                .surviving(&faults)
                .diameter()
                .expect("within tolerance");
            let cd = circular
                .routing()
                .surviving(&faults)
                .diameter()
                .expect("within tolerance");
            kernel_worst = kernel_worst.max(kd);
            circ_worst = circ_worst.max(cd);
        }
        println!("  {f} | {kernel_worst} | {circ_worst}");
    }

    // The worst case is what the theorems bound: find it adversarially.
    let adversarial = FaultStrategy::Adversarial {
        restarts: 3,
        seed: 7,
    };
    let kernel_report = verify_tolerance(kernel.routing(), 3, adversarial, 4);
    let circ_report = verify_tolerance(circular.routing(), 3, adversarial, 4);
    println!(
        "\nadversarial worst case, |F| <= 3:\n  kernel:   {kernel_report}\n  circular: {circ_report}"
    );
    println!(
        "claims: kernel {} (Thm 3), circular {} (Thm 10)",
        kernel.guarantee_theorem_3().claim(),
        circular.guarantee().claim()
    );
    assert!(kernel_report.satisfies(&kernel.guarantee_theorem_3().claim()));
    assert!(circ_report.satisfies(&circular.guarantee().claim()));

    println!("\nfixed route tables survive any 3 rack failures with constant reroute depth OK");
    Ok(())
}

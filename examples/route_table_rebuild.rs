//! Route-table rebuild scenario: the introduction's broadcast
//! argument, end to end.
//!
//! "The number of broadcast rounds required to compute a new route
//! table in the presence of faults can be bounded by the diameter of
//! the surviving graph": every node broadcasts its local fault view
//! along its fixed routes, tagging messages with a route counter and
//! discarding them once the counter exceeds the bound. This example
//! runs that protocol over a faulted network and confirms the bound —
//! and shows what breaks when the counter is set below it.
//!
//! Run with: `cargo run --example route_table_rebuild`

use ftr::core::{KernelRouting, RouteTable};
use ftr::graph::{gen, NodeSet};
use ftr::sim::broadcast::simulate_broadcast;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = gen::harary(4, 20)?; // κ = 4: t = 3, Theorem 4 regime f <= 1
    let kernel = KernelRouting::build(&network)?;
    println!(
        "network: {network}, kernel claim {}",
        kernel.guarantee_theorem_4().claim()
    );

    // One router fails. Surviving diameter is at most 4 (Theorem 4).
    let faults = NodeSet::from_nodes(20, [7]);
    let diameter = kernel
        .routing()
        .surviving(&faults)
        .diameter()
        .expect("one fault is within tolerance");
    println!("fault {{7}}: surviving diameter = {diameter}");

    // Every surviving node rebuilds its table by broadcasting with a
    // route counter bound of 4. All broadcasts must complete within
    // `diameter` rounds.
    let mut max_rounds = 0;
    let mut total_messages = 0;
    for origin in 0..20u32 {
        if faults.contains(origin) {
            continue;
        }
        let out = simulate_broadcast(kernel.routing(), &faults, origin, 4);
        assert!(out.complete(), "counter bound 4 must suffice (Theorem 4)");
        max_rounds = max_rounds.max(out.rounds);
        total_messages += out.messages;
    }
    println!(
        "all 19 rebuild broadcasts complete: max rounds {max_rounds} (<= diameter {diameter}), \
         {total_messages} messages total"
    );
    assert!(max_rounds <= diameter);

    // What if the counter bound is set too low? Propagation is cut off
    // and some nodes never learn the new topology.
    let starved = simulate_broadcast(kernel.routing(), &faults, 0, 1);
    println!(
        "with counter bound 1: {} of {} survivors informed (complete: {})",
        starved.informed,
        starved.survivors,
        starved.complete()
    );

    println!("route counter = claimed surviving diameter is exactly the right budget OK");
    Ok(())
}

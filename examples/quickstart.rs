//! Quickstart: build every construction on one network, knock out
//! nodes, and watch the surviving route graph keep its promised
//! diameter.
//!
//! Run with: `cargo run --example quickstart`

use ftr::core::{
    verify_tolerance, AugmentedKernelRouting, CircularRouting, FaultStrategy, KernelRouting,
    RouteTable,
};
use ftr::graph::{gen, NodeSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-connected circulant network of 18 routers: κ = t + 1 = 3, so
    // every construction below survives any t = 2 node failures.
    let network = gen::harary(3, 18)?;
    println!("network: {network}");

    // --- The kernel routing (Dolev et al., Section 3) ----------------
    let kernel = KernelRouting::build(&network)?;
    println!(
        "kernel routing: separator {:?}, {} routes",
        kernel.separator(),
        kernel.routing().stats().routes
    );

    // Fail two nodes and inspect the surviving route graph.
    let faults = NodeSet::from_nodes(18, [4, 13]);
    let surviving = kernel.routing().surviving(&faults);
    println!(
        "after faults {{4, 13}}: surviving diameter = {:?} (Theorem 3 bound: {})",
        surviving.diameter(),
        kernel.guarantee_theorem_3().claim().diameter
    );

    // --- The circular routing (Theorem 10) ---------------------------
    let circular = CircularRouting::build(&network)?;
    println!(
        "circular routing: concentrator {:?} ({} members)",
        circular.concentrator().members(),
        circular.concentrator().len()
    );
    let report = verify_tolerance(circular.routing(), 2, FaultStrategy::Exhaustive, 4);
    println!(
        "circular tolerance (exhaustive over all |F| <= 2): {report} — claim {}",
        circular.guarantee().claim()
    );
    assert!(report.satisfies(&circular.guarantee().claim()));

    // --- Changing the network (Section 6) ----------------------------
    let augmented = AugmentedKernelRouting::build(&network)?;
    println!(
        "augmented kernel: added {} links (budget {}), claim {}",
        augmented.added_edges().len(),
        augmented.link_budget(),
        augmented.guarantee().claim()
    );
    let report = verify_tolerance(augmented.routing(), 2, FaultStrategy::Exhaustive, 4);
    println!("augmented tolerance: {report}");
    assert!(report.satisfies(&augmented.guarantee().claim()));

    println!("all claimed bounds verified exhaustively OK");
    Ok(())
}

//! Partition survival scenario: the paper's open problem 3.
//!
//! "Suppose that there are more than t faults in a network, and that
//! the network is consequently disconnected. Are there routings that
//! are well behaved so long as the network is not disconnected and
//! that continue to keep the diameter of the surviving graph small in
//! the connected components?"
//!
//! This example pushes a kernel routing past its fault budget and
//! profiles the surviving components: are the islands internally
//! routable, and how far does their internal diameter drift from the
//! in-budget constant?
//!
//! Run with: `cargo run --example partition_survival`

use ftr::core::{beyond, KernelRouting, RouteTable};
use ftr::graph::gen;
use ftr::sim::faults::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = gen::harary(3, 24)?; // κ = 3: the theorems cover t = 2
    let kernel = KernelRouting::build(&network)?;
    let t = kernel.tolerated_faults();
    println!(
        "network: {network}, budget t = {t}, in-budget claim {}",
        kernel.guarantee_theorem_3().claim()
    );

    println!("\n|F| | trials disconnected | worst component diameter | smallest 'largest island'");
    for extra in 0..=4usize {
        let f = t + extra;
        let mut disconnected = 0;
        let mut worst = 0u32;
        let mut min_largest = network.node_count();
        for trial in 0..30u64 {
            let faults = FaultPlan::Uniform {
                count: f,
                seed: 1000 * extra as u64 + trial,
            }
            .materialize(24);
            let profile = beyond::component_profile(&kernel.routing().surviving(&faults));
            if !profile.is_connected() {
                disconnected += 1;
            }
            if let Some(d) = profile.max_component_diameter() {
                worst = worst.max(d);
            }
            min_largest = min_largest.min(profile.largest_component());
        }
        let marker = if extra == 0 { " (within budget)" } else { "" };
        println!("  {f}{marker} | {disconnected}/30 | {worst} | {min_largest}");
    }

    println!(
        "\nwithin budget the graph never partitions (theorem); beyond it, islands stay \
         internally routable but their diameter is no longer constant — open problem 3 \
         remains open, and now you can measure candidate routings against it"
    );
    Ok(())
}

//! Hypercube cluster scenario: the introduction's reference topology.
//!
//! Dolev et al. proved the hypercube admits a bidirectional routing
//! with surviving diameter 3 and a unidirectional one with 2; this
//! example measures the canonical bit-fixing routing against those
//! quoted bounds on Q3/Q4, and runs the tri-circular machinery on a
//! bounded-degree hypercube realization (cube-connected cycles), the
//! kind of network the paper's density threshold actually covers.
//!
//! Run with: `cargo run --example hypercube_cluster --release`

use ftr::core::{
    verify_tolerance, FaultStrategy, HypercubeRouting, KernelRouting, RouteTable, RoutingKind,
};
use ftr::graph::{analysis, connectivity, gen, NodeSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Bit-fixing on the hypercube ---------------------------------
    for dim in [3usize, 4] {
        for kind in [RoutingKind::Bidirectional, RoutingKind::Unidirectional] {
            let hc = HypercubeRouting::build(dim, kind)?;
            let claim = hc.quoted_bound();
            let report = verify_tolerance(hc.routing(), claim.faults, FaultStrategy::Exhaustive, 4);
            println!(
                "Q{dim} {kind:?}: measured worst diameter {} vs quoted {} ({} fault sets)",
                report
                    .worst_diameter
                    .map_or("inf".into(), |d| d.to_string()),
                claim.diameter,
                report.sets_checked
            );
        }
    }

    // --- A bounded-degree realization: cube-connected cycles ---------
    let ccc = gen::cube_connected_cycles(4)?;
    let kappa = connectivity::vertex_connectivity(&ccc);
    println!(
        "\nCCC(4): {ccc}, connectivity {kappa}, girth {:?}",
        analysis::girth(&ccc)
    );

    // CCC is 3-regular: well under the 0.79 n^1/3 threshold at n = 64,
    // so the circular construction is guaranteed — build via kernel and
    // circular-family machinery and verify with one fault pattern.
    let kernel = KernelRouting::build(&ccc)?;
    let faults = NodeSet::from_nodes(64, [10, 33]);
    let s = kernel.routing().surviving(&faults);
    println!(
        "CCC(4) kernel routing, faults {{10, 33}}: surviving diameter {:?} (bound {})",
        s.diameter(),
        kernel.guarantee_theorem_3().claim().diameter
    );

    // The full exhaustive check over all fault pairs.
    let report = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 4);
    println!("CCC(4) kernel exhaustive: {report}");
    assert!(report.satisfies(&kernel.guarantee_theorem_3().claim()));

    println!("\nhypercube-family networks hold their bounds OK");
    Ok(())
}

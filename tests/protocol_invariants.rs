//! Protocol-level integration: the broadcast and message simulations
//! must agree with the surviving-graph metrics for every construction,
//! tying the paper's motivation (Section 1) to its theorems.

use ftr::core::{BipolarRouting, CircularRouting, KernelRouting, RouteTable, Routing, RoutingKind};
use ftr::graph::{gen, NodeSet};
use ftr::sim::broadcast::simulate_broadcast;
use ftr::sim::faults::FaultPlan;
use ftr::sim::message::{simulate_transmission, CostModel};

/// Builds one routing of each construction over its preferred network.
fn constructions() -> Vec<(&'static str, usize, Routing)> {
    let mut out = Vec::new();
    let g = gen::petersen();
    out.push((
        "kernel/petersen",
        10,
        KernelRouting::build(&g).unwrap().routing().clone(),
    ));
    let g = gen::harary(3, 18).unwrap();
    out.push((
        "circular/h3_18",
        18,
        CircularRouting::build(&g).unwrap().routing().clone(),
    ));
    let g = gen::cycle(14).unwrap();
    out.push((
        "bipolar-uni/c14",
        14,
        BipolarRouting::build(&g, RoutingKind::Unidirectional)
            .unwrap()
            .routing()
            .clone(),
    ));
    let g = gen::cycle(14).unwrap();
    out.push((
        "bipolar-bi/c14",
        14,
        BipolarRouting::build(&g, RoutingKind::Bidirectional)
            .unwrap()
            .routing()
            .clone(),
    ));
    out
}

#[test]
fn broadcast_rounds_equal_surviving_eccentricity_everywhere() {
    for (name, n, routing) in constructions() {
        for trial in 0..4u64 {
            let faults = FaultPlan::Uniform {
                count: 1,
                seed: trial,
            }
            .materialize(n);
            let s = routing.surviving(&faults);
            let Some(diam) = s.diameter() else {
                panic!("{name}: one fault disconnected the surviving graph");
            };
            for origin in 0..n as u32 {
                if faults.contains(origin) {
                    continue;
                }
                let out = simulate_broadcast(&routing, &faults, origin, diam + 1);
                assert!(out.complete(), "{name}: broadcast from {origin} incomplete");
                assert!(
                    out.rounds <= diam,
                    "{name}: {} rounds > diameter {diam}",
                    out.rounds
                );
            }
        }
    }
}

#[test]
fn transmissions_match_surviving_distances_everywhere() {
    let model = CostModel::endpoint_dominated();
    for (name, n, routing) in constructions() {
        let faults = FaultPlan::Uniform { count: 1, seed: 99 }.materialize(n);
        let s = routing.surviving(&faults);
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                if src == dst || faults.contains(src) || faults.contains(dst) {
                    continue;
                }
                let tx = simulate_transmission(&routing, &faults, src, dst, model)
                    .unwrap_or_else(|| panic!("{name}: {src}->{dst} unroutable"));
                assert_eq!(
                    tx.routes_traversed,
                    s.distance(src, dst),
                    "{name}: transmission took a non-minimal route chain"
                );
                // relay chain must consist of surviving routes
                for w in tx.relay_points.windows(2) {
                    assert!(s.has_edge(w[0], w[1]), "{name}: dead relay edge");
                }
            }
        }
    }
}

#[test]
fn message_cost_scales_with_route_count_not_length() {
    // Under the endpoint-dominated model, a two-route chain costs more
    // than any one-route delivery, regardless of physical length.
    let g = gen::cycle(16).unwrap();
    let kernel = KernelRouting::build(&g).unwrap();
    let clean = NodeSet::new(16);
    let model = CostModel {
        per_route: 1000.0,
        per_link: 1.0,
    };
    let mut one_route_max = f64::MIN;
    let mut two_route_min = f64::MAX;
    for src in 0..16u32 {
        for dst in 0..16u32 {
            if src == dst {
                continue;
            }
            let tx = simulate_transmission(kernel.routing(), &clean, src, dst, model).unwrap();
            match tx.routes_traversed {
                1 => one_route_max = one_route_max.max(tx.cost),
                2 => two_route_min = two_route_min.min(tx.cost),
                _ => {}
            }
        }
    }
    assert!(
        one_route_max < two_route_min,
        "endpoint processing must dominate: 1-route max {one_route_max} vs 2-route min {two_route_min}"
    );
}

#[test]
fn broadcast_respects_claim_bound_as_route_counter() {
    // Setting the route counter to the construction's claimed diameter
    // always completes the broadcast within the fault budget.
    let g = gen::harary(3, 18).unwrap();
    let circ = CircularRouting::build(&g).unwrap();
    let claim = circ.guarantee().claim();
    for trial in 0..6u64 {
        let faults = FaultPlan::Uniform {
            count: claim.faults,
            seed: 7 * trial,
        }
        .materialize(18);
        for origin in 0..18u32 {
            if faults.contains(origin) {
                continue;
            }
            let out = simulate_broadcast(circ.routing(), &faults, origin, claim.diameter);
            assert!(out.complete(), "counter = claimed diameter must suffice");
        }
    }
}

//! Integration matrix: every construction of the paper, verified
//! exhaustively against its theorem on a battery of networks.
//!
//! This is the repository's end-to-end statement of reproduction: for
//! each (theorem, graph) cell the claimed `(d, f)`-tolerance is checked
//! over *every* fault set within budget.

use ftr::core::{
    check_claim, concentrator_multirouting, full_multirouting, AugmentedKernelRouting,
    BipolarRouting, CircularRouting, KernelRouting, RoutingKind, ToleranceClaim,
    TriCircularRouting, TriCircularVariant,
};
use ftr::core::{verify_tolerance, FaultStrategy};
use ftr::graph::{connectivity, gen, Graph};

fn graphs_for_kernel() -> Vec<(&'static str, Graph)> {
    vec![
        ("C8", gen::cycle(8).unwrap()),
        ("Petersen", gen::petersen()),
        ("Torus3x4", gen::torus(3, 4).unwrap()),
        ("Q3", gen::hypercube(3).unwrap()),
        ("H(4,12)", gen::harary(4, 12).unwrap()),
        ("Wheel8", gen::wheel(8).unwrap()),
        ("K3,4", gen::complete_bipartite(3, 4).unwrap()),
        ("BF(3)", gen::wrapped_butterfly(3).unwrap()),
    ]
}

#[test]
fn theorem_3_kernel_on_all_families() {
    for (name, g) in graphs_for_kernel() {
        let kernel = KernelRouting::build(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        kernel.routing().validate(&g).unwrap();
        let (ok, report) = check_claim(kernel.routing(), &kernel.guarantee_theorem_3().claim(), 4);
        assert!(ok, "{name}: Theorem 3 violated — {report}");
    }
}

#[test]
fn theorem_4_kernel_on_all_families() {
    for (name, g) in graphs_for_kernel() {
        let kernel = KernelRouting::build(&g).unwrap();
        let (ok, report) = check_claim(kernel.routing(), &kernel.guarantee_theorem_4().claim(), 4);
        assert!(ok, "{name}: Theorem 4 violated — {report}");
    }
}

#[test]
fn theorem_10_circular_on_admitting_families() {
    for (name, g) in [
        ("C9", gen::cycle(9).unwrap()),
        ("C15", gen::cycle(15).unwrap()),
        ("H(3,20)", gen::harary(3, 20).unwrap()),
        ("CCC(3)", gen::cube_connected_cycles(3).unwrap()),
    ] {
        let circ = CircularRouting::build(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        circ.routing().validate(&g).unwrap();
        let (ok, report) = check_claim(circ.routing(), &circ.guarantee().claim(), 4);
        assert!(ok, "{name}: Theorem 10 violated — {report}");
    }
}

#[test]
fn theorem_13_tricircular_on_cycle() {
    let g = gen::cycle(45).unwrap();
    let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
    tri.routing().validate(&g).unwrap();
    let (ok, report) = check_claim(tri.routing(), &tri.guarantee().claim(), 4);
    assert!(ok, "Theorem 13 violated — {report}");
}

#[test]
fn remark_14_small_tricircular_on_cycle() {
    let g = gen::cycle(27).unwrap();
    let tri = TriCircularRouting::build(&g, TriCircularVariant::Small).unwrap();
    let (ok, report) = check_claim(tri.routing(), &tri.guarantee().claim(), 4);
    assert!(ok, "Remark 14 violated — {report}");
}

#[test]
fn theorems_20_23_bipolar_on_two_trees_families() {
    for (name, g) in [
        ("C12", gen::cycle(12).unwrap()),
        ("C20", gen::cycle(20).unwrap()),
    ] {
        for kind in [RoutingKind::Unidirectional, RoutingKind::Bidirectional] {
            let b = BipolarRouting::build(&g, kind).unwrap();
            b.routing().validate(&g).unwrap();
            let (ok, report) = check_claim(b.routing(), &b.guarantee().claim(), 4);
            assert!(ok, "{name} {kind:?}: bipolar bound violated — {report}");
        }
    }
}

#[test]
fn section_6_multiroutings_meet_their_bounds() {
    let g = gen::petersen();
    let t = connectivity::vertex_connectivity(&g) - 1;

    let full = full_multirouting(&g).unwrap();
    let claim = ToleranceClaim {
        diameter: 1,
        faults: t,
    };
    let (ok, report) = check_claim(&full, &claim, 4);
    assert!(ok, "full multirouting: {report}");

    let (conc, _) = concentrator_multirouting(&g).unwrap();
    let claim = ToleranceClaim {
        diameter: 3,
        faults: t,
    };
    let (ok, report) = check_claim(&conc, &claim, 4);
    assert!(ok, "concentrator multirouting: {report}");
}

#[test]
fn section_6_augmentation_meets_bound_and_budget() {
    for (name, g) in [
        ("C10", gen::cycle(10).unwrap()),
        ("Petersen", gen::petersen()),
        ("Torus3x4", gen::torus(3, 4).unwrap()),
    ] {
        let aug = AugmentedKernelRouting::build(&g).unwrap();
        assert!(
            aug.added_edges().len() <= aug.link_budget(),
            "{name}: link budget exceeded"
        );
        let (ok, report) = check_claim(aug.routing(), &aug.guarantee().claim(), 4);
        assert!(ok, "{name}: Section 6 (3, t) bound violated — {report}");
    }
}

#[test]
fn bounds_are_tight_somewhere() {
    // The reproduction should not be vacuous: at least one family must
    // actually reach the kernel's constant bound of 4 under |F| <= t/2.
    let mut reached = 0u32;
    for (_, g) in graphs_for_kernel() {
        let kernel = KernelRouting::build(&g).unwrap();
        let f = kernel.tolerated_faults() / 2;
        let report = verify_tolerance(kernel.routing(), f, FaultStrategy::Exhaustive, 4);
        if let Some(d) = report.worst_diameter {
            reached = reached.max(d);
        }
    }
    assert!(
        reached >= 3,
        "every family stayed far below the bound; the verification would be vacuous"
    );
}

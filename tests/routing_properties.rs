//! Structural audits of built routings: the paper's side claims that
//! are easy to state but easy to get wrong — the miserly single-route
//! property, bidirectional closure, shortcut-rule conformance, and the
//! CIRC/B-POL component coverage arguments.

use ftr::core::{
    BipolarRouting, CircularRouting, KernelRouting, RoutingKind, TriCircularRouting,
    TriCircularVariant,
};
use ftr::graph::{gen, Node, NodeSet};

#[test]
fn kernel_routes_use_direct_edges_for_adjacent_pairs() {
    // Shortcut rule + KERNEL 2: every adjacent routed pair must use the
    // single edge.
    for g in [gen::petersen(), gen::torus(3, 4).unwrap()] {
        let kernel = KernelRouting::build(&g).unwrap();
        for (s, d, view) in kernel.routing().routes() {
            if g.has_edge(s, d) {
                assert_eq!(view.len(), 1, "adjacent pair ({s},{d}) routed indirectly");
            }
        }
    }
}

#[test]
fn kernel_covers_exactly_edges_and_tree_routes() {
    // Route pairs are: adjacent pairs, plus (x, m)/(m, x) for x outside
    // the separator and some m inside — nothing else (miserly routing).
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let m: NodeSet = NodeSet::from_nodes(10, kernel.separator().iter().copied());
    for (s, d, _) in kernel.routing().routes() {
        let adjacent = g.has_edge(s, d);
        let tree_pair = (m.contains(s) && !m.contains(d)) || (!m.contains(s) && m.contains(d));
        assert!(
            adjacent || tree_pair,
            "unexpected route pair ({s}, {d}) in kernel routing"
        );
    }
}

#[test]
fn circular_components_respect_the_forward_range() {
    // CIRC 2's range restriction: nodes of Γ_i route only into the
    // forward half, so no pair of Γ-nodes is routed from both sides.
    let g = gen::harary(3, 20).unwrap();
    let circ = CircularRouting::build(&g).unwrap();
    let conc = circ.concentrator();
    let k = conc.len();
    let half = k.div_ceil(2);
    for (s, d, _) in circ.routing().routes() {
        if g.has_edge(s, d) {
            continue; // CIRC 3 edge route
        }
        let (ci, cj) = (conc.circle_of(s), conc.circle_of(d));
        if let (Some(i), Some(j)) = (ci, cj) {
            // bidirectional closure registers both orientations; the
            // underlying component must have j in i's forward half or
            // i in j's forward half, never both
            let fwd_ij = (1..half).any(|x| (i + x) % k == j);
            let fwd_ji = (1..half).any(|x| (j + x) % k == i);
            assert!(
                fwd_ij ^ fwd_ji || i == j,
                "pair ({s}, {d}) crosses circles {i} and {j} in both directions"
            );
        }
    }
}

#[test]
fn tricircular_routes_never_skip_a_circle_backwards() {
    let g = gen::cycle(45).unwrap();
    let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
    let conc = tri.concentrator();
    let s_size = tri.circle_size();
    for (s, d, _) in tri.routing().routes() {
        if g.has_edge(s, d) {
            continue;
        }
        if let (Some(gi), Some(gj)) = (conc.circle_of(s), conc.circle_of(d)) {
            let (ci, cj) = (gi / s_size, gj / s_size);
            // allowed: same circle (T-CIRC 2) or adjacent circles
            // (T-CIRC 3, either orientation after bidirectional closure)
            let diff = (3 + cj as i64 - ci as i64) % 3;
            assert!(
                diff == 0 || diff == 1 || diff == 2,
                "impossible circle relation"
            );
            // both-direction definitions would need diff 1 AND 2
            // simultaneously for the same unordered pair, which the
            // conflict-free insert already rules out; spot-check the
            // pair really has exactly one stored path.
            assert!(tri.routing().route(d, s).is_some(), "bidirectional closure");
        }
    }
}

#[test]
fn bipolar_unidirectional_has_exact_reverse_closure() {
    // After B-POL 5, the set of routed ordered pairs is symmetric even
    // though the paths themselves may differ per direction.
    let g = gen::cycle(16).unwrap();
    let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
    let mut forward: Vec<(Node, Node)> = b.routing().routes().map(|(s, d, _)| (s, d)).collect();
    let mut backward: Vec<(Node, Node)> = b.routing().routes().map(|(s, d, _)| (d, s)).collect();
    forward.sort_unstable();
    backward.sort_unstable();
    assert_eq!(forward, backward);
}

#[test]
fn bipolar_routes_every_node_to_both_poles() {
    let g = gen::cycle(16).unwrap();
    let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
    let m1 = NodeSet::from_nodes(16, b.m1().iter().copied());
    let m2 = NodeSet::from_nodes(16, b.m2().iter().copied());
    for x in 0..16u32 {
        if !m1.contains(x) {
            let count = b
                .m1()
                .iter()
                .filter(|&&m| b.routing().route(x, m).is_some())
                .count();
            assert!(
                count >= 2,
                "node {x} reaches only {count} of M1 (t+1 = 2 needed)"
            );
        }
        if !m2.contains(x) {
            let count = b
                .m2()
                .iter()
                .filter(|&&m| b.routing().route(x, m).is_some())
                .count();
            assert!(count >= 2, "node {x} reaches only {count} of M2");
        }
    }
}

#[test]
fn stats_reflect_construction_scale() {
    let g = gen::harary(3, 20).unwrap();
    let kernel = KernelRouting::build(&g).unwrap();
    let stats = kernel.routing().stats();
    assert!(stats.routes >= 2 * g.edge_count(), "edge routes both ways");
    assert!(stats.max_route_len >= 1);
    assert!(stats.mean_route_len >= 1.0);
    assert!(stats.stored_paths <= stats.routes);
}

#[test]
fn constructions_are_deterministic() {
    // Same graph in, same routing out — required for reproducible tables.
    let g = gen::harary(3, 18).unwrap();
    let a = CircularRouting::build(&g).unwrap();
    let b = CircularRouting::build(&g).unwrap();
    assert_eq!(a.concentrator().members(), b.concentrator().members());
    let mut ra: Vec<(Node, Node, Vec<Node>)> = a
        .routing()
        .routes()
        .map(|(s, d, v)| (s, d, v.nodes()))
        .collect();
    let mut rb: Vec<(Node, Node, Vec<Node>)> = b
        .routing()
        .routes()
        .map(|(s, d, v)| (s, d, v.nodes()))
        .collect();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
}

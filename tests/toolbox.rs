//! Cross-crate toolbox test: graph6 interchange, vulnerability
//! screening, churn simulation and beyond-budget profiling working
//! together, the way a deployment study would chain them.

use ftr::core::{beyond, KernelRouting, RouteTable};
use ftr::graph::{connectivity, gen, io, vulnerability, NodeSet};
use ftr::sim::churn::{simulate_churn, ChurnConfig};

#[test]
fn graph6_round_trip_preserves_construction_results() {
    // Serialize a topology, reload it, and confirm the construction
    // produces the identical route table.
    let original = gen::petersen();
    let encoded = io::to_graph6(&original);
    let reloaded = io::from_graph6(&encoded).unwrap();
    assert_eq!(original, reloaded);

    let a = KernelRouting::build(&original).unwrap();
    let b = KernelRouting::build(&reloaded).unwrap();
    assert_eq!(a.separator(), b.separator());
    assert_eq!(a.routing().route_count(), b.routing().route_count());
    for (s, d, view) in a.routing().routes() {
        let other = b.routing().route(s, d).expect("same pairs routed");
        assert_eq!(view.nodes(), other.nodes());
    }
}

#[test]
fn vulnerability_screen_agrees_with_connectivity() {
    for (g, expect_robust) in [
        (gen::petersen(), true),
        (gen::cycle(9).unwrap(), true),
        (gen::path_graph(6).unwrap(), false),
        (gen::star(5).unwrap(), false),
        (gen::hypercube(4).unwrap(), true),
    ] {
        assert_eq!(
            vulnerability::survives_any_single_fault(&g),
            expect_robust,
            "{g:?}"
        );
        assert_eq!(connectivity::is_k_connected(&g, 2), expect_robust, "{g:?}");
    }
}

#[test]
fn deployment_study_pipeline() {
    // 1. Receive a topology in graph6 (here: a 4-connected circulant).
    let wire = io::to_graph6(&gen::harary(4, 20).unwrap());
    let network = io::from_graph6(&wire).unwrap();

    // 2. Screen it: no single point of failure, measure κ.
    assert!(vulnerability::survives_any_single_fault(&network));
    let kappa = connectivity::vertex_connectivity(&network);
    assert_eq!(kappa, 4);

    // 3. Build the kernel routing and validate.
    let kernel = KernelRouting::build(&network).unwrap();
    kernel.routing().validate(&network).unwrap();

    // 4. Run three months of simulated churn: the claim must hold on
    //    every step where the live fault count is within budget.
    let report = simulate_churn(
        kernel.routing(),
        &kernel.guarantee_theorem_3().claim(),
        ChurnConfig {
            fail_rate: 0.015,
            repair_time: 4,
            steps: 400,
            seed: 2026,
        },
    );
    assert!(report.claim_held(), "{report:?}");
    assert!(report.steps_within_budget > 250, "churn config too hot");

    // 5. Stress beyond budget: components must remain internally
    //    routable even when the network splits.
    let overload = NodeSet::from_nodes(20, [0, 5, 10, 15, 3]);
    let profile = beyond::component_profile(&kernel.routing().surviving(&overload));
    assert!(profile.component_count() >= 1);
    for &(size, diameter) in &profile.components {
        assert!(size >= 1);
        assert!(
            diameter.is_some(),
            "bidirectional kernel components are internally routable"
        );
    }
}

#[test]
fn bridges_identify_the_links_worth_reinforcing() {
    // A barbell network: the experiment harness can point at the bridge
    // as the reinforcement target before any routing is attempted.
    let g = gen::cycle(6).unwrap();
    // second ring 6..11 joined by one link
    let edges: Vec<(u32, u32)> = g
        .edges()
        .chain([(6, 7), (7, 8), (8, 9), (9, 10), (10, 11), (11, 6)])
        .chain([(2, 8)])
        .collect();
    let g = ftr::graph::Graph::from_edges(12, edges).unwrap();
    let bridges = vulnerability::bridges(&g);
    assert_eq!(bridges, vec![(2, 8)]);
    assert!(!vulnerability::survives_any_single_fault(&g));
    assert_eq!(connectivity::vertex_connectivity(&g), 1);
}

//! Runs every experiment of EXPERIMENTS.md at `Quick` scale and asserts
//! that all verified bounds hold — the same code path the `experiments`
//! binary uses for the committed tables.

use ftr::sim::experiments::{self, registry, Scale};

#[test]
fn full_registry_runs_clean_at_quick_scale() {
    for spec in registry() {
        let tables = (spec.run)(Scale::Quick);
        assert!(!tables.is_empty(), "{} produced no tables", spec.id);
        for table in tables {
            assert!(
                !table.rows().is_empty(),
                "{} produced an empty table",
                table.id()
            );
            // every bound-verifying table must be all-"ok" except E14,
            // which measures a stand-in baseline
            if table.headers().iter().any(|h| h == "ok") && table.id() != "E14" {
                assert!(
                    table.all_yes("ok"),
                    "{} violated a bound:\n{table}",
                    table.id()
                );
            }
        }
    }
}

#[test]
fn registry_covers_every_experiment_id() {
    let ids: Vec<&str> = registry().iter().map(|s| s.id).collect();
    for expected in [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e14", "e15",
        "a1", "a2", "a3", "a4",
    ] {
        assert!(ids.contains(&expected), "missing experiment {expected}");
    }
}

#[test]
fn markdown_rendering_is_complete_for_all_tables() {
    for spec in registry().into_iter().take(3) {
        for table in (spec.run)(Scale::Quick) {
            let md = table.to_markdown();
            assert!(md.contains(&format!("### {}", table.id())));
            for h in table.headers() {
                assert!(md.contains(h.as_str()), "header {h} missing from markdown");
            }
            let csv = table.to_csv();
            assert_eq!(csv.lines().count(), table.rows().len() + 1);
        }
    }
}

#[test]
fn e10_trend_is_visible_even_at_quick_scale() {
    let table = experiments::e10_two_trees_probability(Scale::Quick);
    // the sparsest regime at the largest n must succeed most of the time
    let best = table
        .rows()
        .iter()
        .find(|r| r[0] == "80" && r[1] == "0.10")
        .expect("row exists");
    let frac: f64 = best[4].parse().unwrap();
    assert!(
        frac >= 0.8,
        "two-trees property should be common in the sparse regime (got {frac})"
    );
}

//! Cross-crate audit of the surviving route graph: the definition of
//! `R(G, ρ)/F` is reconstructed from first principles (paper, Section
//! 2) and compared with the library's implementation for real
//! constructions under real fault sets.

use ftr::core::{KernelRouting, RouteTable, Routing};
use ftr::graph::{gen, traversal, DiGraph, Graph, NodeSet, INFINITY};

/// First-principles reconstruction of the surviving graph.
fn brute_surviving(routing: &Routing, faults: &NodeSet) -> DiGraph {
    let n = routing.node_count();
    let mut d = DiGraph::new(n);
    for x in 0..n as u32 {
        for y in 0..n as u32 {
            if x == y || faults.contains(x) || faults.contains(y) {
                continue;
            }
            if let Some(view) = routing.route(x, y) {
                if view.nodes().iter().all(|&v| !faults.contains(v)) {
                    d.add_arc(x, y).unwrap();
                }
            }
        }
    }
    d
}

/// First-principles diameter over surviving nodes.
fn brute_diameter(d: &DiGraph, faults: &NodeSet) -> Option<u32> {
    let n = d.node_count();
    let mut worst = 0;
    for x in 0..n as u32 {
        if faults.contains(x) {
            continue;
        }
        let dist = d.bfs_distances(x, Some(faults));
        for y in 0..n as u32 {
            if y == x || faults.contains(y) {
                continue;
            }
            if dist[y as usize] == INFINITY {
                return None;
            }
            worst = worst.max(dist[y as usize]);
        }
    }
    Some(worst)
}

fn graphs() -> Vec<Graph> {
    vec![
        gen::petersen(),
        gen::torus(3, 4).unwrap(),
        gen::cycle(11).unwrap(),
        gen::hypercube(3).unwrap(),
    ]
}

#[test]
fn surviving_graph_matches_first_principles_reconstruction() {
    for g in graphs() {
        let kernel = KernelRouting::build(&g).unwrap();
        let n = g.node_count();
        // all single faults and a sweep of fault pairs
        let mut fault_sets = vec![NodeSet::new(n)];
        for f in 0..n as u32 {
            fault_sets.push(NodeSet::from_nodes(n, [f]));
        }
        for f in 0..n as u32 {
            fault_sets.push(NodeSet::from_nodes(n, [f, (f + 3) % n as u32]));
        }
        for faults in fault_sets {
            let fast = kernel.routing().surviving(&faults);
            let brute = brute_surviving(kernel.routing(), &faults);
            assert_eq!(
                fast.digraph(),
                &brute,
                "{g:?} faults {faults:?}: surviving graphs differ"
            );
            assert_eq!(
                fast.diameter(),
                brute_diameter(&brute, &faults),
                "{g:?} faults {faults:?}: diameters differ"
            );
        }
    }
}

#[test]
fn surviving_distance_agrees_with_diameter_extremes() {
    let g = gen::torus(3, 4).unwrap();
    let kernel = KernelRouting::build(&g).unwrap();
    let faults = NodeSet::from_nodes(12, [2, 9]);
    let s = kernel.routing().surviving(&faults);
    let diam = s.diameter().expect("within tolerance");
    let mut max_pairwise = 0;
    for x in 0..12u32 {
        for y in 0..12u32 {
            if x != y && !faults.contains(x) && !faults.contains(y) {
                let d = s.distance(x, y);
                assert_ne!(d, INFINITY);
                max_pairwise = max_pairwise.max(d);
            }
        }
    }
    assert_eq!(max_pairwise, diam);
}

#[test]
fn bidirectional_surviving_graphs_are_symmetric() {
    for g in graphs() {
        let kernel = KernelRouting::build(&g).unwrap();
        let n = g.node_count();
        for f in 0..n as u32 {
            let faults = NodeSet::from_nodes(n, [f]);
            let s = kernel.routing().surviving(&faults);
            for x in 0..n as u32 {
                for y in 0..n as u32 {
                    assert_eq!(
                        s.has_edge(x, y),
                        s.has_edge(y, x),
                        "bidirectional routing must yield a symmetric surviving graph"
                    );
                }
            }
        }
    }
}

#[test]
fn surviving_edges_relate_to_physical_connectivity() {
    // A surviving route implies physical connectivity between its
    // endpoints in the faulted network (routes are real paths).
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    for f1 in 0..10u32 {
        for f2 in (f1 + 1)..10u32 {
            let faults = NodeSet::from_nodes(10, [f1, f2]);
            let s = kernel.routing().surviving(&faults);
            for x in 0..10u32 {
                let phys = traversal::bfs_distances(&g, x, Some(&faults));
                for y in 0..10u32 {
                    if s.has_edge(x, y) {
                        assert_ne!(
                            phys[y as usize], INFINITY,
                            "surviving route over physically disconnected pair"
                        );
                    }
                }
            }
        }
    }
}

//! E2 bench — Theorem 4's regime: exhaustive verification with the
//! fault budget at half the connectivity margin.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::bench_kernel;
use ftr_core::{verify_tolerance, FaultStrategy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (_, kernel) = bench_kernel();
    let f = kernel.tolerated_faults() / 2;

    let mut group = c.benchmark_group("e2_kernel_half");
    group.sample_size(10);
    group.bench_function("verify_exhaustive_half_t", |b| {
        b.iter(|| verify_tolerance(black_box(kernel.routing()), f, FaultStrategy::Exhaustive, 1))
    });
    group.bench_function("verify_adversarial", |b| {
        b.iter(|| {
            verify_tolerance(
                black_box(kernel.routing()),
                f,
                FaultStrategy::Adversarial {
                    restarts: 1,
                    seed: 1,
                },
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

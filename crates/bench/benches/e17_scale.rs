//! E17 bench — scale: construct, freeze, compile and spot-verify kernel
//! routings on Harary graphs far beyond the n = 24 ceiling of the paper
//! experiments.
//!
//! For each n ∈ {256, 1024, 4096} on `H(4, n)` (κ = 4, t = 3) the bench
//! measures
//!
//! * **construct** — data-parallel per-source tree-routing derivation
//!   plus sequential insertion and the final freeze (the full
//!   `KernelRouting::build_with_separator` path),
//! * **freeze** — the builder → CSR compaction alone, on a rebuilt
//!   builder-state copy of the same table,
//! * **compile** — `CompiledRoutes::from_routing` straight off the
//!   frozen arena,
//! * **bytes/route** — the frozen CSR footprint next to the
//!   builder-state (hash map + per-path allocation) footprint it
//!   replaces,
//! * **verify** — seeded random fault sets of the full budget `t = 3`
//!   through the compiled engine; every sampled set must satisfy
//!   Theorem 3's `(max(2t, 4), t)` bound.
//!
//! The machine-readable record lands in `BENCH_scale.json` at the
//! workspace root — only when every size ran (`E17_MAX_N` caps the
//! sweep for CI smoke runs, which must not clobber the full record).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_bench::scale_graph;
use ftr_core::{verify_tolerance, Compile, FaultStrategy, KernelRouting, Routing, RoutingKind};
use std::hint::black_box;
use std::time::Instant;

/// Harary degree: κ = 4, so the kernel tolerates t = 3 faults.
const K: usize = 4;
const SIZES: [usize; 3] = [256, 1024, 4096];

fn max_n() -> usize {
    std::env::var("E17_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(*SIZES.last().expect("non-empty"))
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Point {
    n: usize,
    routes: usize,
    construct_s: f64,
    freeze_s: f64,
    compile_s: f64,
    verify_s: f64,
    trials: usize,
    worst_diameter: Option<u32>,
    claim_diameter: u32,
    frozen_bytes_per_route: f64,
    builder_bytes_per_route: f64,
}

fn measure(n: usize) -> Point {
    let g = scale_graph(n);
    // The neighborhood of any node of H(4, n) separates it from the
    // rest; handing it to the kernel directly skips the min-separator
    // search, which is not what this bench measures.
    let sep = g.neighbor_set(0);

    let start = Instant::now();
    let kernel = KernelRouting::build_with_separator(&g, &sep, K).expect("Γ(0) separates H(4, n)");
    let construct_s = start.elapsed().as_secs_f64();
    let routing = kernel.routing();
    assert!(routing.is_frozen(), "constructions return frozen tables");
    let routes = routing.route_count();
    let frozen_bytes = routing.memory_bytes();

    // Rebuild a builder-state copy of the same table to time the freeze
    // alone and to measure the footprint the CSR replaces.
    let mut rebuilt = Routing::new(n, RoutingKind::Bidirectional);
    for (s, d, view) in routing.routes() {
        if s < d {
            rebuilt.insert(view.to_path()).expect("no conflicts");
        }
    }
    let builder_bytes = rebuilt.memory_bytes();
    let start = Instant::now();
    rebuilt.freeze();
    let freeze_s = start.elapsed().as_secs_f64();
    assert_eq!(rebuilt.route_count(), routes, "freeze preserves the table");

    let start = Instant::now();
    let engine = routing.compile();
    let compile_s = start.elapsed().as_secs_f64();
    assert_eq!(engine.pair_count(), routes);

    // Spot verification through the compiled engine: seeded random
    // fault sets of the full budget t = 3.
    let trials = (8192 / n).clamp(4, 32);
    let f = kernel.tolerated_faults();
    let claim = kernel.guarantee_theorem_3().claim();
    let start = Instant::now();
    let report = verify_tolerance(
        &engine,
        f,
        FaultStrategy::RandomSample { trials, seed: 17 },
        threads(),
    );
    let verify_s = start.elapsed().as_secs_f64();
    assert!(
        report.satisfies(&claim),
        "n = {n}: Theorem 3 bound violated: {report}"
    );

    Point {
        n,
        routes,
        construct_s,
        freeze_s,
        compile_s,
        verify_s,
        trials,
        worst_diameter: report.worst_diameter,
        claim_diameter: claim.diameter,
        frozen_bytes_per_route: frozen_bytes as f64 / routes as f64,
        builder_bytes_per_route: builder_bytes as f64 / routes as f64,
    }
}

fn bench(c: &mut Criterion) {
    // Criterion-style timing of the full construction at the smallest
    // size (the larger points are single-shot hand timings below).
    let mut group = c.benchmark_group("e17_scale");
    group.sample_size(10);
    let g = scale_graph(SIZES[0]);
    let sep = g.neighbor_set(0);
    group.bench_with_input(
        BenchmarkId::new("kernel_construct", SIZES[0]),
        &(&g, &sep),
        |b, (g, sep)| {
            b.iter(|| KernelRouting::build_with_separator(black_box(g), black_box(sep), K))
        },
    );
    group.finish();

    let cap = max_n();
    let mut points = Vec::new();
    for n in SIZES.into_iter().filter(|&n| n <= cap) {
        let p = measure(n);
        eprintln!(
            "e17_scale/n={}: {} routes, construct {:.2}s, freeze {:.4}s ({:.0} routes/s), \
             compile {:.3}s, verify {} trials in {:.2}s (worst diameter {:?} <= {}), \
             {:.1} B/route frozen vs {:.1} B/route builder ({:.1}x smaller)",
            p.n,
            p.routes,
            p.construct_s,
            p.freeze_s,
            p.routes as f64 / p.freeze_s,
            p.compile_s,
            p.trials,
            p.verify_s,
            p.worst_diameter,
            p.claim_diameter,
            p.frozen_bytes_per_route,
            p.builder_bytes_per_route,
            p.builder_bytes_per_route / p.frozen_bytes_per_route,
        );
        points.push(p);
    }

    if points.len() < SIZES.len() {
        eprintln!(
            "e17_scale: capped at n <= {cap} (E17_MAX_N); BENCH_scale.json left untouched \
             — the committed record holds the full sweep"
        );
        return;
    }

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"n\": {},\n      \"routes\": {},\n      \"construct_s\": {:.4},\n      \
                 \"freeze_s\": {:.6},\n      \"freeze_routes_per_s\": {:.0},\n      \
                 \"compile_s\": {:.4},\n      \"compile_routes_per_s\": {:.0},\n      \
                 \"frozen_bytes_per_route\": {:.1},\n      \"builder_bytes_per_route\": {:.1},\n      \
                 \"verify\": {{\n        \"strategy\": \"random\",\n        \"trials\": {},\n        \
                 \"faults\": {},\n        \"seconds\": {:.3},\n        \"worst_diameter\": {},\n        \
                 \"claim_diameter\": {},\n        \"ok\": true\n      }}\n    }}",
                p.n,
                p.routes,
                p.construct_s,
                p.freeze_s,
                p.routes as f64 / p.freeze_s,
                p.compile_s,
                p.routes as f64 / p.compile_s,
                p.frozen_bytes_per_route,
                p.builder_bytes_per_route,
                p.trials,
                K - 1,
                p.verify_s,
                p.worst_diameter
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "null".into()),
                p.claim_diameter,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e17_scale\",\n  \"graph\": \"harary(4, n) kernel routing\",\n  \
         \"k\": {K},\n  \"threads\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        threads(),
        entries.join(",\n")
    );
    let path = format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    eprintln!("e17_scale: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E5 bench — Remark 14's small tri-circular variant on C27.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::{bench_tricircular_small, surviving_diameter};
use ftr_core::{TriCircularRouting, TriCircularVariant};
use ftr_graph::{gen, NodeSet};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::cycle(27).expect("valid");
    let (_, tri) = bench_tricircular_small();
    let faults = NodeSet::from_nodes(27, [5]);

    let mut group = c.benchmark_group("e5_tricircular_small");
    group.sample_size(10);
    group.bench_function("build_c27", |b| {
        b.iter(|| {
            TriCircularRouting::build(black_box(&g), TriCircularVariant::Small).expect("fits")
        })
    });
    group.bench_function("surviving_diameter_1_fault", |b| {
        b.iter(|| surviving_diameter(black_box(tri.routing()), black_box(&faults)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 bench — the tri-circular routing (Theorem 13) on C45
//! (t = 1, three circles of five members).

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::{bench_tricircular, surviving_diameter};
use ftr_core::{TriCircularRouting, TriCircularVariant};
use ftr_graph::{gen, NodeSet};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::cycle(45).expect("valid");
    let (_, tri) = bench_tricircular();
    let faults = NodeSet::from_nodes(45, [7]);

    let mut group = c.benchmark_group("e4_tricircular");
    group.sample_size(10);
    group.bench_function("build_c45", |b| {
        b.iter(|| {
            TriCircularRouting::build(black_box(&g), TriCircularVariant::Standard).expect("fits")
        })
    });
    group.bench_function("surviving_diameter_1_fault", |b| {
        b.iter(|| surviving_diameter(black_box(tri.routing()), black_box(&faults)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E15 bench — the route-counter broadcast protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_core::KernelRouting;
use ftr_graph::{gen, NodeSet};
use ftr_sim::broadcast::simulate_broadcast;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::harary(4, 20).expect("valid");
    let kernel = KernelRouting::build(&g).expect("connected");
    let faults = NodeSet::from_nodes(20, [7]);

    let mut group = c.benchmark_group("e15_broadcast");
    group.bench_function("broadcast_h4_20_one_fault", |b| {
        b.iter(|| simulate_broadcast(black_box(kernel.routing()), black_box(&faults), 0, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

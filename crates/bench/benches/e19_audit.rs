//! E19 bench — pruned audit vs exhaustive enumeration: fault-set
//! evaluation counts and wall-clock for deciding `(d, f)` claims.
//!
//! Configs cover both verdicts: advertised guarantees that hold (the
//! searcher must cover the whole space, monotone pruning doing the
//! saving) and tightened/hand-built claims that are violated (the
//! adversarial seeding finds a witness almost immediately while the
//! exhaustive verifier grinds the full space). The machine-readable
//! record lands in `BENCH_audit.json`; the run **fails** unless every
//! config reaches the same verdict as exhaustive enumeration, every
//! certificate passes the independent `ftr-audit` re-check, and at
//! least one config decides with >= 5x fewer evaluations.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_audit::{audit, check, Certificate, SearchConfig, SearchMode, Verdict};
use ftr_core::{
    verify_tolerance, Compile, FaultStrategy, Routing, RoutingKind, SchemeRegistry, SchemeSpec,
    ToleranceClaim,
};
use ftr_graph::{gen, Graph, NodeSet, Path};
use std::hint::black_box;
use std::time::Instant;

/// One measured configuration.
struct Config {
    graph_label: &'static str,
    graph: Graph,
    /// `Some(spec)` builds through the registry; `None` uses the
    /// hand-built bare ring routing (edge routes only).
    scheme: Option<&'static str>,
    /// Fault-budget override for the scheme build.
    faults: Option<usize>,
    /// Claim override (default: the scheme's advertised guarantee).
    claim: Option<ToleranceClaim>,
    note: &'static str,
}

fn ring_routing(n: usize) -> Routing {
    let mut r = Routing::new(n, RoutingKind::Bidirectional);
    for u in 0..n as u32 {
        r.insert(Path::edge(u, (u + 1) % n as u32).unwrap())
            .unwrap();
    }
    r.freeze();
    r
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            graph_label: "harary(5,24)",
            graph: gen::harary(5, 24).expect("valid"),
            scheme: Some("kernel"),
            faults: None,
            claim: None, // advertised (8, 4) per Theorem 3
            note: "advertised guarantee, holds",
        },
        Config {
            graph_label: "harary(5,24)",
            graph: gen::harary(5, 24).expect("valid"),
            scheme: Some("kernel"),
            faults: Some(2),
            claim: Some(ToleranceClaim {
                diameter: 2,
                faults: 2,
            }),
            note: "tightened below the true worst, violated",
        },
        Config {
            graph_label: "petersen",
            graph: gen::petersen(),
            scheme: Some("augment"),
            faults: None,
            claim: None, // advertised (3, 2)
            note: "advertised guarantee, holds",
        },
        Config {
            graph_label: "cycle(24)",
            graph: gen::cycle(24).expect("valid"),
            scheme: None, // bare ring, edge routes only
            faults: None,
            claim: Some(ToleranceClaim {
                diameter: 12,
                faults: 2,
            }),
            note: "hand-built ring, violated (single faults already blow the bound)",
        },
    ]
}

struct Point {
    graph: &'static str,
    source: String,
    claim: ToleranceClaim,
    verdict: &'static str,
    pruned_evals: u64,
    pruned_sets: u64,
    space: u64,
    exhaustive_evals: u64,
    speedup: f64,
    pruned_s: f64,
    exhaustive_s: f64,
    certificate_ok: bool,
}

/// Assembles the certificate for one measured configuration.
type CertBuild = Box<dyn Fn(&ftr_core::CompiledRoutes, &ftr_audit::AuditReport) -> Certificate>;

fn measure(config: &Config) -> Point {
    let n = config.graph.node_count();
    let base = NodeSet::new(n);
    let search = SearchConfig {
        mode: SearchMode::Certify,
        threads: 1, // reproducible counts; exhaustive counts are thread-independent anyway
        ..SearchConfig::default()
    };

    let (source, engine, core, claim, cert_build): (
        String,
        ftr_core::CompiledRoutes,
        Vec<u32>,
        ToleranceClaim,
        CertBuild,
    ) = match config.scheme {
        Some(name) => {
            let mut spec: SchemeSpec = name.parse().expect("valid scheme");
            spec.params.faults = config.faults;
            let built = SchemeRegistry::standard()
                .build_spec(&config.graph, &spec)
                .expect("scheme applies");
            let engine = match built.table() {
                ftr_core::BuiltTable::Single(r) => r.compile(),
                ftr_core::BuiltTable::Multi(m) => m.compile(),
            };
            let claim = config.claim.unwrap_or_else(|| built.guarantee().claim());
            let core = built.core_nodes().to_vec();
            let graph = config.graph.clone();
            let theorem = built.guarantee().theorem;
            let spec = built.spec().clone();
            (
                format!("scheme {spec}"),
                engine,
                core,
                claim,
                Box::new(move |engine, report| {
                    Certificate::for_scheme(
                        &graph,
                        &spec,
                        theorem,
                        engine,
                        &NodeSet::new(graph.node_count()),
                        SearchMode::Certify,
                        report,
                    )
                }),
            )
        }
        None => {
            let routing = ring_routing(n);
            let engine = routing.compile();
            let claim = config.claim.expect("hand-built configs carry a claim");
            let graph = config.graph.clone();
            (
                "ring routing".to_string(),
                engine,
                Vec::new(),
                claim,
                Box::new(move |engine, report| {
                    Certificate::for_routing(
                        &graph,
                        &ring_routing(graph.node_count()),
                        engine,
                        &NodeSet::new(graph.node_count()),
                        SearchMode::Certify,
                        report,
                    )
                }),
            )
        }
    };

    let start = Instant::now();
    let report = audit(&engine, claim, &core, &base, &search);
    let pruned_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let exhaustive = verify_tolerance(&engine, claim.faults, FaultStrategy::Exhaustive, 1);
    let exhaustive_s = start.elapsed().as_secs_f64();

    let pruned_holds = report.holds();
    let exhaustive_holds = exhaustive.satisfies(&claim);
    assert_eq!(
        pruned_holds, exhaustive_holds,
        "{} {}: pruned and exhaustive verdicts disagree (exhaustive worst {:?})",
        config.graph_label, claim, exhaustive.worst_diameter
    );
    assert!(
        !matches!(report.verdict, Verdict::Exhausted),
        "no cap was configured"
    );

    let cert = cert_build(&engine, &report).serialize();
    let certificate_ok = match check(&cert) {
        Ok(_) => true,
        Err(e) => panic!(
            "{} {}: certificate failed the independent re-check: {e}",
            config.graph_label, claim
        ),
    };

    Point {
        graph: config.graph_label,
        source,
        claim,
        verdict: if pruned_holds { "holds" } else { "violated" },
        pruned_evals: report.visited,
        pruned_sets: report.pruned_sets,
        space: report.space,
        exhaustive_evals: exhaustive.sets_checked,
        speedup: exhaustive.sets_checked as f64 / report.visited.max(1) as f64,
        pruned_s,
        exhaustive_s,
        certificate_ok,
    }
}

fn bench(c: &mut Criterion) {
    // Criterion-style timing of one full audit on the smallest config.
    let mut group = c.benchmark_group("e19_audit");
    group.sample_size(10);
    let g = gen::petersen();
    let built = SchemeRegistry::standard()
        .build_spec(&g, &SchemeSpec::named("kernel"))
        .expect("kernel applies");
    let engine = built.routing().expect("single").compile();
    let claim = built.guarantee().claim();
    let core = built.core_nodes().to_vec();
    let base = NodeSet::new(10);
    group.bench_function("audit_petersen_kernel", |b| {
        b.iter(|| {
            audit(
                black_box(&engine),
                claim,
                &core,
                &base,
                &SearchConfig {
                    threads: 1,
                    ..SearchConfig::default()
                },
            )
        })
    });
    group.finish();

    let mut points = Vec::new();
    for config in configs() {
        let p = measure(&config);
        eprintln!(
            "e19_audit/{} {}: {} {} — pruned {} evals (+{} pruned of {} space) in {:.4}s, \
             exhaustive {} evals in {:.4}s, {:.1}x fewer, cert {}",
            p.graph,
            p.source,
            p.claim,
            p.verdict,
            p.pruned_evals,
            p.pruned_sets,
            p.space,
            p.pruned_s,
            p.exhaustive_evals,
            p.exhaustive_s,
            p.speedup,
            if p.certificate_ok { "ok" } else { "FAILED" },
        );
        let _ = config.note;
        points.push(p);
    }

    let max_speedup = points.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
    assert!(
        max_speedup >= 5.0,
        "acceptance gate: no config reached a 5x evaluation saving (best {max_speedup:.1}x)"
    );

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"graph\": \"{}\",\n      \"source\": \"{}\",\n      \
                 \"claim\": {{ \"d\": {}, \"f\": {} }},\n      \"verdict\": \"{}\",\n      \
                 \"pruned\": {{ \"evals\": {}, \"pruned_sets\": {}, \"space\": {}, \"seconds\": {:.4} }},\n      \
                 \"exhaustive\": {{ \"evals\": {}, \"seconds\": {:.4} }},\n      \
                 \"speedup\": {:.2},\n      \"certificate_ok\": {}\n    }}",
                p.graph,
                p.source,
                p.claim.diameter,
                p.claim.faults,
                p.verdict,
                p.pruned_evals,
                p.pruned_sets,
                p.space,
                p.pruned_s,
                p.exhaustive_evals,
                p.exhaustive_s,
                p.speedup,
                p.certificate_ok,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e19_audit\",\n  \"mode\": \"certify, 1 thread\",\n  \
         \"gate\": \"same verdict as exhaustive; >= 5x fewer evaluations on at least one config; all certificates re-check\",\n  \
         \"max_speedup\": {:.2},\n  \"points\": [\n{}\n  ]\n}}\n",
        max_speedup,
        entries.join(",\n")
    );
    let path = format!("{}/../../BENCH_audit.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_audit.json");
    eprintln!("e19_audit: wrote {path} (max speedup {max_speedup:.1}x)");
}

criterion_group!(benches, bench);
criterion_main!(benches);

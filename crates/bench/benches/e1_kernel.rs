//! E1 bench — the kernel routing (Theorem 3): construction cost, one
//! surviving-graph evaluation (route-walk vs compiled engine), and an
//! exhaustive single-fault verification pass.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::{
    bench_graph, bench_kernel, surviving_diameter, surviving_diameter_compiled, three_faults,
};
use ftr_core::{verify_tolerance, Compile, FaultStrategy, KernelRouting};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let (_, kernel) = bench_kernel();
    let engine = kernel.routing().compile();
    let faults = three_faults();

    let mut group = c.benchmark_group("e1_kernel");
    group.sample_size(10);
    group.bench_function("build_h4_40", |b| {
        b.iter(|| KernelRouting::build(black_box(&g)).expect("connected"))
    });
    group.bench_function("surviving_diameter_3_faults", |b| {
        b.iter(|| surviving_diameter(black_box(kernel.routing()), black_box(&faults)))
    });
    group.bench_function("surviving_diameter_3_faults_compiled", |b| {
        b.iter(|| surviving_diameter_compiled(black_box(&engine), black_box(&faults)))
    });
    group.bench_function("verify_exhaustive_f1", |b| {
        b.iter(|| verify_tolerance(black_box(kernel.routing()), 1, FaultStrategy::Exhaustive, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E14 bench — bit-fixing on the hypercube: table construction and the
//! exhaustive verification against the quoted Dolev et al. bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_core::{verify_tolerance, FaultStrategy, HypercubeRouting, RoutingKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_hypercube");
    group.sample_size(10);
    for dim in [3usize, 4, 5] {
        group.bench_with_input(
            BenchmarkId::new("build_bidirectional", dim),
            &dim,
            |b, &d| b.iter(|| HypercubeRouting::build(black_box(d), RoutingKind::Bidirectional)),
        );
    }
    let q4 = HypercubeRouting::build(4, RoutingKind::Bidirectional).expect("valid");
    group.bench_function("verify_q4_exhaustive_f1", |b| {
        b.iter(|| verify_tolerance(black_box(q4.routing()), 1, FaultStrategy::Exhaustive, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E18 bench — planner selection: for each suite graph the `Planner`
//! surveys the whole `SchemeRegistry`, builds the applicable candidates
//! data-parallel, and ranks a winner; the bench times the full plan and
//! re-verifies the winner's advertised guarantee through the compiled
//! engine (seeded random fault sets at the guaranteed budget).
//!
//! Suite: `H(4, 256)` (the e17 scale substrate), the hypercube `Q6`,
//! `Torus(3, 4)` and Petersen — one graph per applicability regime. The
//! machine-readable record (winner spec/theorem/guarantee, per-candidate
//! outcomes, plan wall-clock, verification) lands in
//! `BENCH_planner.json` at the workspace root — only when the whole
//! suite ran (`E18_MAX_N` caps the sweep for CI smoke runs, which must
//! not clobber the full record).

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::scale_graph;
use ftr_core::{CandidateOutcome, FaultStrategy, Planner, PlannerRequest};
use ftr_graph::{connectivity, gen, Graph};
use std::hint::black_box;
use std::time::Instant;

fn max_n() -> usize {
    std::env::var("E18_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn suite() -> Vec<(&'static str, Graph)> {
    vec![
        ("petersen", gen::petersen()),
        ("torus(3x4)", gen::torus(3, 4).expect("valid")),
        ("hypercube(6)", gen::hypercube(6).expect("valid")),
        ("harary(4,256)", scale_graph(256)),
    ]
}

struct Point {
    graph: &'static str,
    n: usize,
    faults: usize,
    plan_s: f64,
    winner_spec: String,
    winner_theorem: &'static str,
    winner_diameter: u32,
    winner_routes: usize,
    built: usize,
    considered: usize,
    candidates: Vec<String>,
    verify_trials: usize,
    verify_s: f64,
    worst_diameter: Option<u32>,
    ok: bool,
}

fn measure(name: &'static str, g: &Graph) -> Point {
    let n = g.node_count();
    let t = connectivity::vertex_connectivity(g).saturating_sub(1);
    // The serving scenario: single-route tables only, full budget t.
    let request = PlannerRequest::tolerate(t).single_routes();
    let planner = Planner::new();

    let start = Instant::now();
    let plan = planner.plan(g, &request).expect("every suite graph plans");
    let plan_s = start.elapsed().as_secs_f64();

    let built = plan
        .candidates
        .iter()
        .filter(|c| matches!(c.outcome, CandidateOutcome::Built(_)))
        .count();
    let candidates: Vec<String> = plan.candidates.iter().map(|c| c.to_string()).collect();

    let guarantee = *plan.winner.guarantee();
    let trials = (8192 / n).clamp(8, 64);
    let start = Instant::now();
    let report = plan
        .winner
        .verify(FaultStrategy::RandomSample { trials, seed: 23 }, threads());
    let verify_s = start.elapsed().as_secs_f64();
    let ok = report.satisfies(&guarantee.claim());
    assert!(
        ok,
        "{name}: planner winner violated its guarantee: {report}"
    );

    Point {
        graph: name,
        n,
        faults: t,
        plan_s,
        winner_spec: plan.winner.spec().to_string(),
        winner_theorem: guarantee.theorem.token(),
        winner_diameter: guarantee.diameter,
        winner_routes: guarantee.routes,
        built,
        considered: plan.candidates.len(),
        candidates,
        verify_trials: trials,
        verify_s,
        worst_diameter: report.worst_diameter,
        ok,
    }
}

fn bench(c: &mut Criterion) {
    // Criterion-style timing of one full plan on the smallest graph.
    let mut group = c.benchmark_group("e18_planner");
    group.sample_size(10);
    let g = gen::petersen();
    let request = PlannerRequest::tolerate(2).single_routes();
    group.bench_function("plan_petersen", |b| {
        b.iter(|| {
            Planner::new()
                .plan(black_box(&g), black_box(&request))
                .expect("petersen plans")
        })
    });
    group.finish();

    let cap = max_n();
    let full = suite();
    let total = full.len();
    let mut points = Vec::new();
    for (name, g) in full.into_iter().filter(|(_, g)| g.node_count() <= cap) {
        let p = measure(name, &g);
        eprintln!(
            "e18_planner/{}: n={}, f={}, winner {} ({} d={} routes={}) in {:.3}s \
             [{} built / {} considered]; verify {} trials in {:.2}s, worst diameter {:?}",
            p.graph,
            p.n,
            p.faults,
            p.winner_spec,
            p.winner_theorem,
            p.winner_diameter,
            p.winner_routes,
            p.plan_s,
            p.built,
            p.considered,
            p.verify_trials,
            p.verify_s,
            p.worst_diameter,
        );
        points.push(p);
    }

    if points.len() < total {
        eprintln!(
            "e18_planner: capped at n <= {cap} (E18_MAX_N); BENCH_planner.json left \
             untouched — the committed record holds the full sweep"
        );
        return;
    }

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            let candidates: Vec<String> = p
                .candidates
                .iter()
                .map(|c| format!("        {:?}", c))
                .collect();
            format!(
                "    {{\n      \"graph\": \"{}\",\n      \"n\": {},\n      \"faults\": {},\n      \
                 \"plan_s\": {:.4},\n      \"winner\": {{\n        \"spec\": \"{}\",\n        \
                 \"theorem\": \"{}\",\n        \"diameter\": {},\n        \"routes\": {}\n      }},\n      \
                 \"built\": {},\n      \"considered\": {},\n      \"candidates\": [\n{}\n      ],\n      \
                 \"verify\": {{\n        \"strategy\": \"random\",\n        \"trials\": {},\n        \
                 \"seconds\": {:.3},\n        \"worst_diameter\": {},\n        \"ok\": {}\n      }}\n    }}",
                p.graph,
                p.n,
                p.faults,
                p.plan_s,
                p.winner_spec,
                p.winner_theorem,
                p.winner_diameter,
                p.winner_routes,
                p.built,
                p.considered,
                candidates.join(",\n"),
                p.verify_trials,
                p.verify_s,
                p.worst_diameter
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "null".into()),
                p.ok,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e18_planner\",\n  \"request\": \"tolerate t, single-route tables\",\n  \
         \"threads\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        threads(),
        entries.join(",\n")
    );
    let path = format!("{}/../../BENCH_planner.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_planner.json");
    eprintln!("e18_planner: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E3 bench — the circular routing (Theorem 10): construction and
//! surviving-graph evaluation on the mid-size Harary network.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::{bench_circular, bench_graph, surviving_diameter, three_faults};
use ftr_core::CircularRouting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = bench_graph();
    let (_, circ) = bench_circular();
    let faults = three_faults();

    let mut group = c.benchmark_group("e3_circular");
    group.sample_size(10);
    group.bench_function("build_h4_40", |b| {
        b.iter(|| CircularRouting::build(black_box(&g)).expect("concentrator exists"))
    });
    group.bench_function("surviving_diameter_3_faults", |b| {
        b.iter(|| surviving_diameter(black_box(circ.routing()), black_box(&faults)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

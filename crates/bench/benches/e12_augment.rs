//! E12 bench — the clique-augmented kernel (Section 6).

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_core::{verify_tolerance, AugmentedKernelRouting, FaultStrategy};
use ftr_graph::gen;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::harary(4, 14).expect("valid");
    let aug = AugmentedKernelRouting::build(&g).expect("not complete");

    let mut group = c.benchmark_group("e12_augment");
    group.sample_size(10);
    group.bench_function("build_h4_14", |b| {
        b.iter(|| AugmentedKernelRouting::build(black_box(&g)).expect("not complete"))
    });
    group.bench_function("verify_exhaustive_t3", |b| {
        b.iter(|| verify_tolerance(black_box(aug.routing()), 3, FaultStrategy::Exhaustive, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

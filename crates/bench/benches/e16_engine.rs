//! E16 bench — the verification engine, before vs after: the legacy
//! route-walk path against the bitset-compiled engine on the same
//! routing and fault budget.
//!
//! The headline comparison is the acceptance gate of the engine PR:
//! exhaustive `verify_tolerance` on the kernel routing of `H(5, 24)`
//! with `f = 2` (301 fault sets) must be at least 5× faster compiled.
//! Besides the criterion-style timings, the bench writes
//! `BENCH_engine.json` at the workspace root with machine-readable
//! sets/second for every strategy × engine pair, so future PRs can
//! track the trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_bench::{engine_graph, engine_pair};
use ftr_core::{verify_tolerance, FaultStrategy, RouteTable, ToleranceReport};
use std::hint::black_box;
use std::time::Instant;

const FAULTS: usize = 2;

fn strategies() -> Vec<(&'static str, FaultStrategy)> {
    vec![
        ("exhaustive", FaultStrategy::Exhaustive),
        (
            "random_2000",
            FaultStrategy::RandomSample {
                trials: 2000,
                seed: 42,
            },
        ),
        (
            "adversarial_4",
            FaultStrategy::Adversarial {
                restarts: 4,
                seed: 42,
            },
        ),
    ]
}

/// Best-of-N wall-clock measurement of one full verification; returns
/// the report and the evaluated fault sets per second.
fn measure<T: RouteTable + Sync>(table: &T, strategy: FaultStrategy) -> (ToleranceReport, f64) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = verify_tolerance(black_box(table), FAULTS, strategy, 1);
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        report = Some(r);
    }
    let report = report.expect("three runs happened");
    let rate = report.sets_checked as f64 / best;
    (report, rate)
}

fn bench(c: &mut Criterion) {
    let (kernel, engine) = engine_pair();
    let legacy = kernel.routing();
    let n = engine_graph().node_count();

    // Criterion-style timings for the headline exhaustive pass.
    let mut group = c.benchmark_group("e16_engine");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("verify_exhaustive_f2", "legacy"),
        legacy,
        |b, r| b.iter(|| verify_tolerance(black_box(r), FAULTS, FaultStrategy::Exhaustive, 1)),
    );
    group.bench_with_input(
        BenchmarkId::new("verify_exhaustive_f2", "compiled"),
        &engine,
        |b, e| b.iter(|| verify_tolerance(black_box(e), FAULTS, FaultStrategy::Exhaustive, 1)),
    );
    group.finish();

    // Machine-readable before/after record.
    let mut entries = Vec::new();
    let mut exhaustive_speedup = None;
    for (name, strategy) in strategies() {
        let (slow_report, slow_rate) = measure(legacy, strategy);
        let (fast_report, fast_rate) = measure(&engine, strategy);
        assert_eq!(
            slow_report.worst_diameter, fast_report.worst_diameter,
            "engines disagree under {name}"
        );
        let speedup = fast_rate / slow_rate;
        if name == "exhaustive" {
            exhaustive_speedup = Some(speedup);
        }
        eprintln!(
            "e16_engine/{name}: legacy {slow_rate:.0} sets/s, compiled {fast_rate:.0} sets/s \
             ({speedup:.1}x, worst diameter {:?})",
            fast_report.worst_diameter
        );
        for (engine_name, rate, report) in [
            ("legacy", slow_rate, &slow_report),
            ("compiled", fast_rate, &fast_report),
        ] {
            entries.push(format!(
                "    {{\n      \"strategy\": \"{name}\",\n      \"engine\": \"{engine_name}\",\n      \
                 \"sets_checked\": {},\n      \"sets_per_sec\": {rate:.1}\n    }}",
                report.sets_checked
            ));
        }
    }
    let speedup = exhaustive_speedup.expect("exhaustive strategy measured");

    let json = format!(
        "{{\n  \"bench\": \"e16_engine\",\n  \"graph\": \"harary(5, 24) kernel routing\",\n  \
         \"n\": {n},\n  \"f\": {FAULTS},\n  \"threads\": 1,\n  \
         \"exhaustive_speedup\": {speedup:.2},\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    eprintln!("e16_engine: wrote {path}");
    assert!(
        speedup >= 5.0,
        "compiled engine must be >= 5x faster exhaustively (measured {speedup:.2}x)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E6 bench — greedy neighborhood-set construction (Lemma 15) across
//! topologies and candidate orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_graph::analysis::{neighborhood_set, SelectionOrder};
use ftr_graph::gen;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let graphs = [
        ("Q5", gen::hypercube(5).expect("valid")),
        ("Torus10x10", gen::torus(10, 10).expect("valid")),
        ("H3_120", gen::harary(3, 120).expect("valid")),
    ];
    let mut group = c.benchmark_group("e6_neighborhood");
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("ascending", name), g, |b, g| {
            b.iter(|| neighborhood_set(black_box(g), SelectionOrder::Ascending))
        });
        group.bench_with_input(BenchmarkId::new("min_degree", name), g, |b, g| {
            b.iter(|| neighborhood_set(black_box(g), SelectionOrder::MinDegreeFirst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E20 bench — the hot-path raw-speed push, before vs after: the
//! engine's batched fault-set evaluation against the one-shot path, and
//! the sharded pipelined serve loop's sustained route throughput with
//! latency percentiles.
//!
//! Two segments:
//!
//! 1. **Kernel batch**: `surviving_diameter_batch` (one thread-local
//!    scratch matrix, candidate-pair work only) vs the same fault sets
//!    through one-shot `surviving_diameter`, on the `e16` network
//!    H(5, 24) at `f = 2` (all 276 pairs) and on the wider-stride
//!    H(4, 256) (sampled pairs) where the 4×u64-unrolled word kernels
//!    carry the BFS. Results are asserted bit-identical.
//! 2. **Serve**: an in-process daemon driven by pipelined byte-framed
//!    clients (no churn — the pure query hot path), recording route
//!    qps and p50/p95/p99 burst latency.
//!
//! Writes `BENCH_hotpath.json` at the workspace root. Knobs:
//! `E20_SECONDS` (serve measurement window, default 2), `E20_MAX_N`
//! (skip kernel networks larger than this, e.g. `E20_MAX_N=24` in
//! constrained CI).

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::load::{push_route, Histogram};
use ftr_core::{Compile, CompiledRoutes, KernelRouting, RouteTable};
use ftr_graph::{gen, Node, NodeSet};
use ftr_serve::{Client, ReplyLines, RoutingSnapshot, Server, ServerConfig};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// All `f = 2` fault sets of an `n`-node network, optionally sampled
/// down to `max_sets` (stride > 1 keeps every k-th pair).
fn pair_fault_sets(n: usize, max_sets: usize) -> Vec<NodeSet> {
    let mut sets = Vec::new();
    for a in 0..n as Node {
        for b in (a + 1)..n as Node {
            sets.push(NodeSet::from_nodes(n, [a, b]));
        }
    }
    if sets.len() > max_sets {
        let stride = sets.len().div_ceil(max_sets);
        sets = sets.into_iter().step_by(stride).collect();
    }
    sets
}

/// Best-of-3 sets/second through one-shot `surviving_diameter`.
fn measure_one_shot(engine: &CompiledRoutes, sets: &[NodeSet]) -> (Vec<Option<u32>>, f64) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        out = sets
            .iter()
            .map(|f| engine.surviving_diameter(black_box(f)))
            .collect();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (out, sets.len() as f64 / best)
}

/// Best-of-3 sets/second through `surviving_diameter_batch`.
fn measure_batch(engine: &CompiledRoutes, sets: &[NodeSet]) -> (Vec<Option<u32>>, f64) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        out = engine.surviving_diameter_batch(black_box(sets));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (out, sets.len() as f64 / best)
}

struct KernelPoint {
    label: String,
    sets: usize,
    one_shot_rate: f64,
    batch_rate: f64,
    speedup: f64,
}

fn kernel_point(k: usize, n: usize, max_sets: usize) -> KernelPoint {
    let g = gen::harary(k, n).expect("valid parameters");
    let kernel = KernelRouting::build(&g).expect("connected");
    let engine = kernel.routing().compile();
    let sets = pair_fault_sets(n, max_sets);
    let (one_shot, one_shot_rate) = measure_one_shot(&engine, &sets);
    let (batched, batch_rate) = measure_batch(&engine, &sets);
    assert_eq!(
        one_shot, batched,
        "batched evaluation must be bit-identical on H({k}, {n})"
    );
    let speedup = batch_rate / one_shot_rate;
    eprintln!(
        "e20_hotpath/kernel H({k},{n}): one-shot {one_shot_rate:.0} sets/s, \
         batch {batch_rate:.0} sets/s ({speedup:.2}x, {} sets)",
        sets.len()
    );
    KernelPoint {
        label: format!("harary({k}, {n}) kernel routing"),
        sets: sets.len(),
        one_shot_rate,
        batch_rate,
        speedup,
    }
}

struct ServePoint {
    clients: usize,
    pipeline: usize,
    seconds: f64,
    routes: u64,
    qps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// Drives an in-process daemon with pipelined byte-framed clients for
/// `seconds` — the pure query hot path (no churn). `metrics` sets the
/// server's hot-path recording flag, so an on/off pair measures the
/// observability overhead.
fn serve_point(clients: usize, pipeline: usize, seconds: f64, metrics: bool) -> ServePoint {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let g = gen::harary(5, 24).expect("valid parameters");
    let n = g.node_count();
    let kernel = KernelRouting::build(&g).expect("connected");
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone())
        .expect("kernel routing is total")
        .into_shared();
    let config = ServerConfig {
        metrics,
        ..ServerConfig::default()
    };
    let server = Server::bind(snapshot, config).expect("bind loopback");
    let addr = server.local_addr();
    let spawned = server.spawn();

    let latency = Mutex::new(Histogram::new());
    let total = Mutex::new(0u64);
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latency = &latency;
            let total = &total;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut rng = SmallRng::seed_from_u64(0xE20 + c as u64);
                let mut requests: Vec<u8> = Vec::with_capacity(pipeline * 16);
                let mut replies = ReplyLines::new();
                let mut local = Histogram::new();
                let mut routes = 0u64;
                while Instant::now() < deadline {
                    requests.clear();
                    for _ in 0..pipeline {
                        let x = rng.gen_range(0..n) as Node;
                        let mut y = rng.gen_range(0..n) as Node;
                        if y == x {
                            y = (y + 1) % n as Node;
                        }
                        push_route(&mut requests, u64::from(x), u64::from(y));
                    }
                    let sent = Instant::now();
                    client
                        .pipeline_raw(&requests, pipeline, &mut replies)
                        .expect("pipelined burst answered");
                    local.record_n(sent.elapsed().as_nanos() as u64, pipeline as u64);
                    routes += pipeline as u64;
                    for reply in replies.iter() {
                        assert!(reply.starts_with(b"OK "), "protocol error in bench");
                    }
                }
                latency.lock().expect("merge").merge(&local);
                *total.lock().expect("count") += routes;
                let _ = client.quit();
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    spawned.shutdown_and_join().expect("clean shutdown");
    let routes = *total.lock().expect("count");
    let latency = latency.into_inner().expect("histogram");
    let qps = routes as f64 / elapsed;
    let (p50, p95, p99) = (
        latency.quantile_us(0.50),
        latency.quantile_us(0.95),
        latency.quantile_us(0.99),
    );
    eprintln!(
        "e20_hotpath/serve (metrics {}): {routes} routes in {elapsed:.2}s = {qps:.0}/s \
         (p50 {p50:.0}us p95 {p95:.0}us p99 {p99:.0}us)",
        if metrics { "on" } else { "off" }
    );
    ServePoint {
        clients,
        pipeline,
        seconds: elapsed,
        routes,
        qps,
        p50,
        p95,
        p99,
    }
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench(c: &mut Criterion) {
    // Criterion-style timing of the headline comparison: the full
    // f = 2 sweep of H(5, 24), one-shot vs batched.
    let g = gen::harary(5, 24).expect("valid parameters");
    let kernel = KernelRouting::build(&g).expect("connected");
    let engine = kernel.routing().compile();
    let sets = pair_fault_sets(24, usize::MAX);
    let mut group = c.benchmark_group("e20_hotpath");
    group.sample_size(20);
    group.bench_function("f2_sweep_one_shot", |b| {
        b.iter(|| {
            sets.iter()
                .map(|f| engine.surviving_diameter(black_box(f)))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("f2_sweep_batch", |b| {
        b.iter(|| engine.surviving_diameter_batch(black_box(&sets)))
    });
    group.finish();

    // Machine-readable record.
    let max_n: usize = env_num("E20_MAX_N", usize::MAX);
    let seconds: f64 = env_num("E20_SECONDS", 2.0);
    let mut kernel_points = vec![kernel_point(5, 24, usize::MAX)];
    if max_n >= 256 {
        kernel_points.push(kernel_point(4, 256, 512));
    } else {
        eprintln!("e20_hotpath: skipping H(4, 256) (E20_MAX_N = {max_n})");
    }
    // Metrics-on is the headline "serve" record (the production
    // configuration, and the one CI floors); the off point rides along
    // so the observability overhead is machine-readable.
    let serve_off = serve_point(2, 256, seconds, false);
    let serve = serve_point(2, 256, seconds, true);
    let metrics_overhead_pct = if serve_off.qps > 0.0 {
        (serve_off.qps - serve.qps) / serve_off.qps * 100.0
    } else {
        0.0
    };

    let kernel_json: Vec<String> = kernel_points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"graph\": \"{}\",\n      \"f\": 2,\n      \"sets\": {},\n      \
                 \"one_shot_sets_per_sec\": {:.1},\n      \"batch_sets_per_sec\": {:.1},\n      \
                 \"batch_speedup\": {:.2}\n    }}",
                p.label, p.sets, p.one_shot_rate, p.batch_rate, p.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e20_hotpath\",\n  \"kernel_points\": [\n{}\n  ],\n  \
         \"serve\": {{\n    \"graph\": \"harary(5, 24) kernel routing\",\n    \
         \"clients\": {},\n    \"pipeline_depth\": {},\n    \"seconds\": {:.2},\n    \
         \"metrics\": true,\n    \
         \"route_queries\": {},\n    \"route_qps\": {:.0},\n    \
         \"route_latency_us\": {{ \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1} }}\n  }},\n  \
         \"serve_metrics_off\": {{\n    \"route_qps\": {:.0},\n    \
         \"route_latency_us\": {{ \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1} }}\n  }},\n  \
         \"metrics_overhead_pct\": {metrics_overhead_pct:.1}\n}}\n",
        kernel_json.join(",\n"),
        serve.clients,
        serve.pipeline,
        serve.seconds,
        serve.routes,
        serve.qps,
        serve.p50,
        serve.p95,
        serve.p99,
        serve_off.qps,
        serve_off.p50,
        serve_off.p95,
        serve_off.p99,
    );
    let path = format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_hotpath.json");
    eprintln!("e20_hotpath: wrote {path}");

    let headline = &kernel_points[0];
    assert!(
        headline.speedup >= 1.0,
        "batched evaluation must not be slower than one-shot \
         (measured {:.2}x)",
        headline.speedup
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 bench — the bidirectional bipolar routing (Theorem 23) on C24.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_bench::{bench_bipolar, surviving_diameter};
use ftr_core::{BipolarRouting, RoutingKind};
use ftr_graph::{gen, NodeSet};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = gen::cycle(24).expect("valid");
    let (_, bip) = bench_bipolar(RoutingKind::Bidirectional);
    let faults = NodeSet::from_nodes(24, [9]);

    let mut group = c.benchmark_group("e9_bipolar_bi");
    group.sample_size(10);
    group.bench_function("build_c24", |b| {
        b.iter(|| {
            BipolarRouting::build(black_box(&g), RoutingKind::Bidirectional)
                .expect("two-trees holds")
        })
    });
    group.bench_function("surviving_diameter_1_fault", |b| {
        b.iter(|| surviving_diameter(black_box(bip.routing()), black_box(&faults)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

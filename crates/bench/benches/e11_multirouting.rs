//! E11 bench — Section 6 multiroutings: full (t+1 routes everywhere),
//! concentrator, and two-route single-tree constructions.

use criterion::{criterion_group, criterion_main, Criterion};
use ftr_core::{concentrator_multirouting, full_multirouting, single_tree_multirouting};
use ftr_graph::gen;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let petersen = gen::petersen();
    let torus = gen::torus(3, 4).expect("valid");

    let mut group = c.benchmark_group("e11_multirouting");
    group.sample_size(10);
    group.bench_function("full_petersen", |b| {
        b.iter(|| full_multirouting(black_box(&petersen)).expect("connected"))
    });
    group.bench_function("concentrator_torus3x4", |b| {
        b.iter(|| concentrator_multirouting(black_box(&torus)).expect("not complete"))
    });
    group.bench_function("single_tree_torus3x4", |b| {
        b.iter(|| single_tree_multirouting(black_box(&torus)).expect("not complete"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Substrate benches: the graph-layer primitives every construction
//! rests on (flow, connectivity, tree routings, BFS diameter — in both
//! the adjacency-list and the bit-matrix representation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_core::tree::tree_routing;
use ftr_graph::{connectivity, flow, gen, traversal, BitMatrix};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    for (name, g) in [
        ("Q6", gen::hypercube(6).expect("valid")),
        ("H4_100", gen::harary(4, 100).expect("valid")),
        ("CCC5", gen::cube_connected_cycles(5).expect("valid")),
    ] {
        group.bench_with_input(BenchmarkId::new("vertex_connectivity", name), &g, |b, g| {
            b.iter(|| connectivity::vertex_connectivity(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("diameter", name), &g, |b, g| {
            b.iter(|| traversal::diameter(black_box(g), None))
        });
        // The same all-pairs diameter on the bit-matrix form: the
        // compiled engine's inner loop (both directions of every edge).
        let mut bits = BitMatrix::new(g.node_count());
        for (u, v) in g.edges() {
            bits.set(u, v);
            bits.set(v, u);
        }
        group.bench_with_input(
            BenchmarkId::new("diameter_bitmatrix", name),
            &bits,
            |b, m| b.iter(|| black_box(m).diameter(None)),
        );
        let n = g.node_count() as u32;
        group.bench_with_input(BenchmarkId::new("disjoint_st_paths", name), &g, |b, g| {
            b.iter(|| flow::vertex_disjoint_st_paths(black_box(g), 0, n / 2, None))
        });
        // Tree-route from node 3 into the neighborhood of the antipodal
        // node (3 is never adjacent to n/2 in these families, so it is
        // outside the target set).
        let targets = g.neighbor_set(n / 2);
        let k = targets.len().min(connectivity::vertex_connectivity(&g));
        group.bench_with_input(BenchmarkId::new("tree_routing", name), &g, |b, g| {
            b.iter(|| tree_routing(black_box(g), 3, black_box(&targets), k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E10 bench — two-trees property detection on sparse random graphs
//! (the inner loop of the Lemma 24 probability sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftr_graph::{analysis, gen};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_two_trees_prob");
    for &n in &[100usize, 200, 400] {
        let p = (n as f64).powf(0.2) / n as f64; // eps = 0.2 < 1/4
        let g = gen::gnp(n, p, 42).expect("valid");
        group.bench_with_input(BenchmarkId::new("find_roots", n), &g, |b, g| {
            b.iter(|| analysis::find_two_trees_roots(black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Load-measurement helpers shared by the `loadgen` binary and the
//! `e20_hotpath` bench: the shared log-linear latency histogram
//! (re-exported from `ftr-obs`, where it lives so the server can record
//! into the same implementation) and allocation-free request framing.

pub use ftr_obs::Histogram;

/// Appends the decimal rendering of `v` without allocating (the
/// request-framing hot path writes straight into the burst buffer).
pub fn push_uint(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

/// Appends a framed `ROUTE x y\n` request line.
pub fn push_route(buf: &mut Vec<u8>, x: u64, y: u64) {
    buf.extend_from_slice(b"ROUTE ");
    push_uint(buf, x);
    buf.push(b' ');
    push_uint(buf, y);
    buf.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_uint_matches_display() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 9, 10, 123, 65535, u64::MAX] {
            buf.clear();
            push_uint(&mut buf, v);
            assert_eq!(buf, v.to_string().as_bytes());
        }
        buf.clear();
        push_route(&mut buf, 3, 17);
        assert_eq!(buf, b"ROUTE 3 17\n");
    }

    #[test]
    fn reexported_histogram_is_the_shared_one() {
        // The bench-facing API (record_n / merge / quantile_us) must
        // keep working through the re-export.
        let mut h = Histogram::new();
        h.record_n(10_000, 3);
        let mut other = Histogram::new();
        other.record(20_000);
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert!(h.quantile_us(1.0) >= 18.0);
    }
}

//! Load-measurement helpers shared by the `loadgen` binary and the
//! `e20_hotpath` bench: a log-linear latency histogram and
//! allocation-free request framing.

/// Sub-buckets per octave: latency resolution is ~1/16 ≈ 6%, plenty
/// for p50/p95/p99 reporting without HDR-histogram-sized tables.
const SUB: usize = 16;
/// Bucket count covering the full `u64` nanosecond range.
const BUCKETS: usize = 61 * SUB;

/// A log-linear histogram of nanosecond latencies (fixed ~6% relative
/// error, constant-time record, mergeable across client threads).
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        ((msb - 3) * SUB + sub).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i`'s value range.
    fn lower_bound(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let octave = i / SUB;
        let sub = i % SUB;
        ((SUB + sub) as u64) << (octave - 1)
    }

    /// Records `count` observations of `nanos` (e.g. a pipelined burst
    /// round trip attributed to each query in the burst).
    pub fn record_n(&mut self, nanos: u64, count: u64) {
        self.buckets[Self::index(nanos)] += count;
        self.count += count;
    }

    /// Records one observation of `nanos`.
    pub fn record(&mut self, nanos: u64) {
        self.record_n(nanos, 1);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram (typically a per-thread local) into this
    /// one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds — the lower edge
    /// of the bucket where the cumulative count crosses `q`. Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::lower_bound(i);
            }
        }
        Self::lower_bound(BUCKETS - 1)
    }

    /// The `q`-quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1_000.0
    }
}

/// Appends the decimal rendering of `v` without allocating (the
/// request-framing hot path writes straight into the burst buffer).
pub fn push_uint(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

/// Appends a framed `ROUTE x y\n` request line.
pub fn push_route(buf: &mut Vec<u8>, x: u64, y: u64) {
    buf.extend_from_slice(b"ROUTE ");
    push_uint(buf, x);
    buf.push(b' ');
    push_uint(buf, y);
    buf.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_uint_matches_display() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 9, 10, 123, 65535, u64::MAX] {
            buf.clear();
            push_uint(&mut buf, v);
            assert_eq!(buf, v.to_string().as_bytes());
        }
        buf.clear();
        push_route(&mut buf, 3, 17);
        assert_eq!(buf, b"ROUTE 3 17\n");
    }

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        // Every value lands in a bucket whose range contains it, with
        // lower bound within ~6% below.
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = Histogram::index(v);
            let lo = Histogram::lower_bound(i);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            if v >= 16 {
                assert!((v - lo) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9);
            }
            if i + 1 < BUCKETS {
                assert!(Histogram::lower_bound(i + 1) > v);
            }
        }
    }

    #[test]
    fn quantiles_order_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v * 1_000);
            } else {
                b.record(v * 1_000);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let (p50, p95, p99) = (a.quantile(0.50), a.quantile(0.95), a.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        // ~6% relative accuracy around the true values.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.07);
        assert!((p95 as f64 - 950_000.0).abs() / 950_000.0 < 0.07);
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.07);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }
}

//! `loadgen` — drives an in-process `ftr-serve` daemon over loopback
//! with concurrent query clients and live fault churn, and records the
//! sustained throughput in `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--clients N] [--seconds S] [--churn-hz R] [--fault-budget F]
//!         [--pipeline B] [--shards N] [--graph harary:K,N|petersen|cycle:N]
//!         [--scheme SCHEME|auto] [--assert-qps Q] [--no-metrics] [--no-spans]
//!         [--compare-metrics] [--compare-spans] [--out FILE]
//! ```
//!
//! `--scheme` takes the shared `ftr_core::SchemeSpec` grammar (the same
//! one `ftr-served` accepts) and serves that construction; `auto` lets
//! the scheme planner pick. The churn client rotates through a scenario
//! mix drawn from `ftr_sim::faults` and `ftr_sim::churn`: uniform random
//! victims, victims targeted at the served scheme's core nodes
//! (separator / concentrator / poles, [`FaultPlan::TargetedPool`] — the
//! adversarial case), and organic fail/repair processes
//! ([`ChurnStream`]). Query clients send pipelined bursts of `ROUTE`
//! with sprinkled `DIAM`/`EPOCH`/`TOLERATE`.
//!
//! The server's metric recording is on by default (the production
//! configuration — the qps floor is asserted with observability paying
//! its way). `--no-metrics` turns it off; `--compare-metrics` runs the
//! whole measurement twice, metrics-off then metrics-on, and records
//! both throughputs plus the overhead percentage in the JSON (the
//! `--assert-qps` floor applies to the metrics-on run).
//!
//! Flight-recorder span tracing rides on metrics and is likewise on by
//! default; `--no-spans` disables just the tracing, and
//! `--compare-spans` mirrors `--compare-metrics` with a spans-off
//! (metrics still on) baseline, recording the span-tracing overhead
//! pair in the JSON. Burst latency is recorded per verb — every query
//! in a pipelined burst is attributed the burst's round-trip time
//! under its own verb's histogram.
//!
//! Exits nonzero on any protocol error, unclean shutdown, or a missed
//! `--assert-qps` floor.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use ftr_bench::load::{push_route, Histogram};
use ftr_core::{BuiltRouting, Planner, PlannerRequest, SchemeRegistry, SchemeSpec};
use ftr_graph::{connectivity, Graph, Node};
use ftr_serve::spec::parse_graph_spec;
use ftr_serve::{Client, ReplyLines, RoutingSnapshot, Server, ServerConfig};
use ftr_sim::churn::{ChurnConfig, ChurnStream};
use ftr_sim::faults::FaultPlan;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    clients: usize,
    seconds: f64,
    churn_hz: f64,
    fault_budget: usize,
    pipeline: usize,
    shards: usize,
    graph: String,
    scheme: String,
    assert_qps: Option<f64>,
    metrics: bool,
    compare_metrics: bool,
    spans: bool,
    compare_spans: bool,
    out: Option<String>,
}

/// Verbs with their own burst-latency histogram, in histogram-slot
/// order (`ROUTE` first — its slot feeds the headline latency line).
const VERB_NAMES: [&str; 4] = ["route", "diam", "epoch", "tolerate"];
const VERB_ROUTE: usize = 0;
const VERB_DIAM: usize = 1;
const VERB_EPOCH: usize = 2;
const VERB_TOLERATE: usize = 3;

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            clients: 8,
            seconds: 3.0,
            churn_hz: 200.0,
            fault_budget: 2,
            // Deep pipelining is the design point of the batched serve
            // loop: each burst becomes one read, one epoch acquisition,
            // one cache pass and one coalesced write on the server.
            pipeline: 256,
            shards: 2,
            graph: "harary:5,24".to_string(),
            scheme: "kernel".to_string(),
            assert_qps: None,
            metrics: true,
            compare_metrics: false,
            spans: true,
            compare_spans: false,
            out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--clients" => args.clients = parse(&value("--clients")?)?,
                "--seconds" => args.seconds = parse(&value("--seconds")?)?,
                "--churn-hz" => args.churn_hz = parse(&value("--churn-hz")?)?,
                "--fault-budget" => args.fault_budget = parse(&value("--fault-budget")?)?,
                "--pipeline" => args.pipeline = parse(&value("--pipeline")?)?,
                "--shards" => args.shards = parse(&value("--shards")?)?,
                "--graph" => args.graph = value("--graph")?,
                "--scheme" => args.scheme = value("--scheme")?,
                "--assert-qps" => args.assert_qps = Some(parse(&value("--assert-qps")?)?),
                "--no-metrics" => args.metrics = false,
                "--compare-metrics" => args.compare_metrics = true,
                "--no-spans" => args.spans = false,
                "--compare-spans" => args.compare_spans = true,
                "--out" => args.out = Some(value("--out")?),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.clients == 0 || args.pipeline == 0 || args.seconds <= 0.0 {
            return Err("--clients, --pipeline and --seconds must be positive".into());
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(token: &str) -> Result<T, String> {
    token.parse().map_err(|_| format!("bad value {token:?}"))
}

#[derive(Default)]
struct Totals {
    route: AtomicU64,
    direct: AtomicU64,
    detour: AtomicU64,
    unreachable: AtomicU64,
    diam: AtomicU64,
    epoch: AtomicU64,
    tolerate: AtomicU64,
    errors: AtomicU64,
}

/// One query client's tallies, merged into the shared [`Totals`] once
/// when the client finishes.
#[derive(Default)]
struct LocalCounts {
    route: u64,
    direct: u64,
    detour: u64,
    unreachable: u64,
    diam: u64,
    epoch: u64,
    tolerate: u64,
    errors: u64,
}

impl LocalCounts {
    fn merge_into(&self, totals: &Totals) {
        totals.route.fetch_add(self.route, Ordering::Relaxed);
        totals.direct.fetch_add(self.direct, Ordering::Relaxed);
        totals.detour.fetch_add(self.detour, Ordering::Relaxed);
        totals
            .unreachable
            .fetch_add(self.unreachable, Ordering::Relaxed);
        totals.diam.fetch_add(self.diam, Ordering::Relaxed);
        totals.epoch.fetch_add(self.epoch, Ordering::Relaxed);
        totals.tolerate.fetch_add(self.tolerate, Ordering::Relaxed);
        totals.errors.fetch_add(self.errors, Ordering::Relaxed);
    }
}

/// The churn client: rotates scenarios, keeps at most `budget` nodes
/// down, paces events at `hz`.
// A one-call-site driver fn; a config struct would only rename the args.
#[allow(clippy::too_many_arguments)]
fn run_churn(
    addr: std::net::SocketAddr,
    n: usize,
    pool: Vec<Node>,
    budget: usize,
    hz: f64,
    stop: &AtomicBool,
    events_out: &AtomicU64,
    errors: &AtomicU64,
) {
    let mut client = Client::connect(addr).expect("churn client connects");
    let tick = Duration::from_secs_f64(1.0 / hz.max(1e-6));
    // Organic churn tuned so a step usually touches at least one node.
    let mut organic = ChurnStream::new(
        n,
        ChurnConfig {
            fail_rate: (budget as f64 / n as f64).min(0.5),
            repair_time: 3,
            steps: u32::MAX,
            seed: 0xC0FFEE,
        },
    );
    let mut down: Vec<Node> = Vec::new();
    let mut ticks: u64 = 0;
    let mut scenario = 0usize;
    let mut rng = SmallRng::seed_from_u64(0x10AD);
    while !stop.load(Ordering::Relaxed) {
        // Rotate the scenario every 64 ticks (ticks advance by exactly
        // one per loop, so no rotation boundary can be stepped over).
        if ticks.is_multiple_of(64) {
            scenario = (scenario + 1) % 3;
        }
        ticks += 1;
        let sent = match scenario {
            // Scenario "organic": replay a ChurnStream step as live
            // traffic (budget-capped).
            0 => {
                let step = organic.step();
                let mut sent = 0u64;
                for &v in &step.repaired {
                    if let Some(i) = down.iter().position(|&d| d == v) {
                        down.swap_remove(i);
                        check(client.repair(v), errors);
                        sent += 1;
                    }
                }
                for &v in &step.failed {
                    if down.len() < budget && !down.contains(&v) {
                        down.push(v);
                        check(client.fail(v), errors);
                        sent += 1;
                    }
                }
                sent
            }
            // Scenarios "uniform" and "targeted": fail plan-drawn
            // victims up to the budget, then repair the oldest.
            s => {
                if down.len() >= budget {
                    let v = down.remove(0);
                    check(client.repair(v), errors);
                    1
                } else {
                    let plan = if s == 1 {
                        FaultPlan::Uniform {
                            count: budget.min(n),
                            seed: rng.next_u64(),
                        }
                    } else {
                        FaultPlan::TargetedPool {
                            pool: pool.clone(),
                            count: budget,
                            seed: rng.next_u64(),
                        }
                    };
                    match plan.materialize(n).iter().find(|v| !down.contains(v)) {
                        Some(v) => {
                            down.push(v);
                            check(client.fail(v), errors);
                            1
                        }
                        None => 0,
                    }
                }
            }
        };
        events_out.fetch_add(sent, Ordering::Relaxed);
        std::thread::sleep(tick);
    }
    // Leave the server fault-free so shutdown state is deterministic.
    for v in down.drain(..) {
        check(client.repair(v), errors);
    }
    let _ = client.quit();
}

fn check(result: std::io::Result<bool>, errors: &AtomicU64) {
    if !matches!(result, Ok(true)) {
        errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// One query client: pipelined bursts of ROUTE with sprinkled
/// DIAM/EPOCH/TOLERATE, until the deadline. Requests are framed into a
/// reused byte buffer and replies land in a reused [`ReplyLines`], so
/// the steady-state loop allocates nothing; each burst's round-trip
/// time is attributed to every query in it (the latency a pipelined
/// caller actually waits), recorded under that query's own verb.
fn run_client(
    addr: std::net::SocketAddr,
    n: usize,
    seed: u64,
    pipeline: usize,
    deadline: Instant,
    totals: &Totals,
    latency: &Mutex<[Histogram; VERB_NAMES.len()]>,
) {
    let mut client = Client::connect(addr).expect("query client connects");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut requests: Vec<u8> = Vec::with_capacity(pipeline * 16);
    let mut verb_tags: Vec<usize> = Vec::with_capacity(pipeline);
    let mut replies = ReplyLines::new();
    let mut local: [Histogram; VERB_NAMES.len()] = Default::default();
    let mut counts = LocalCounts::default();
    let mut burst: u64 = 0;
    while Instant::now() < deadline {
        requests.clear();
        verb_tags.clear();
        burst += 1;
        for i in 0..pipeline {
            // ~1 non-ROUTE probe per burst keeps the mix honest without
            // moving the throughput needle.
            if i == 0 && burst % 4 == 1 {
                let (line, verb) = match burst % 12 {
                    1 => (b"DIAM\n".as_slice(), VERB_DIAM),
                    5 => (b"EPOCH\n".as_slice(), VERB_EPOCH),
                    _ => (b"TOLERATE 8 1\n".as_slice(), VERB_TOLERATE),
                };
                requests.extend_from_slice(line);
                verb_tags.push(verb);
                continue;
            }
            let x = rng.gen_range(0..n) as Node;
            let mut y = rng.gen_range(0..n) as Node;
            if y == x {
                y = (y + 1) % n as Node;
            }
            push_route(&mut requests, x as u64, y as u64);
            verb_tags.push(VERB_ROUTE);
        }
        let sent = Instant::now();
        if client
            .pipeline_raw(&requests, pipeline, &mut replies)
            .is_err()
        {
            totals.errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let rtt = sent.elapsed().as_nanos() as u64;
        let mut verb_counts = [0u64; VERB_NAMES.len()];
        for (&verb, reply) in verb_tags.iter().zip(replies.iter()) {
            // Thread-local tallies; one atomic merge per client at the
            // end keeps the reply loop free of shared-cacheline traffic.
            let counter = if reply.starts_with(b"OK DIRECT") {
                &mut counts.direct
            } else if reply.starts_with(b"OK DETOUR") {
                &mut counts.detour
            } else if reply.starts_with(b"OK UNREACHABLE") {
                &mut counts.unreachable
            } else if reply.starts_with(b"OK DIAM") {
                &mut counts.diam
            } else if reply.starts_with(b"OK EPOCH") {
                &mut counts.epoch
            } else if reply.starts_with(b"OK TOLERATE") {
                &mut counts.tolerate
            } else {
                eprintln!(
                    "loadgen: protocol error: {:?}",
                    String::from_utf8_lossy(reply)
                );
                &mut counts.errors
            };
            *counter += 1;
            verb_counts[verb] += 1;
        }
        for (hist, &count) in local.iter_mut().zip(&verb_counts) {
            hist.record_n(rtt, count);
        }
        counts.route += verb_counts[VERB_ROUTE];
    }
    counts.merge_into(totals);
    let mut shared = latency.lock().expect("latency histogram poisoned");
    for (shared, local) in shared.iter_mut().zip(&local) {
        shared.merge(local);
    }
    drop(shared);
    let _ = client.quit();
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the served scheme through the shared registry/planner path
/// (the same `SchemeSpec` grammar `ftr-served --scheme` accepts).
fn build_scheme(graph: &Graph, scheme: &str) -> Result<BuiltRouting, String> {
    if scheme == "auto" {
        let budget = connectivity::vertex_connectivity(graph).saturating_sub(1);
        let request = PlannerRequest::tolerate(budget).single_routes();
        let plan = Planner::new()
            .plan(graph, &request)
            .map_err(|e| e.to_string())?;
        return Ok(plan.winner);
    }
    let spec: SchemeSpec = scheme.parse()?;
    SchemeRegistry::standard()
        .build_spec(graph, &spec)
        .map_err(|e| e.to_string())
}

/// Everything one measurement run produces (counters already loaded out
/// of their atomics, server shut down).
struct Measurement {
    elapsed: f64,
    route: u64,
    total: u64,
    direct: u64,
    detour: u64,
    unreachable: u64,
    diam: u64,
    epoch: u64,
    tolerate: u64,
    churn_events: u64,
    epochs: u64,
    hit_rate: f64,
    errors: u64,
    latency: [Histogram; VERB_NAMES.len()],
}

impl Measurement {
    fn route_qps(&self) -> f64 {
        self.route as f64 / self.elapsed
    }

    fn total_qps(&self) -> f64 {
        self.total as f64 / self.elapsed
    }
}

/// One complete load-test run against a fresh server on `snapshot`:
/// spawn, drive churn + query clients until the deadline, shut down,
/// collect. `metrics`/`spans` set the server's hot-path recording and
/// flight-recorder flags.
fn measure(
    args: &Args,
    snapshot: &std::sync::Arc<RoutingSnapshot>,
    n: usize,
    core: &[Node],
    metrics: bool,
    spans: bool,
) -> Result<Measurement, String> {
    let server = Server::bind(
        std::sync::Arc::clone(snapshot),
        ServerConfig {
            shards: args.shards,
            metrics,
            spans,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let handle = server.handle();
    let spawned = server.spawn();

    let totals = Totals::default();
    let latency: Mutex<[Histogram; VERB_NAMES.len()]> = Mutex::new(Default::default());
    let stop_churn = AtomicBool::new(false);
    let churn_events = AtomicU64::new(0);
    let barrier = Barrier::new(args.clients + 1);
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(args.seconds);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            run_churn(
                addr,
                n,
                core.to_vec(),
                args.fault_budget,
                args.churn_hz,
                &stop_churn,
                &churn_events,
                &totals.errors,
            )
        });
        for c in 0..args.clients {
            let totals = &totals;
            let latency = &latency;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                run_client(
                    addr,
                    n,
                    0xBEEF + c as u64,
                    args.pipeline,
                    deadline,
                    totals,
                    latency,
                );
            });
        }
        barrier.wait();
        // Stop churn at the deadline; the scope's implicit join then
        // waits for every client to drain its final burst.
        if let Some(left) = deadline.checked_duration_since(Instant::now()) {
            std::thread::sleep(left);
        }
        stop_churn.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Give the churn thread's final repairs a moment, then stop the
    // server and collect its counters.
    let epochs = handle.store().current_id();
    let server_stats = handle.stats();
    let cache_hits = server_stats.cache_hits.load(Ordering::Relaxed);
    let server_queries = server_stats.queries.load(Ordering::Relaxed);
    let server_errors = server_stats.protocol_errors.load(Ordering::Relaxed);
    spawned
        .shutdown_and_join()
        .map_err(|e| format!("unclean shutdown: {e}"))?;

    let total: u64 = [
        &totals.direct,
        &totals.detour,
        &totals.unreachable,
        &totals.diam,
        &totals.epoch,
        &totals.tolerate,
    ]
    .iter()
    .map(|c| c.load(Ordering::Relaxed))
    .sum();
    Ok(Measurement {
        elapsed,
        route: totals.route.load(Ordering::Relaxed),
        total,
        direct: totals.direct.load(Ordering::Relaxed),
        detour: totals.detour.load(Ordering::Relaxed),
        unreachable: totals.unreachable.load(Ordering::Relaxed),
        diam: totals.diam.load(Ordering::Relaxed),
        epoch: totals.epoch.load(Ordering::Relaxed),
        tolerate: totals.tolerate.load(Ordering::Relaxed),
        churn_events: churn_events.load(Ordering::Relaxed),
        epochs,
        hit_rate: if server_queries > 0 {
            cache_hits as f64 / server_queries as f64
        } else {
            0.0
        },
        errors: server_errors + totals.errors.load(Ordering::Relaxed),
        latency: latency.into_inner().expect("latency histogram poisoned"),
    })
}

fn run() -> Result<(), String> {
    // Anchor the shared monotonic clock at process start so span/trace
    // timestamps scraped from the in-process server line up with ours.
    ftr_obs::monotonic_nanos();
    let args = Args::parse()?;
    let (graph, family_label) = parse_graph_spec(&args.graph)?;
    let built = build_scheme(&graph, &args.scheme)?;
    let scheme_label = built.spec().to_string();
    let graph_label = format!("{family_label} {scheme_label} routing");
    // The served network is the built routing's network (the augment
    // scheme serves the augmented graph, which has the same node set).
    let n = built.graph().node_count();
    let core: Vec<Node> = built.core_nodes().to_vec();
    let snapshot = RoutingSnapshot::from_built(built)
        .map_err(|e| e.to_string())?
        .into_shared();

    // With --compare-metrics, a metrics-off baseline runs first (same
    // duration, fresh server) so the JSON records the observability
    // overhead; the floor-asserted run below is always metrics-on.
    let baseline = if args.compare_metrics {
        let m = measure(&args, &snapshot, n, &core, false, false)?;
        eprintln!(
            "loadgen: metrics-off baseline: {:.0} route qps ({:.0} total)",
            m.route_qps(),
            m.total_qps()
        );
        Some(m)
    } else {
        None
    };
    // --compare-spans mirrors that with a spans-off (metrics still on)
    // baseline, isolating what the flight recorder itself costs.
    let spans_baseline = if args.compare_spans {
        let m = measure(&args, &snapshot, n, &core, true, false)?;
        eprintln!(
            "loadgen: spans-off baseline: {:.0} route qps ({:.0} total)",
            m.route_qps(),
            m.total_qps()
        );
        Some(m)
    } else {
        None
    };
    let metrics_on = args.metrics || args.compare_metrics || args.compare_spans;
    let spans_on = metrics_on && (args.spans || args.compare_spans);
    let m = measure(&args, &snapshot, n, &core, metrics_on, spans_on)?;

    let Measurement {
        elapsed,
        route,
        total,
        churn_events,
        epochs,
        hit_rate,
        errors,
        ..
    } = m;
    let route_qps = m.route_qps();
    let total_qps = m.total_qps();
    let latency = &m.latency[VERB_ROUTE];
    let (p50, p95, p99) = (
        latency.quantile_us(0.50),
        latency.quantile_us(0.95),
        latency.quantile_us(0.99),
    );
    // Per-verb burst-latency quantiles (a verb that never ran renders
    // zeros — the TOLERATE probe only fires on some burst schedules).
    let verb_latency = VERB_NAMES
        .iter()
        .zip(&m.latency)
        .map(|(name, h)| {
            format!(
                "\"{name}\": {{ \"count\": {}, \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1} }}",
                h.count(),
                h.quantile_us(0.50),
                h.quantile_us(0.95),
                h.quantile_us(0.99)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    // The metrics-on/off pair records what observability costs: the
    // overhead is (off - on) / off as a percentage of the baseline.
    let overhead = baseline.as_ref().map(|b| {
        let (off, on) = (b.route_qps(), route_qps);
        let pct = if off > 0.0 {
            (off - on) / off * 100.0
        } else {
            0.0
        };
        format!(
            "\n  \"metrics_off_route_qps\": {off:.0},\n  \
             \"metrics_off_total_qps\": {:.0},\n  \
             \"metrics_overhead_pct\": {pct:.1},",
            b.total_qps()
        )
    });
    // Same shape for the span-tracing pair.
    let span_overhead = spans_baseline.as_ref().map(|b| {
        let (off, on) = (b.route_qps(), route_qps);
        let pct = if off > 0.0 {
            (off - on) / off * 100.0
        } else {
            0.0
        };
        format!(
            "\n  \"spans_off_route_qps\": {off:.0},\n  \
             \"spans_off_total_qps\": {:.0},\n  \
             \"span_overhead_pct\": {pct:.1},",
            b.total_qps()
        )
    });
    let json = format!(
        "{{\n  \"bench\": \"loadgen\",\n  \"graph\": \"{graph_label}\",\n  \
         \"scheme\": \"{scheme_label}\",\n  \"n\": {n},\n  \
         \"clients\": {},\n  \"pipeline_depth\": {},\n  \"seconds\": {elapsed:.2},\n  \
         \"churn_hz\": {},\n  \"fault_budget\": {},\n  \"metrics\": {metrics_on},\n  \
         \"spans\": {spans_on},{}{}\n  \
         \"route_queries\": {route},\n  \
         \"route_qps\": {route_qps:.0},\n  \"total_queries\": {total},\n  \
         \"total_qps\": {total_qps:.0},\n  \
         \"route_latency_us\": {{ \"p50\": {p50:.1}, \"p95\": {p95:.1}, \"p99\": {p99:.1} }},\n  \
         \"verb_latency_us\": {{ {verb_latency} }},\n  \
         \"verbs\": {{ \"direct\": {}, \"detour\": {}, \"unreachable\": {}, \
         \"diam\": {}, \"epoch\": {}, \"tolerate\": {} }},\n  \
         \"direct\": {},\n  \"detour\": {},\n  \
         \"unreachable\": {},\n  \"churn_events\": {churn_events},\n  \
         \"epochs_advanced\": {epochs},\n  \
         \"cache_hit_rate\": {hit_rate:.3},\n  \"protocol_errors\": {errors}\n}}\n",
        args.clients,
        args.pipeline,
        args.churn_hz,
        args.fault_budget,
        overhead.unwrap_or_default(),
        span_overhead.unwrap_or_default(),
        m.direct,
        m.detour,
        m.unreachable,
        m.diam,
        m.epoch,
        m.tolerate,
        m.direct,
        m.detour,
        m.unreachable,
    );
    // Default to the workspace root of the build tree; if the binary
    // runs outside its checkout (path gone), fall back to the cwd so a
    // successful load test never fails on bookkeeping.
    let out = match &args.out {
        Some(path) => path.clone(),
        None => {
            let workspace = format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR"));
            if std::path::Path::new(env!("CARGO_MANIFEST_DIR")).is_dir() {
                workspace
            } else {
                "BENCH_serve.json".to_string()
            }
        }
    };
    std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "loadgen: {route} route queries in {elapsed:.2}s = {route_qps:.0}/s \
         ({total_qps:.0}/s total, burst latency p50 {p50:.0}us p95 {p95:.0}us p99 {p99:.0}us, \
         {epochs} epochs, cache hit rate {:.1}%, {churn_events} churn events)",
        hit_rate * 100.0,
    );
    eprintln!("loadgen: wrote {out}");

    let all_errors = errors
        + baseline.as_ref().map_or(0, |b| b.errors)
        + spans_baseline.as_ref().map_or(0, |b| b.errors);
    if all_errors > 0 {
        return Err(format!("{all_errors} protocol errors observed"));
    }
    if epochs == 0
        || baseline.as_ref().is_some_and(|b| b.epochs == 0)
        || spans_baseline.as_ref().is_some_and(|b| b.epochs == 0)
    {
        return Err("no epoch ever advanced — churn never reached the server".into());
    }
    if let Some(floor) = args.assert_qps {
        if route_qps < floor {
            return Err(format!(
                "route throughput {route_qps:.0}/s below the asserted floor {floor:.0}/s"
            ));
        }
    }
    Ok(())
}

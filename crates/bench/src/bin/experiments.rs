//! Regenerates every experiment table and figure of EXPERIMENTS.md.
//!
//! ```text
//! experiments [--exp e1,e4,a3 | --exp all] [--scale quick|full]
//!             [--format text|markdown|csv] [--figures-dir DIR]
//! ```
//!
//! With `--exp all --scale full --format markdown` the output is the
//! body of EXPERIMENTS.md; E13 (the paper's Figures 1–3) additionally
//! writes DOT files to `--figures-dir` (default `figures/`).

use std::io::Write as _;
use std::process::ExitCode;

use ftr_core::{
    BipolarRouting, CircularRouting, RoutingKind, TriCircularRouting, TriCircularVariant,
};
use ftr_graph::gen;
use ftr_sim::experiments::{registry, Scale};
use ftr_sim::viz;

#[derive(Clone)]
struct Options {
    experiments: Vec<String>,
    scale: Scale,
    format: Format,
    figures_dir: String,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiments: vec!["all".into()],
        scale: Scale::Quick,
        format: Format::Text,
        figures_dir: "figures".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let v = args.next().ok_or("--exp needs a value")?;
                opts.experiments = v.split(',').map(|s| s.trim().to_lowercase()).collect();
            }
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("quick") => Scale::Quick,
                    Some("full") => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("markdown") => Format::Markdown,
                    Some("csv") => Format::Csv,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--figures-dir" => {
                opts.figures_dir = args.next().ok_or("--figures-dir needs a value")?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--exp LIST|all] [--scale quick|full] \
                     [--format text|markdown|csv] [--figures-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn wants(opts: &Options, id: &str) -> bool {
    opts.experiments.iter().any(|e| e == "all" || e == id)
}

/// E13: regenerate the paper's three figures from built routings.
fn run_figures(opts: &Options) -> std::io::Result<()> {
    std::fs::create_dir_all(&opts.figures_dir)?;
    let g = gen::harary(3, 20).expect("valid");
    let circ = CircularRouting::build(&g).expect("concentrator exists");
    let g45 = gen::cycle(45).expect("valid");
    let tri = TriCircularRouting::build(&g45, TriCircularVariant::Standard).expect("fits");
    let g12 = gen::cycle(12).expect("valid");
    let bip = BipolarRouting::build(&g12, RoutingKind::Unidirectional).expect("two-trees");

    for (name, dot, ascii) in [
        (
            "figure1_circular",
            viz::circular_figure_dot(&circ),
            viz::circular_figure_ascii(&circ),
        ),
        (
            "figure2_tricircular",
            viz::tricircular_figure_dot(&tri),
            viz::tricircular_figure_ascii(&tri),
        ),
        (
            "figure3_bipolar",
            viz::bipolar_figure_dot(&bip),
            viz::bipolar_figure_ascii(&bip),
        ),
    ] {
        let path = format!("{}/{name}.dot", opts.figures_dir);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(dot.as_bytes())?;
        println!("{ascii}\n(wrote {path})\n");
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Reject unknown experiment ids up front (e13 is handled separately).
    let known: Vec<&str> = registry().iter().map(|s| s.id).collect();
    for requested in &opts.experiments {
        if requested != "all" && requested != "e13" && !known.contains(&requested.as_str()) {
            eprintln!("error: unknown experiment id {requested}");
            eprintln!("known: all, e13, {}", known.join(", "));
            return ExitCode::FAILURE;
        }
    }
    let mut failures = 0usize;
    for spec in registry() {
        if !wants(&opts, spec.id) {
            continue;
        }
        eprintln!("running {} — {} ...", spec.id, spec.title);
        let start = std::time::Instant::now();
        let tables = (spec.run)(opts.scale);
        let elapsed = start.elapsed();
        for table in tables {
            match opts.format {
                Format::Text => println!("{table}"),
                Format::Markdown => println!("{}", table.to_markdown()),
                Format::Csv => println!("{}", table.to_csv()),
            }
            // Experiments that verify bounds carry an "ok" column;
            // count any "no" as a reproduction failure.
            if table.headers().iter().any(|h| h == "ok") && !table.all_yes("ok") {
                // E14 measures a stand-in baseline: "no" is a finding,
                // not a failure.
                if table.id() != "E14" {
                    failures += 1;
                    eprintln!("BOUND VIOLATION in {}", table.id());
                }
            }
        }
        eprintln!("  {} done in {:.1?}", spec.id, elapsed);
    }
    if wants(&opts, "e13") {
        eprintln!("running e13 — figures ...");
        if let Err(e) = run_figures(&opts) {
            eprintln!("error writing figures: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) violated their paper bound");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

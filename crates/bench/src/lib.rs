//! Shared fixtures for the Criterion benches: prebuilt graphs and
//! routings so each bench file measures exactly one thing (construction
//! time, surviving-graph evaluation, or verification throughput).

use ftr_core::{
    BipolarRouting, CircularRouting, Compile, CompiledRoutes, KernelRouting, Routing, RoutingKind,
    TriCircularRouting, TriCircularVariant,
};
use ftr_graph::{gen, Graph, NodeSet};

pub mod load;

/// The default mid-size benchmark network: H(4, 40), κ = 4.
pub fn bench_graph() -> Graph {
    gen::harary(4, 40).expect("valid parameters")
}

/// A kernel routing on [`bench_graph`].
pub fn bench_kernel() -> (Graph, KernelRouting) {
    let g = bench_graph();
    let k = KernelRouting::build(&g).expect("connected");
    (g, k)
}

/// A circular routing on [`bench_graph`].
pub fn bench_circular() -> (Graph, CircularRouting) {
    let g = bench_graph();
    let c = CircularRouting::build(&g).expect("concentrator exists");
    (g, c)
}

/// A standard tri-circular routing on C45 (t = 1, K = 15).
pub fn bench_tricircular() -> (Graph, TriCircularRouting) {
    let g = gen::cycle(45).expect("valid");
    let t = TriCircularRouting::build(&g, TriCircularVariant::Standard).expect("fits");
    (g, t)
}

/// A small tri-circular routing on C27 (t = 1, K = 9).
pub fn bench_tricircular_small() -> (Graph, TriCircularRouting) {
    let g = gen::cycle(27).expect("valid");
    let t = TriCircularRouting::build(&g, TriCircularVariant::Small).expect("fits");
    (g, t)
}

/// A bipolar routing on C24.
pub fn bench_bipolar(kind: RoutingKind) -> (Graph, BipolarRouting) {
    let g = gen::cycle(24).expect("valid");
    let b = BipolarRouting::build(&g, kind).expect("two-trees holds");
    (g, b)
}

/// A three-fault set on a 40-node graph (for surviving-graph benches).
pub fn three_faults() -> NodeSet {
    NodeSet::from_nodes(40, [3, 17, 31])
}

/// Evaluates one surviving-graph diameter through the legacy route-walk
/// path (the verifier's historical inner loop).
pub fn surviving_diameter(routing: &Routing, faults: &NodeSet) -> Option<u32> {
    use ftr_core::RouteTable;
    routing.surviving(faults).diameter()
}

/// Evaluates one surviving-graph diameter through the compiled engine's
/// mask-based fast path.
pub fn surviving_diameter_compiled(engine: &CompiledRoutes, faults: &NodeSet) -> Option<u32> {
    use ftr_core::RouteTable;
    engine.surviving_diameter(faults)
}

/// The engine-comparison network of bench `e16_engine`: H(5, 24), κ = 5.
pub fn engine_graph() -> Graph {
    gen::harary(5, 24).expect("valid parameters")
}

/// The kernel routing on [`engine_graph`] plus its compiled form —
/// the before/after pair for the `e16_engine` bench.
pub fn engine_pair() -> (KernelRouting, CompiledRoutes) {
    let g = engine_graph();
    let kernel = KernelRouting::build(&g).expect("connected");
    let engine = kernel.routing().compile();
    (kernel, engine)
}

/// The scale-sweep network of bench `e17_scale`: H(4, n), κ = 4, for
/// n ∈ {256, 1024, 4096}.
pub fn scale_graph(n: usize) -> Graph {
    gen::harary(4, n).expect("valid parameters")
}

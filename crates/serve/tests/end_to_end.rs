//! End-to-end test: a real daemon on loopback, driven through the
//! client — queries, fault churn, epoch advance, cache behavior and
//! clean shutdown.

use std::time::{Duration, Instant};

use ftr_core::{KernelRouting, RouteTable};
use ftr_graph::{gen, NodeSet};
use ftr_serve::{Client, RoutingSnapshot, Server, ServerConfig};

fn start_petersen_server() -> (ftr_serve::SpawnedServer, RoutingSnapshot) {
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
    let server = Server::bind(
        snapshot.clone().into_shared(),
        ServerConfig {
            batch_window: Duration::from_micros(100),
            // Small enough that a TOLERATE with a huge fault budget is
            // rejected even on a 10-node graph (2^10 = 1024 sets).
            tolerate_budget: 500,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server.spawn(), snapshot)
}

/// Polls `EPOCH` until the fault count reaches `want` (ingestion is
/// asynchronous).
fn wait_for_faults(client: &mut Client, want: usize) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (id, faults) = client.epoch().unwrap();
        if faults == want {
            return id;
        }
        assert!(
            Instant::now() < deadline,
            "ingest did not reach {want} faults (at {faults})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn serves_queries_through_fault_churn() {
    let (server, snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // Fault-free epoch 0.
    assert!(client.ping().unwrap());
    assert_eq!(client.epoch().unwrap(), (0, 0));
    let base_diam = client.diam().unwrap().expect("petersen kernel connected");
    assert_eq!(
        Some(base_diam),
        snapshot.engine().surviving_diameter(&NodeSet::new(10))
    );

    // Direct route matches the stored table.
    let (s, d, view) = snapshot.routing().routes().next().unwrap();
    let direct = client.route(s, d).unwrap();
    let want: Vec<String> = view.nodes().iter().map(|v| v.to_string()).collect();
    assert_eq!(direct, format!("OK DIRECT {}", want.join(" ")));

    // Tolerance: the kernel routing claims (2t, t); measured through the
    // wire it must agree with the offline verifier's worst diameter.
    let claim = KernelRouting::build(&gen::petersen())
        .unwrap()
        .guarantee_theorem_3()
        .claim();
    assert!(client.tolerate(claim.diameter, claim.faults).unwrap());
    assert!(!client.tolerate(0, 1).unwrap());
    // A failed TOLERATE names its witness so the caller can reproduce.
    let reply = client.request("TOLERATE 0 1").unwrap();
    assert!(reply.starts_with("OK TOLERATE no found="), "{reply}");
    assert!(reply.contains("witness="), "{reply}");

    // AUDIT certifies the claim against the pristine snapshot with full
    // accounting (epoch-independent, memoized server-side).
    assert!(client.audit(claim.diameter, claim.faults).unwrap());
    assert!(!client.audit(0, 1).unwrap());
    let reply = client
        .request(&format!("AUDIT {} {}", claim.diameter, claim.faults))
        .unwrap();
    assert!(reply.starts_with("OK AUDIT holds visited="), "{reply}");
    assert!(
        reply.contains("space=56"),
        "audit accounts for all C(10, <=2) sets: {reply}"
    );

    // Inject a fault; the epoch advances and queries follow the new state.
    assert!(client.fail(3).unwrap());
    let id = wait_for_faults(&mut client, 1);
    assert!(id >= 1);
    assert_eq!(client.route(3, 5).unwrap(), "OK UNREACHABLE");
    let wire_diam = client.diam().unwrap();
    assert_eq!(
        wire_diam,
        snapshot
            .engine()
            .surviving_diameter(&NodeSet::from_nodes(10, [3]))
    );

    // Duplicate FAIL is queued but ineffective: no epoch advance for it.
    assert!(client.fail(3).unwrap());
    std::thread::sleep(Duration::from_millis(20));
    let (_, faults) = client.epoch().unwrap();
    assert_eq!(faults, 1);

    // Repair brings the baseline back.
    assert!(client.repair(3).unwrap());
    wait_for_faults(&mut client, 0);
    assert_eq!(client.diam().unwrap(), Some(base_diam));

    // Protocol errors answer ERR without dropping the connection.
    assert!(client.request("FROBNICATE").unwrap().starts_with("ERR "));
    assert!(client.request("ROUTE 0 99").unwrap().starts_with("ERR "));
    assert!(client.ping().unwrap(), "connection survives ERR replies");

    // ERR replies are never cached: distinct invalid queries must not
    // grow the epoch cache (its key space is bounded by valid pairs).
    let cache_before = server.handle().store().load().cache().len();
    for i in 0..8u32 {
        let reply = client.request(&format!("ROUTE 0 {}", 1000 + i)).unwrap();
        assert!(reply.starts_with("ERR "), "{reply}");
        let reply = client.request(&format!("TOLERATE 4 {}", 50 + i)).unwrap();
        assert!(reply.starts_with("ERR "), "{reply}");
    }
    assert_eq!(
        server.handle().store().load().cache().len(),
        cache_before,
        "ERR replies leaked into the query cache"
    );

    // Stats reflect the 18 deliberate errors and zero others.
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains("errors=18"), "unexpected stats: {stats}");

    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn pipelined_queries_answer_in_order() {
    let (server, snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let requests: Vec<String> = (0..10u32)
        .flat_map(|x| {
            (0..10u32)
                .filter(move |&y| y != x)
                .map(move |y| format!("ROUTE {x} {y}"))
        })
        .collect();
    let mut replies = Vec::new();
    client.pipeline(&requests, &mut replies).unwrap();
    assert_eq!(replies.len(), requests.len());
    for (req, reply) in requests.iter().zip(&replies) {
        let mut toks = req.split(' ');
        let (_, x, y) = (
            toks.next().unwrap(),
            toks.next().unwrap(),
            toks.next().unwrap(),
        );
        assert!(
            reply.starts_with("OK DIRECT") || reply.starts_with("OK DETOUR"),
            "{req} -> {reply}"
        );
        let nodes: Vec<&str> = reply.splitn(3, ' ').nth(2).unwrap().split(' ').collect();
        assert_eq!(nodes.first(), Some(&x), "{req} -> {reply}");
        assert_eq!(nodes.last(), Some(&y), "{req} -> {reply}");
    }
    // Everything was valid: zero protocol errors, and the repeated pairs
    // were all cache misses exactly once (100 distinct keys... 90 pairs).
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains("errors=0"), "unexpected stats: {stats}");
    drop(snapshot);
    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn concurrent_clients_and_churn_stay_consistent() {
    let (server, snapshot) = start_petersen_server();
    let addr = server.addr();
    std::thread::scope(|scope| {
        // A churn client cycles faults while query clients hammer ROUTE.
        scope.spawn(move || {
            let mut churn = Client::connect(addr).unwrap();
            for round in 0..30u32 {
                let v = round % 10;
                churn.fail(v).unwrap();
                std::thread::sleep(Duration::from_micros(300));
                churn.repair(v).unwrap();
            }
            churn.quit().unwrap();
        });
        for t in 0..3u32 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..300u32 {
                    let x = (i + t) % 10;
                    let y = (i + t + 1 + i % 7) % 10;
                    if x == y {
                        continue;
                    }
                    let reply = client.route(x, y).unwrap();
                    assert!(reply.starts_with("OK "), "ROUTE {x} {y} -> {reply}");
                }
                client.quit().unwrap();
            });
        }
    });
    let stats = server.handle().stats();
    assert_eq!(
        stats
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    drop(snapshot);
    server.shutdown_and_join().unwrap();
}

#[test]
fn stats_reply_keeps_every_legacy_token_and_appends_observability() {
    let (server, _snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.ping().unwrap());
    let stats = client.request("STATS").unwrap();

    // Regression: a pre-observability client parses STATS positionally —
    // the first nine tokens must be exactly the old reply, same keys,
    // same order, and every value must still be a bare integer.
    let tokens: Vec<&str> = stats.split(' ').collect();
    assert_eq!(&tokens[..2], &["OK", "STATS"], "{stats}");
    const LEGACY_KEYS: [&str; 8] = [
        "epoch",
        "faults",
        "queries",
        "cache_hits",
        "errors",
        "connections",
        "events",
        "accept_retries",
    ];
    for (token, want) in tokens[2..].iter().zip(LEGACY_KEYS) {
        let (key, value) = token.split_once('=').expect("key=value");
        assert_eq!(key, want, "legacy token order changed: {stats}");
        assert!(value.parse::<u64>().is_ok(), "non-integer {token}: {stats}");
    }
    // The new tokens ride strictly after the legacy ones.
    let uptime_at = tokens.iter().position(|t| t.starts_with("uptime_s="));
    assert_eq!(uptime_at, Some(2 + LEGACY_KEYS.len()), "{stats}");
    assert!(stats.contains(" verb_route="), "{stats}");
    // The introspection flush makes STATS see its own batch: this
    // connection issued one PING and this very STATS.
    assert!(stats.contains(" verb_ping=1"), "{stats}");
    assert!(stats.contains(" verb_stats=1"), "{stats}");
    // The flight-recorder tokens ride after the verb counters, still
    // bare integers.
    let alerts_at = tokens
        .iter()
        .position(|t| t.starts_with("alerts_active="))
        .expect("alerts_active token");
    let dropped_at = tokens
        .iter()
        .position(|t| t.starts_with("spans_dropped="))
        .expect("spans_dropped token");
    let last_verb_at = tokens
        .iter()
        .rposition(|t| t.starts_with("verb_"))
        .expect("verb tokens");
    assert_eq!(alerts_at, last_verb_at + 1, "{stats}");
    assert_eq!(dropped_at, alerts_at + 1, "{stats}");
    for at in [alerts_at, dropped_at] {
        let (_, value) = tokens[at].split_once('=').unwrap();
        assert!(value.parse::<u64>().is_ok(), "{stats}");
    }

    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn metrics_exposition_and_trace_journal_answer_over_the_wire() {
    let (server, _snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // Drive some traffic so the series move: routes, a search, churn.
    for y in 1..6u32 {
        assert!(client.route(0, y).unwrap().starts_with("OK "));
    }
    assert!(client.tolerate(4, 1).unwrap());
    assert!(client.fail(3).unwrap());
    wait_for_faults(&mut client, 1);

    let scrape = |text: &str| -> std::collections::HashMap<String, f64> {
        let mut values = std::collections::HashMap::new();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            values.insert(series.to_string(), value.parse::<f64>().unwrap());
        }
        values
    };
    let first = client.metrics().unwrap();
    let families: Vec<&str> = first
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(
        families.len() >= 12,
        "exposition too small ({} families): {families:?}",
        families.len()
    );
    let a = scrape(&first);
    assert!(a["ftr_requests_total{verb=\"route\"}"] >= 5.0);
    assert!(a["ftr_request_latency_seconds_count{verb=\"route\"}"] >= 5.0);
    assert!(a["ftr_search_visited_total"] >= 1.0, "tolerate searched");
    assert!(a["ftr_epoch_advances_total"] >= 1.0, "churn published");
    assert_eq!(a["ftr_epoch_id"], 1.0);
    assert_eq!(a["ftr_epoch_faults"], 1.0);
    assert!(a["ftr_ingest_events_total"] >= 1.0);

    // Counters are monotonic across scrapes, and the second scrape sees
    // the first one's METRICS dispatch.
    for y in 1..4u32 {
        assert!(client.route(9, y).unwrap().starts_with("OK "));
    }
    let second = scrape(&client.metrics().unwrap());
    for (series, before) in &a {
        let name = series.split('{').next().unwrap();
        if name.ends_with("_total") || name.ends_with("_count") || name.ends_with("_sum") {
            let after = second.get(series).copied().unwrap_or(f64::NAN);
            assert!(
                after >= *before,
                "{series} went backwards: {before} -> {after}"
            );
        }
    }
    assert!(second["ftr_requests_total{verb=\"metrics\"}"] >= 1.0);
    assert!(
        second["ftr_requests_total{verb=\"route\"}"]
            >= a["ftr_requests_total{verb=\"route\"}"] + 3.0
    );

    // The trace journal carries the epoch advance, tagged with its epoch
    // id and a monotonic timestamp.
    let events = client.trace(64).unwrap();
    assert!(!events.is_empty());
    for event in &events {
        assert!(event.starts_with("ts_ns="), "{event}");
        assert!(event.contains(" epoch="), "{event}");
        assert!(event.contains(" kind="), "{event}");
    }
    assert!(
        events.iter().any(|e| e.contains("kind=epoch_publish")),
        "{events:?}"
    );
    assert!(
        events.iter().any(|e| e.contains("kind=tolerate_search")),
        "{events:?}"
    );
    // TRACE n caps the drain.
    assert_eq!(client.trace(2).unwrap().len(), 2);

    // Pipelining across a multi-line reply stays in order.
    let mut replies = Vec::new();
    client
        .pipeline(&["PING".to_string(), "PING".to_string()], &mut replies)
        .unwrap();
    assert_eq!(replies, ["OK PONG", "OK PONG"]);

    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn disabled_metrics_keep_the_exposition_answerable() {
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
    let server = Server::bind(
        snapshot.into_shared(),
        ServerConfig {
            metrics: false,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.route(0, 5).unwrap().starts_with("OK "));
    let text = client.metrics().unwrap();
    assert!(text.contains("# TYPE ftr_requests_total counter"));
    // Hot-path recording is off: the serve-side series stay zero, while
    // the bridged ServerStats counters still move.
    let route = text
        .lines()
        .find(|l| l.starts_with("ftr_requests_total{verb=\"route\"}"))
        .unwrap();
    assert!(route.ends_with(" 0"), "{route}");
    let queries = text
        .lines()
        .find(|l| l.starts_with("ftr_queries_total"))
        .unwrap();
    assert!(!queries.ends_with(" 0"), "{queries}");
    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn malformed_input_never_panics_a_shard() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{Shutdown, TcpStream};

    let (server, _snapshot) = start_petersen_server();
    let addr = server.addr();

    // A raw connection abuses the wire: invalid UTF-8, unknown verbs,
    // out-of-range and non-numeric nodes, missing arguments. Every
    // line must come back as a structured ERR on the same connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    let abuse: [&[u8]; 8] = [
        b"ROUTE \xff\xfe 1\n",   // invalid UTF-8 argument
        b"\xc3\x28\n",           // invalid UTF-8 verb
        b"FROBNICATE 1 2\n",     // unknown verb
        b"ROUTE 0 4294967295\n", // node out of range
        b"ROUTE -1 2\n",         // negative node
        b"ROUTE 0\n",            // missing argument
        b"TOLERATE\n",           // missing both arguments
        b"AUDIT nine lives\n",   // non-numeric arguments
    ];
    for line in abuse {
        raw.write_all(line).unwrap();
    }
    raw.flush().unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    for line in abuse {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("ERR "),
            "{:?} should answer ERR, got {reply:?}",
            String::from_utf8_lossy(line)
        );
    }
    drop(reader);
    drop(raw);

    // A request cut off by EOF mid-line is still served before the
    // connection winds down.
    let mut half = TcpStream::connect(addr).unwrap();
    half.write_all(b"EPOCH").unwrap(); // no trailing newline
    half.shutdown(Shutdown::Write).unwrap();
    let mut out = String::new();
    BufReader::new(&mut half).read_to_string(&mut out).unwrap();
    assert!(out.starts_with("OK EPOCH"), "partial line at EOF: {out:?}");

    // A single line larger than the 1 MiB cap kills only that
    // connection — no reply, no shard loss.
    let mut flood = TcpStream::connect(addr).unwrap();
    let junk = vec![b'A'; (1 << 20) + 64];
    // The server may hang up mid-write; the write failing is fine.
    let _ = flood.write_all(&junk);
    let _ = flood.flush();
    let mut sink = Vec::new();
    let _ = flood.read_to_end(&mut sink);
    assert!(sink.is_empty(), "oversized line must not get a reply");
    drop(flood);

    // The shards all survived the abuse: a fresh client is served, and
    // the deliberate errors were counted rather than panicked on.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.ping().unwrap());
    assert!(client.route(0, 1).unwrap().starts_with("OK "));
    let stats = client.request("STATS").unwrap();
    let errors: u64 = stats
        .split(' ')
        .find_map(|t| t.strip_prefix("errors="))
        .unwrap()
        .parse()
        .unwrap();
    assert!(errors >= abuse.len() as u64, "unexpected stats: {stats}");
    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

/// Parses one `key=value`-tokenized reply line into a map.
fn parse_fields(line: &str) -> std::collections::HashMap<&str, &str> {
    line.split(' ')
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

#[test]
fn flight_recorder_captures_slow_queries_spans_and_lineage() {
    // A budget large enough that the deliberately slow TOLERATE sweep
    // (every C(10, <=9) fault set) actually runs instead of being
    // rejected — that one batch dwarfs the warm-up pings.
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
    let server = Server::bind(
        snapshot.into_shared(),
        ServerConfig {
            batch_window: Duration::from_micros(100),
            tolerate_budget: 1_000_000,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn();
    let mut client = Client::connect(server.addr()).unwrap();

    // Warm the rolling p99: slow retention only arms once the duration
    // histogram holds enough samples (one batch per blocking request).
    for _ in 0..40 {
        assert!(client.ping().unwrap());
    }
    // A ROUTE batch so the recent ring holds cache/engine stages.
    assert!(client.route(0, 5).unwrap().starts_with("OK "));
    // The slow query.
    let reply = client.request("TOLERATE 4 9").unwrap();
    assert!(reply.starts_with("OK TOLERATE"), "{reply}");

    // SLOW returns the complete span tree of the slow batch.
    let slow = client.slow(8).unwrap();
    assert!(!slow.is_empty(), "slow log empty after a full-budget sweep");
    let tolerate_line = slow
        .iter()
        .find(|l| parse_fields(l).get("stage") == Some(&"tolerate"))
        .unwrap_or_else(|| panic!("no tolerate span in slow log: {slow:#?}"));
    let slow_batch = parse_fields(tolerate_line)["batch"].to_string();

    // Collect that batch's full tree and check it end to end.
    let tree: Vec<std::collections::HashMap<&str, &str>> = slow
        .iter()
        .map(|l| parse_fields(l))
        .filter(|f| f["batch"] == slow_batch)
        .collect();
    let stages: Vec<&str> = tree.iter().map(|f| f["stage"]).collect();
    for want in ["batch", "decode", "tolerate", "serialize", "write"] {
        assert!(stages.contains(&want), "missing {want} stage: {stages:?}");
    }
    // Well-nested: exactly one root, every child inside its parent's
    // window, every span balanced.
    let span_of = |id: &str| tree.iter().find(|f| f["span"] == id);
    let mut roots = 0;
    for f in &tree {
        let (start, end): (u64, u64) =
            (f["start_ns"].parse().unwrap(), f["end_ns"].parse().unwrap());
        assert!(end >= start, "unbalanced span: {f:?}");
        assert_eq!(f["dur_ns"].parse::<u64>().unwrap(), end - start);
        if f["parent"] == "0" {
            roots += 1;
            assert_eq!(f["stage"], "batch");
            continue;
        }
        let parent = span_of(f["parent"]).unwrap_or_else(|| panic!("orphan span: {f:?}"));
        let (ps, pe): (u64, u64) = (
            parent["start_ns"].parse().unwrap(),
            parent["end_ns"].parse().unwrap(),
        );
        assert!(
            ps <= start && end <= pe,
            "span escapes its parent window: {f:?} in {parent:?}"
        );
    }
    assert_eq!(roots, 1, "slow batch must have exactly one root");
    // The tolerate stage dominates the batch: the root's duration is
    // mostly the search.
    let root_dur: u64 = tree
        .iter()
        .find(|f| f["parent"] == "0")
        .map(|f| f["dur_ns"].parse().unwrap())
        .unwrap();
    let tolerate_dur: u64 = parse_fields(tolerate_line)["dur_ns"].parse().unwrap();
    assert!(tolerate_dur <= root_dur, "child longer than root");
    assert!(
        tolerate_dur * 2 >= root_dur,
        "tolerate stage should dominate its batch: {tolerate_dur} of {root_dur}"
    );

    // SPANS covers the recent ring, including the ROUTE batch's cache
    // stage (and the engine window under it for the cold miss).
    let spans = client.spans(64).unwrap();
    let span_stages: Vec<&str> = spans
        .iter()
        .filter_map(|l| parse_fields(l).get("stage").copied())
        .collect();
    assert!(span_stages.contains(&"cache"), "{span_stages:?}");
    assert!(span_stages.contains(&"engine"), "{span_stages:?}");

    // Epoch lineage: two advances chain parent -> child with signed
    // occupancy deltas and apply/publish timing.
    assert!(client.fail(3).unwrap());
    wait_for_faults(&mut client, 1);
    assert!(client.repair(3).unwrap());
    wait_for_faults(&mut client, 0);
    let lineage = client.lineage(8).unwrap();
    assert_eq!(lineage.len(), 2, "{lineage:#?}");
    let first = parse_fields(&lineage[0]);
    let second = parse_fields(&lineage[1]);
    assert_eq!((first["epoch"], first["parent"]), ("1", "0"));
    assert_eq!((second["epoch"], second["parent"]), ("2", "1"));
    assert_eq!((first["delta"], second["delta"]), ("1", "-1"));
    for record in [&first, &second] {
        assert_eq!(record["events"], "1");
        assert_eq!(record["applied"], "1");
        assert!(record["apply_ns"].parse::<u64>().is_ok());
        assert!(record["publish_ns"].parse::<u64>().unwrap() > 0);
        assert!(record["ts_ns"].parse::<u64>().unwrap() > 0);
    }

    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn schemes_and_plan_verbs_answer_over_the_wire() {
    // Serve a planner-built snapshot so scheme provenance flows
    // end-to-end: planner -> BuiltRouting -> snapshot -> daemon.
    let g = gen::petersen();
    let plan = ftr_core::Planner::new()
        .plan(&g, &ftr_core::PlannerRequest::tolerate(2).single_routes())
        .unwrap();
    let winner = plan.winner.spec().to_string();
    let snapshot = RoutingSnapshot::from_built(plan.winner).unwrap();
    // The recorded spec is the canonical rendering, budget included.
    assert_eq!(snapshot.scheme().unwrap().spec, winner);
    let server = Server::bind(snapshot.into_shared(), ServerConfig::default())
        .unwrap()
        .spawn();
    let mut client = Client::connect(server.addr()).unwrap();

    // SCHEMES: one entry per registry scheme, applicable ones carrying
    // their (d, f)/theorem guarantee, inapplicable ones a dash.
    let schemes = client.request("SCHEMES").unwrap();
    assert!(schemes.starts_with("OK SCHEMES "), "{schemes}");
    let entries: Vec<&str> = schemes["OK SCHEMES ".len()..].split(' ').collect();
    assert_eq!(entries.len(), ftr_core::SCHEME_NAMES.len(), "{schemes}");
    assert!(
        entries.iter().any(|e| e.starts_with("kernel=(")),
        "kernel applies on petersen: {schemes}"
    );
    assert!(
        entries.contains(&"hypercube=-"),
        "petersen is not a hypercube: {schemes}"
    );
    // Memoized: the second survey renders identically.
    assert_eq!(client.request("SCHEMES").unwrap(), schemes);

    // PLAN: a (3, 2) target on petersen is met by the augmentation
    // scheme; an impossible fault budget reports none.
    let plan_reply = client.request("PLAN 3 2").unwrap();
    assert!(
        plan_reply.starts_with("OK PLAN scheme=augment:f=2 theorem=sec6-augment d=3 f=2"),
        "{plan_reply}"
    );
    assert_eq!(client.request("PLAN 3 2").unwrap(), plan_reply, "memoized");
    assert_eq!(client.request("PLAN 1 9").unwrap(), "OK PLAN none");
    assert!(client.request("PLAN").unwrap().starts_with("ERR "));

    drop(client);
    server.shutdown_and_join().unwrap();
}

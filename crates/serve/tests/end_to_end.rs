//! End-to-end test: a real daemon on loopback, driven through the
//! client — queries, fault churn, epoch advance, cache behavior and
//! clean shutdown.

use std::time::{Duration, Instant};

use ftr_core::{KernelRouting, RouteTable};
use ftr_graph::{gen, NodeSet};
use ftr_serve::{Client, RoutingSnapshot, Server, ServerConfig};

fn start_petersen_server() -> (ftr_serve::SpawnedServer, RoutingSnapshot) {
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
    let server = Server::bind(
        snapshot.clone().into_shared(),
        ServerConfig {
            batch_window: Duration::from_micros(100),
            // Small enough that a TOLERATE with a huge fault budget is
            // rejected even on a 10-node graph (2^10 = 1024 sets).
            tolerate_budget: 500,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server.spawn(), snapshot)
}

/// Polls `EPOCH` until the fault count reaches `want` (ingestion is
/// asynchronous).
fn wait_for_faults(client: &mut Client, want: usize) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (id, faults) = client.epoch().unwrap();
        if faults == want {
            return id;
        }
        assert!(
            Instant::now() < deadline,
            "ingest did not reach {want} faults (at {faults})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn serves_queries_through_fault_churn() {
    let (server, snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // Fault-free epoch 0.
    assert!(client.ping().unwrap());
    assert_eq!(client.epoch().unwrap(), (0, 0));
    let base_diam = client.diam().unwrap().expect("petersen kernel connected");
    assert_eq!(
        Some(base_diam),
        snapshot.engine().surviving_diameter(&NodeSet::new(10))
    );

    // Direct route matches the stored table.
    let (s, d, view) = snapshot.routing().routes().next().unwrap();
    let direct = client.route(s, d).unwrap();
    let want: Vec<String> = view.nodes().iter().map(|v| v.to_string()).collect();
    assert_eq!(direct, format!("OK DIRECT {}", want.join(" ")));

    // Tolerance: the kernel routing claims (2t, t); measured through the
    // wire it must agree with the offline verifier's worst diameter.
    let claim = KernelRouting::build(&gen::petersen())
        .unwrap()
        .guarantee_theorem_3()
        .claim();
    assert!(client.tolerate(claim.diameter, claim.faults).unwrap());
    assert!(!client.tolerate(0, 1).unwrap());
    // A failed TOLERATE names its witness so the caller can reproduce.
    let reply = client.request("TOLERATE 0 1").unwrap();
    assert!(reply.starts_with("OK TOLERATE no found="), "{reply}");
    assert!(reply.contains("witness="), "{reply}");

    // AUDIT certifies the claim against the pristine snapshot with full
    // accounting (epoch-independent, memoized server-side).
    assert!(client.audit(claim.diameter, claim.faults).unwrap());
    assert!(!client.audit(0, 1).unwrap());
    let reply = client
        .request(&format!("AUDIT {} {}", claim.diameter, claim.faults))
        .unwrap();
    assert!(reply.starts_with("OK AUDIT holds visited="), "{reply}");
    assert!(
        reply.contains("space=56"),
        "audit accounts for all C(10, <=2) sets: {reply}"
    );

    // Inject a fault; the epoch advances and queries follow the new state.
    assert!(client.fail(3).unwrap());
    let id = wait_for_faults(&mut client, 1);
    assert!(id >= 1);
    assert_eq!(client.route(3, 5).unwrap(), "OK UNREACHABLE");
    let wire_diam = client.diam().unwrap();
    assert_eq!(
        wire_diam,
        snapshot
            .engine()
            .surviving_diameter(&NodeSet::from_nodes(10, [3]))
    );

    // Duplicate FAIL is queued but ineffective: no epoch advance for it.
    assert!(client.fail(3).unwrap());
    std::thread::sleep(Duration::from_millis(20));
    let (_, faults) = client.epoch().unwrap();
    assert_eq!(faults, 1);

    // Repair brings the baseline back.
    assert!(client.repair(3).unwrap());
    wait_for_faults(&mut client, 0);
    assert_eq!(client.diam().unwrap(), Some(base_diam));

    // Protocol errors answer ERR without dropping the connection.
    assert!(client.request("FROBNICATE").unwrap().starts_with("ERR "));
    assert!(client.request("ROUTE 0 99").unwrap().starts_with("ERR "));
    assert!(client.ping().unwrap(), "connection survives ERR replies");

    // ERR replies are never cached: distinct invalid queries must not
    // grow the epoch cache (its key space is bounded by valid pairs).
    let cache_before = server.handle().store().load().cache().len();
    for i in 0..8u32 {
        let reply = client.request(&format!("ROUTE 0 {}", 1000 + i)).unwrap();
        assert!(reply.starts_with("ERR "), "{reply}");
        let reply = client.request(&format!("TOLERATE 4 {}", 50 + i)).unwrap();
        assert!(reply.starts_with("ERR "), "{reply}");
    }
    assert_eq!(
        server.handle().store().load().cache().len(),
        cache_before,
        "ERR replies leaked into the query cache"
    );

    // Stats reflect the 18 deliberate errors and zero others.
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains("errors=18"), "unexpected stats: {stats}");

    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn pipelined_queries_answer_in_order() {
    let (server, snapshot) = start_petersen_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let requests: Vec<String> = (0..10u32)
        .flat_map(|x| {
            (0..10u32)
                .filter(move |&y| y != x)
                .map(move |y| format!("ROUTE {x} {y}"))
        })
        .collect();
    let mut replies = Vec::new();
    client.pipeline(&requests, &mut replies).unwrap();
    assert_eq!(replies.len(), requests.len());
    for (req, reply) in requests.iter().zip(&replies) {
        let mut toks = req.split(' ');
        let (_, x, y) = (
            toks.next().unwrap(),
            toks.next().unwrap(),
            toks.next().unwrap(),
        );
        assert!(
            reply.starts_with("OK DIRECT") || reply.starts_with("OK DETOUR"),
            "{req} -> {reply}"
        );
        let nodes: Vec<&str> = reply.splitn(3, ' ').nth(2).unwrap().split(' ').collect();
        assert_eq!(nodes.first(), Some(&x), "{req} -> {reply}");
        assert_eq!(nodes.last(), Some(&y), "{req} -> {reply}");
    }
    // Everything was valid: zero protocol errors, and the repeated pairs
    // were all cache misses exactly once (100 distinct keys... 90 pairs).
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains("errors=0"), "unexpected stats: {stats}");
    drop(snapshot);
    client.quit().unwrap();
    server.shutdown_and_join().unwrap();
}

#[test]
fn concurrent_clients_and_churn_stay_consistent() {
    let (server, snapshot) = start_petersen_server();
    let addr = server.addr();
    std::thread::scope(|scope| {
        // A churn client cycles faults while query clients hammer ROUTE.
        scope.spawn(move || {
            let mut churn = Client::connect(addr).unwrap();
            for round in 0..30u32 {
                let v = round % 10;
                churn.fail(v).unwrap();
                std::thread::sleep(Duration::from_micros(300));
                churn.repair(v).unwrap();
            }
            churn.quit().unwrap();
        });
        for t in 0..3u32 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..300u32 {
                    let x = (i + t) % 10;
                    let y = (i + t + 1 + i % 7) % 10;
                    if x == y {
                        continue;
                    }
                    let reply = client.route(x, y).unwrap();
                    assert!(reply.starts_with("OK "), "ROUTE {x} {y} -> {reply}");
                }
                client.quit().unwrap();
            });
        }
    });
    let stats = server.handle().stats();
    assert_eq!(
        stats
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    drop(snapshot);
    server.shutdown_and_join().unwrap();
}

#[test]
fn schemes_and_plan_verbs_answer_over_the_wire() {
    // Serve a planner-built snapshot so scheme provenance flows
    // end-to-end: planner -> BuiltRouting -> snapshot -> daemon.
    let g = gen::petersen();
    let plan = ftr_core::Planner::new()
        .plan(&g, &ftr_core::PlannerRequest::tolerate(2).single_routes())
        .unwrap();
    let winner = plan.winner.spec().to_string();
    let snapshot = RoutingSnapshot::from_built(plan.winner).unwrap();
    // The recorded spec is the canonical rendering, budget included.
    assert_eq!(snapshot.scheme().unwrap().spec, winner);
    let server = Server::bind(snapshot.into_shared(), ServerConfig::default())
        .unwrap()
        .spawn();
    let mut client = Client::connect(server.addr()).unwrap();

    // SCHEMES: one entry per registry scheme, applicable ones carrying
    // their (d, f)/theorem guarantee, inapplicable ones a dash.
    let schemes = client.request("SCHEMES").unwrap();
    assert!(schemes.starts_with("OK SCHEMES "), "{schemes}");
    let entries: Vec<&str> = schemes["OK SCHEMES ".len()..].split(' ').collect();
    assert_eq!(entries.len(), ftr_core::SCHEME_NAMES.len(), "{schemes}");
    assert!(
        entries.iter().any(|e| e.starts_with("kernel=(")),
        "kernel applies on petersen: {schemes}"
    );
    assert!(
        entries.contains(&"hypercube=-"),
        "petersen is not a hypercube: {schemes}"
    );
    // Memoized: the second survey renders identically.
    assert_eq!(client.request("SCHEMES").unwrap(), schemes);

    // PLAN: a (3, 2) target on petersen is met by the augmentation
    // scheme; an impossible fault budget reports none.
    let plan_reply = client.request("PLAN 3 2").unwrap();
    assert!(
        plan_reply.starts_with("OK PLAN scheme=augment:f=2 theorem=sec6-augment d=3 f=2"),
        "{plan_reply}"
    );
    assert_eq!(client.request("PLAN 3 2").unwrap(), plan_reply, "memoized");
    assert_eq!(client.request("PLAN 1 9").unwrap(), "OK PLAN none");
    assert!(client.request("PLAN").unwrap().starts_with("ERR "));

    drop(client);
    server.shutdown_and_join().unwrap();
}

//! Concurrency tests for the epoch machinery: readers racing a
//! publishing writer must only ever observe fully-formed epochs, and
//! the per-epoch query cache must never serve an answer computed under
//! a different epoch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ftr_core::{CompiledRoutes, KernelRouting, RouteTable};
use ftr_graph::gen;
use ftr_serve::{EpochStore, QueryKey, RoutingSnapshot};
use ftr_sim::churn::{ChurnConfig, ChurnStream};

const READERS: usize = 4;

fn fixture() -> (RoutingSnapshot, EpochStore) {
    let g = gen::petersen();
    let kernel = KernelRouting::build(&g).unwrap();
    let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
    let store = EpochStore::new(&snapshot.engine().epoch_state());
    (snapshot, store)
}

/// Drives the store through churn-generated epochs on a writer thread.
fn churn_writer(engine: &CompiledRoutes, store: &EpochStore, steps: u32, done: &AtomicBool) {
    let mut state = engine.epoch_state();
    let mut stream = ChurnStream::new(
        engine.node_count(),
        ChurnConfig {
            fail_rate: 0.15,
            repair_time: 3,
            steps,
            seed: 0x5EED,
        },
    );
    for _ in 0..steps {
        let step = stream.step();
        let mut touched = false;
        for &v in &step.repaired {
            touched |= state.remove(engine, v);
        }
        for &v in &step.failed {
            touched |= state.insert(engine, v);
        }
        if touched {
            store.publish(&state);
        }
    }
    done.store(true, Ordering::Release);
}

#[test]
fn concurrent_readers_observe_only_fully_formed_epochs() {
    let (snapshot, store) = fixture();
    let engine = snapshot.engine();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| churn_writer(engine, &store, 600, &done));
        for _ in 0..READERS {
            let mut reader = store.reader();
            let done = &done;
            let store = &store;
            scope.spawn(move || {
                let mut last_id = 0u64;
                let mut observed = 0u64;
                while !done.load(Ordering::Acquire) || observed == 0 {
                    let epoch = Arc::clone(reader.current());
                    // Ids move forward only: a reader can never be handed
                    // an epoch older than one it has already seen.
                    assert!(epoch.id() >= last_id, "epoch went backwards");
                    last_id = epoch.id();
                    // A torn epoch would pair a fault set with reachability
                    // state from another one; recomputing the diameter from
                    // the engine at the epoch's own fault set must agree.
                    assert_eq!(
                        epoch.diameter(),
                        engine.surviving_diameter(epoch.faults()),
                        "epoch {} serves state inconsistent with its fault set",
                        epoch.id()
                    );
                    // The live matrix is the engine's surviving graph.
                    let reference = engine.surviving(epoch.faults());
                    for x in 0..10 {
                        for y in 0..10 {
                            if x != y && !epoch.faults().contains(x) && !epoch.faults().contains(y)
                            {
                                assert_eq!(
                                    epoch.arc_survives(x, y),
                                    reference.has_edge(x, y),
                                    "epoch {} arc ({x}, {y})",
                                    epoch.id()
                                );
                            }
                        }
                    }
                    observed += 1;
                }
                assert!(observed > 0);
                let _ = store.current_id();
            });
        }
    });
    assert!(store.current_id() > 0, "the writer published epochs");
}

#[test]
fn query_cache_never_serves_a_stale_epoch() {
    let (snapshot, store) = fixture();
    let engine = snapshot.engine();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| churn_writer(engine, &store, 400, &done));
        for reader_id in 0..READERS {
            let mut reader = store.reader();
            let done = &done;
            let snapshot = &snapshot;
            scope.spawn(move || {
                let mut checked = 0u64;
                while !done.load(Ordering::Acquire) || checked == 0 {
                    let epoch = Arc::clone(reader.current());
                    for (x, y) in [(0, 5), (1, 8), (3, 9), (reader_id as u32, 7)] {
                        if x == y {
                            continue;
                        }
                        // Cache values embed the id of the epoch they were
                        // computed under; a stale hit would surface a
                        // mismatched id or a reply that disagrees with a
                        // fresh evaluation at this epoch.
                        let (value, _hit) =
                            epoch.cache().get_or_insert_with(QueryKey::Route(x, y), || {
                                format!(
                                    "{} {:?}",
                                    epoch.id(),
                                    ftr_serve::query::route(snapshot, &epoch, x, y).unwrap()
                                )
                            });
                        let (cached_id, cached_reply) =
                            value.split_once(' ').expect("id-tagged cache value");
                        assert_eq!(
                            cached_id.parse::<u64>().unwrap(),
                            epoch.id(),
                            "cache handed epoch {} an answer from epoch {cached_id}",
                            epoch.id()
                        );
                        let fresh = format!(
                            "{:?}",
                            ftr_serve::query::route(snapshot, &epoch, x, y).unwrap()
                        );
                        assert_eq!(cached_reply, fresh, "stale cached reply");
                        checked += 1;
                    }
                }
                assert!(checked > 0);
            });
        }
    });
}

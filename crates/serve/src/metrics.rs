//! Server-side observability: the metric catalog, per-shard local
//! accumulators and the `METRICS`/`TRACE` reply rendering.
//!
//! Built on [`ftr_obs`]. The hot-path discipline is the one the load
//! generator's qps floor demands: connection shards record into plain
//! (non-atomic) [`LocalObs`] cells and flush them into the shared
//! registry in bulk — every [`FLUSH_EVERY`] batches, on poll-timeout
//! idle, when the batch contains an introspection verb (so `STATS` /
//! `METRICS` see their own batch), and at shard exit. No locks and no
//! shared-cacheline stores per request. The ingest thread and the
//! audit/tolerate handlers run at epoch/search rate and record straight
//! into the shared atomics.
//!
//! With [`crate::ServerConfig::metrics`] off, shards skip all recording
//! (including the `Instant::now` reads); the registry still exists, so
//! `METRICS` stays answerable — its serve-side series just stay zero.

use std::sync::Arc;

use ftr_obs::{
    monotonic_nanos, AtomicHistogram, Counter, Gauge, Histogram, Registry, TraceEvent, TraceRing,
    Unit,
};

use crate::proto::Request;
use crate::server::ServerStats;

/// Verb labels, in dispatch order (`route` first: it dominates).
pub(crate) const VERBS: [&str; 14] = [
    "route", "ping", "epoch", "diam", "tolerate", "audit", "schemes", "plan", "fail", "repair",
    "stats", "metrics", "trace", "quit",
];

/// Index into [`VERBS`] (and the per-verb counter array) for a request.
pub(crate) fn verb_index(request: &Request) -> usize {
    match request {
        Request::Route { .. } => 0,
        Request::Ping => 1,
        Request::Epoch => 2,
        Request::Diam => 3,
        Request::Tolerate { .. } => 4,
        Request::Audit { .. } => 5,
        Request::Schemes => 6,
        Request::Plan { .. } => 7,
        Request::Fail(_) => 8,
        Request::Repair(_) => 9,
        Request::Stats => 10,
        Request::Metrics => 11,
        Request::Trace(_) => 12,
        Request::Quit => 13,
    }
}

/// Indices into the per-verb latency histograms (only the verbs whose
/// server-side latency is worth a distribution).
pub(crate) const LAT_ROUTE: usize = 0;
pub(crate) const LAT_TOLERATE: usize = 1;
pub(crate) const LAT_AUDIT: usize = 2;
pub(crate) const LAT_PLAN: usize = 3;
const LAT_VERBS: [&str; 4] = ["route", "tolerate", "audit", "plan"];

/// Flush a shard's [`LocalObs`] into the shared registry every this
/// many dispatch batches (also flushed on idle and at shard exit).
pub(crate) const FLUSH_EVERY: u32 = 64;

/// Default capacity of the trace ring (events, not bytes).
pub(crate) const TRACE_CAPACITY: usize = 1024;

/// The server's metric registry plus every series the layers record
/// into, shared through [`crate::ServerHandle`].
pub struct ServeObs {
    enabled: bool,
    registry: Registry,
    trace: Arc<TraceRing>,
    start_nanos: u64,
    // ---- serve ----
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<AtomicHistogram>>,
    shard_hits: Vec<Arc<Counter>>,
    shard_misses: Vec<Arc<Counter>>,
    shard_batch: Vec<Arc<AtomicHistogram>>,
    // ---- ingest / epoch ----
    ingest_events: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    ingest_applied: Arc<Counter>,
    ingest_occupancy: Arc<AtomicHistogram>,
    ingest_apply_seconds: Arc<AtomicHistogram>,
    epoch_publish_seconds: Arc<AtomicHistogram>,
    epoch_id: Arc<Gauge>,
    epoch_faults: Arc<Gauge>,
    epoch_advances: Arc<Counter>,
    // ---- audit / tolerate searches ----
    search_visited: Arc<Counter>,
    search_pruned: Arc<Counter>,
    search_wall_seconds: Arc<AtomicHistogram>,
}

impl ServeObs {
    /// Builds the full catalog for `shards` connection shards, bridging
    /// the pre-existing [`ServerStats`] counters into the exposition.
    pub(crate) fn new(enabled: bool, shards: usize, stats: Arc<ServerStats>) -> Self {
        use std::sync::atomic::Ordering::Relaxed;
        let start_nanos = monotonic_nanos();
        let registry = Registry::new();
        let trace = Arc::new(TraceRing::new(TRACE_CAPACITY));

        registry.func_gauge(
            "ftr_uptime_seconds",
            "Seconds since the server observatory was created.",
            &[],
            move || (monotonic_nanos() - start_nanos) / 1_000_000_000,
        );
        let requests = VERBS
            .iter()
            .map(|verb| {
                registry.counter(
                    "ftr_requests_total",
                    "Requests dispatched, by verb (parsed lines only).",
                    &[("verb", verb)],
                )
            })
            .collect();
        let latency = LAT_VERBS
            .iter()
            .map(|verb| {
                registry.histogram(
                    "ftr_request_latency_seconds",
                    "Server-side dispatch latency by verb (ROUTE is \
                     batch-attributed: each query in a batch records the \
                     batch's compute time).",
                    Unit::Seconds,
                    &[("verb", verb)],
                )
            })
            .collect();
        let mut shard_hits = Vec::with_capacity(shards);
        let mut shard_misses = Vec::with_capacity(shards);
        let mut shard_batch = Vec::with_capacity(shards);
        for s in 0..shards {
            let shard = s.to_string();
            shard_hits.push(registry.counter(
                "ftr_cache_hits_total",
                "Epoch-cache hits, by connection shard.",
                &[("shard", &shard)],
            ));
            shard_misses.push(registry.counter(
                "ftr_cache_misses_total",
                "Epoch-cache misses, by connection shard.",
                &[("shard", &shard)],
            ));
            shard_batch.push(registry.histogram(
                "ftr_batch_size",
                "Requests per dispatch batch, by connection shard.",
                Unit::None,
                &[("shard", &shard)],
            ));
        }
        // Pre-existing STATS counters, bridged so one scrape carries
        // everything. (The Arc clones keep the closures 'static.)
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_queries_total",
            "Requests answered, ERR replies included (STATS queries=).",
            &[],
            move || s.queries.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_connections_total",
            "Connections accepted (STATS connections=).",
            &[],
            move || s.connections.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_protocol_errors_total",
            "Malformed requests and query errors (STATS errors=).",
            &[],
            move || s.protocol_errors.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_events_enqueued_total",
            "Fault events enqueued (STATS events=).",
            &[],
            move || s.events_enqueued.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_accept_retries_total",
            "Transient accept-loop errors retried (STATS accept_retries=).",
            &[],
            move || s.accept_retries.load(Relaxed),
        );

        let ingest_events = registry.counter(
            "ftr_ingest_events_total",
            "Fault events drained by the ingest thread.",
            &[],
        );
        let ingest_batches = registry.counter(
            "ftr_ingest_batches_total",
            "Ingest batches drained (effective or not).",
            &[],
        );
        let ingest_applied = registry.counter(
            "ftr_ingest_applied_total",
            "Events that actually toggled a node.",
            &[],
        );
        let ingest_occupancy = registry.histogram(
            "ftr_ingest_batch_occupancy",
            "Events per ingest batch (window occupancy; cap is the \
             configured max batch).",
            Unit::None,
            &[],
        );
        let ingest_apply_seconds = registry.histogram(
            "ftr_ingest_apply_seconds",
            "Incremental epoch-advance time per effective batch \
             (toggles applied, excluding the publish swap).",
            Unit::Seconds,
            &[],
        );
        let epoch_publish_seconds = registry.histogram(
            "ftr_epoch_publish_seconds",
            "Snapshot-swap (epoch publish) time.",
            Unit::Seconds,
            &[],
        );
        let epoch_id = registry.gauge("ftr_epoch_id", "Current epoch id.", &[]);
        let epoch_faults =
            registry.gauge("ftr_epoch_faults", "Fault count of the current epoch.", &[]);
        let epoch_advances = registry.counter(
            "ftr_epoch_advances_total",
            "Epochs published since start.",
            &[],
        );

        let search_visited = registry.counter(
            "ftr_search_visited_total",
            "Fault sets evaluated by TOLERATE/AUDIT searches.",
            &[],
        );
        let search_pruned = registry.counter(
            "ftr_search_pruned_total",
            "Fault sets covered by pruning in TOLERATE/AUDIT searches.",
            &[],
        );
        let search_wall_seconds = registry.histogram(
            "ftr_search_wall_seconds",
            "TOLERATE/AUDIT search wall time.",
            Unit::Seconds,
            &[],
        );

        let t = Arc::clone(&trace);
        registry.func_counter(
            "ftr_trace_events_total",
            "Events pushed to the trace ring since start.",
            &[],
            move || t.total(),
        );
        let t = Arc::clone(&trace);
        registry.func_counter(
            "ftr_trace_dropped_total",
            "Trace events evicted from the ring.",
            &[],
            move || t.dropped(),
        );

        #[cfg(feature = "obs-counters")]
        {
            registry.func_counter(
                "ftr_engine_bfs_calls_total",
                "Bit-parallel BFS invocations (obs-counters feature).",
                &[],
                ftr_graph::obs::bfs_calls,
            );
            registry.func_counter(
                "ftr_engine_bfs_levels_total",
                "BFS frontier levels expanded (obs-counters feature).",
                &[],
                ftr_graph::obs::bfs_levels,
            );
            registry.func_counter(
                "ftr_engine_batch_calls_total",
                "Batched diameter-kernel invocations (obs-counters feature).",
                &[],
                ftr_core::obs::batch_calls,
            );
            registry.func_counter(
                "ftr_engine_batch_sets_total",
                "Fault sets evaluated by the batched kernel (obs-counters \
                 feature).",
                &[],
                ftr_core::obs::batch_sets,
            );
        }

        ServeObs {
            enabled,
            registry,
            trace,
            start_nanos,
            requests,
            latency,
            shard_hits,
            shard_misses,
            shard_batch,
            ingest_events,
            ingest_batches,
            ingest_applied,
            ingest_occupancy,
            ingest_apply_seconds,
            epoch_publish_seconds,
            epoch_id,
            epoch_faults,
            epoch_advances,
            search_visited,
            search_pruned,
            search_wall_seconds,
        }
    }

    /// Whether shards record (the exposition works either way).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whole seconds since the observatory was created.
    pub fn uptime_seconds(&self) -> u64 {
        (monotonic_nanos() - self.start_nanos) / 1_000_000_000
    }

    /// The event journal.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The last `n` journal events, oldest first.
    pub fn trace_last(&self, n: usize) -> Vec<TraceEvent> {
        self.trace.last(n)
    }

    /// Per-verb request counts, aligned with [`VERBS`].
    pub(crate) fn verb_counts(&self) -> [u64; VERBS.len()] {
        let mut out = [0u64; VERBS.len()];
        for (slot, counter) in out.iter_mut().zip(&self.requests) {
            *slot = counter.get();
        }
        out
    }

    /// Prometheus text exposition of the whole registry.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Flat JSON snapshot of the whole registry.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }

    /// The `OK METRICS lines=<k>` reply: header plus the exposition
    /// lines, newline-separated (the server's write loop appends the
    /// final newline).
    pub(crate) fn metrics_reply(&self) -> String {
        let body = self.render_prometheus();
        let body = body.trim_end_matches('\n');
        if body.is_empty() {
            return "OK METRICS lines=0".to_string();
        }
        format!("OK METRICS lines={}\n{body}", body.lines().count())
    }

    /// The `OK TRACE lines=<k>` reply draining the last `n` events.
    pub(crate) fn trace_reply(&self, n: usize) -> String {
        let events = self.trace.last(n);
        let mut out = format!("OK TRACE lines={}", events.len());
        for event in &events {
            out.push('\n');
            out.push_str(&event.to_string());
        }
        out
    }

    /// Records one drained ingest batch (and, when it published, the
    /// epoch advance) — called from the ingest thread at batch rate.
    // Mirrors IngestReport's fields; bundling them re-creates that struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest_batch(
        &self,
        events: u64,
        applied: u64,
        apply_nanos: u64,
        publish_nanos: u64,
        published: bool,
        epoch_id: u64,
        faults: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.ingest_events.add(events);
        self.ingest_batches.inc();
        self.ingest_applied.add(applied);
        self.ingest_occupancy.record(events);
        if published {
            self.ingest_apply_seconds.record(apply_nanos);
            self.epoch_publish_seconds.record(publish_nanos);
            self.epoch_id.set(epoch_id);
            self.epoch_faults.set(faults);
            self.epoch_advances.inc();
            self.trace.push(
                epoch_id,
                "epoch_publish",
                format!(
                    "events={events} applied={applied} faults={faults} \
                     apply_ns={apply_nanos} publish_ns={publish_nanos}"
                ),
            );
        } else {
            self.trace
                .push(epoch_id, "ingest_noop", format!("events={events}"));
        }
    }

    /// Seeds the epoch gauges from the genesis epoch.
    pub(crate) fn seed_epoch(&self, epoch_id: u64, faults: u64) {
        self.epoch_id.set(epoch_id);
        self.epoch_faults.set(faults);
        self.trace
            .push(epoch_id, "server_start", format!("faults={faults}"));
    }

    /// Records one TOLERATE/AUDIT search (visited/pruned progression
    /// plus wall time) — called at search rate, never per query.
    pub(crate) fn search(
        &self,
        kind: &'static str,
        epoch_id: u64,
        visited: u64,
        pruned: u64,
        wall_nanos: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.search_visited.add(visited);
        self.search_pruned.add(pruned);
        self.search_wall_seconds.record(wall_nanos);
        self.trace.push(
            epoch_id,
            kind,
            format!("visited={visited} pruned={pruned} wall_ns={wall_nanos}"),
        );
    }
}

/// A shard's plain-integer metric accumulator: written on the dispatch
/// hot path without atomics, flushed in bulk into [`ServeObs`].
pub(crate) struct LocalObs {
    pub verbs: [u64; VERBS.len()],
    pub hits: u64,
    pub misses: u64,
    pub batch_sizes: Histogram,
    pub latency: [Histogram; LAT_VERBS.len()],
    /// Dispatch batches since the last flush.
    pub batches: u32,
}

impl LocalObs {
    pub fn new() -> Self {
        LocalObs {
            verbs: [0; VERBS.len()],
            hits: 0,
            misses: 0,
            batch_sizes: Histogram::new(),
            latency: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            batches: 0,
        }
    }

    /// Whether anything has accumulated since the last flush. (Latency
    /// and cache outcomes can land after a mid-batch introspection
    /// flush, so this checks every cell, not just the batch count.)
    pub fn dirty(&self) -> bool {
        self.batches > 0
            || self.hits > 0
            || self.misses > 0
            || !self.batch_sizes.is_empty()
            || self.latency.iter().any(|h| !h.is_empty())
    }

    /// Folds everything into the shared registry and resets.
    pub fn flush(&mut self, obs: &ServeObs, shard: usize) {
        if !self.dirty() {
            return;
        }
        for (count, counter) in self.verbs.iter_mut().zip(&obs.requests) {
            counter.add(*count);
            *count = 0;
        }
        obs.shard_hits[shard].add(self.hits);
        obs.shard_misses[shard].add(self.misses);
        self.hits = 0;
        self.misses = 0;
        obs.shard_batch[shard].merge_from(&self.batch_sizes);
        self.batch_sizes.clear();
        for (local, shared) in self.latency.iter_mut().zip(&obs.latency) {
            shared.merge_from(local);
            local.clear();
        }
        self.batches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_renders_at_least_twelve_series() {
        let obs = ServeObs::new(true, 2, Arc::new(ServerStats::default()));
        let text = obs.render_prometheus();
        let families: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert!(
            families.len() >= 12,
            "only {} families: {families:?}",
            families.len()
        );
        for required in [
            "ftr_uptime_seconds",
            "ftr_requests_total",
            "ftr_request_latency_seconds",
            "ftr_cache_hits_total",
            "ftr_cache_misses_total",
            "ftr_batch_size",
            "ftr_ingest_events_total",
            "ftr_ingest_batch_occupancy",
            "ftr_epoch_id",
            "ftr_epoch_advances_total",
            "ftr_epoch_publish_seconds",
            "ftr_search_visited_total",
            "ftr_search_wall_seconds",
        ] {
            assert!(families.contains(required), "missing {required}");
        }
    }

    #[test]
    fn local_obs_flushes_into_the_shared_catalog() {
        let obs = ServeObs::new(true, 1, Arc::new(ServerStats::default()));
        let mut local = LocalObs::new();
        local.verbs[0] += 3; // route
        local.verbs[1] += 1; // ping
        local.hits += 2;
        local.misses += 1;
        local.batch_sizes.record(4);
        local.latency[LAT_ROUTE].record_n(10_000, 4);
        local.batches = 1;
        local.flush(&obs, 0);
        assert!(!local.dirty());
        let counts = obs.verb_counts();
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 1);
        let text = obs.render_prometheus();
        assert!(text.contains("ftr_cache_hits_total{shard=\"0\"} 2"));
        assert!(text.contains("ftr_cache_misses_total{shard=\"0\"} 1"));
        assert!(text.contains("ftr_request_latency_seconds_count{verb=\"route\"} 4"));
        // Flushing twice adds nothing.
        local.flush(&obs, 0);
        assert_eq!(obs.verb_counts()[0], 3);
    }

    #[test]
    fn ingest_and_search_paths_record_and_trace() {
        let obs = ServeObs::new(true, 1, Arc::new(ServerStats::default()));
        obs.seed_epoch(0, 0);
        obs.ingest_batch(3, 2, 1_000, 500, true, 1, 2);
        obs.ingest_batch(1, 0, 0, 0, false, 1, 2);
        obs.search("audit_search", 1, 56, 0, 2_000_000);
        let text = obs.render_prometheus();
        assert!(text.contains("ftr_ingest_events_total 4"));
        assert!(text.contains("ftr_ingest_batches_total 2"));
        assert!(text.contains("ftr_ingest_applied_total 2"));
        assert!(text.contains("ftr_epoch_id 1"));
        assert!(text.contains("ftr_epoch_faults 2"));
        assert!(text.contains("ftr_epoch_advances_total 1"));
        assert!(text.contains("ftr_search_visited_total 56"));
        let events = obs.trace_last(10);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, "server_start");
        assert_eq!(events[1].kind, "epoch_publish");
        assert_eq!(events[2].kind, "ingest_noop");
        assert_eq!(events[3].kind, "audit_search");
        let reply = obs.trace_reply(2);
        assert!(reply.starts_with("OK TRACE lines=2\n"));
        assert!(reply.contains("kind=audit_search"));
        let metrics = obs.metrics_reply();
        assert!(metrics.starts_with("OK METRICS lines="));
        // Disabled recording is a no-op but the exposition still works.
        let off = ServeObs::new(false, 1, Arc::new(ServerStats::default()));
        off.ingest_batch(3, 2, 1_000, 500, true, 1, 2);
        off.search("audit_search", 1, 5, 0, 10);
        assert!(off
            .render_prometheus()
            .contains("ftr_ingest_events_total 0"));
        assert!(off.metrics_reply().starts_with("OK METRICS lines="));
    }
}

//! Server-side observability: the metric catalog, per-shard local
//! accumulators and the `METRICS`/`TRACE` reply rendering.
//!
//! Built on [`ftr_obs`]. The hot-path discipline is the one the load
//! generator's qps floor demands: connection shards record into plain
//! (non-atomic) [`LocalObs`] cells and flush them into the shared
//! registry in bulk — every [`FLUSH_EVERY`] batches, on poll-timeout
//! idle, when the batch contains an introspection verb (so `STATS` /
//! `METRICS` see their own batch), and at shard exit. No locks and no
//! shared-cacheline stores per request. The ingest thread and the
//! audit/tolerate handlers run at epoch/search rate and record straight
//! into the shared atomics.
//!
//! With [`crate::ServerConfig::metrics`] off, shards skip all recording
//! (including the `Instant::now` reads); the registry still exists, so
//! `METRICS` stays answerable — its serve-side series just stay zero.

use std::sync::Arc;

use ftr_obs::{
    monotonic_nanos, AtomicHistogram, BatchSpans, Counter, Gauge, Histogram, LineageJournal,
    LineageRecord, Registry, SpanRecorder, SpanStore, TraceEvent, TraceRing, Unit,
};

use crate::proto::Request;
use crate::server::ServerStats;

/// Verb labels, in dispatch order (`route` first: it dominates).
pub(crate) const VERBS: [&str; 17] = [
    "route", "ping", "epoch", "diam", "tolerate", "audit", "schemes", "plan", "fail", "repair",
    "stats", "metrics", "trace", "quit", "spans", "slow", "lineage",
];

/// Index into [`VERBS`] (and the per-verb counter array) for a request.
pub(crate) fn verb_index(request: &Request) -> usize {
    match request {
        Request::Route { .. } => 0,
        Request::Ping => 1,
        Request::Epoch => 2,
        Request::Diam => 3,
        Request::Tolerate { .. } => 4,
        Request::Audit { .. } => 5,
        Request::Schemes => 6,
        Request::Plan { .. } => 7,
        Request::Fail(_) => 8,
        Request::Repair(_) => 9,
        Request::Stats => 10,
        Request::Metrics => 11,
        Request::Trace(_) => 12,
        Request::Quit => 13,
        Request::Spans(_) => 14,
        Request::Slow(_) => 15,
        Request::Lineage(_) => 16,
    }
}

/// Stage labels of the flight-recorder span tree, in dispatch order.
/// `batch` is the root; the rest are its children (`engine` nests under
/// `cache`). Slow verbs additionally record a span named after the verb.
pub(crate) const STAGES: [&str; 6] = ["batch", "decode", "cache", "engine", "serialize", "write"];

/// Indices into the per-verb latency histograms (only the verbs whose
/// server-side latency is worth a distribution).
pub(crate) const LAT_ROUTE: usize = 0;
pub(crate) const LAT_TOLERATE: usize = 1;
pub(crate) const LAT_AUDIT: usize = 2;
pub(crate) const LAT_PLAN: usize = 3;
/// Labels of the latency-histogram slots (also the span stage names of
/// the timed slow verbs — `&'static str`, as [`SpanRecorder`] requires).
pub(crate) const LAT_VERBS: [&str; 4] = ["route", "tolerate", "audit", "plan"];

/// Flush a shard's [`LocalObs`] into the shared registry every this
/// many dispatch batches (also flushed on idle and at shard exit).
pub(crate) const FLUSH_EVERY: u32 = 64;

/// Default capacity of the trace ring (events, not bytes).
pub(crate) const TRACE_CAPACITY: usize = 1024;

/// Recent-batch ring capacity of the span store (`SPANS`).
pub(crate) const SPAN_RECENT_CAP: usize = 64;
/// Tail-retained slow-batch ring capacity (`SLOW`).
pub(crate) const SPAN_SLOW_CAP: usize = 32;
/// Lineage journal capacity (`LINEAGE`).
pub(crate) const LINEAGE_CAPACITY: usize = 512;

/// The server's metric registry plus every series the layers record
/// into, shared through [`crate::ServerHandle`].
pub struct ServeObs {
    enabled: bool,
    spans_enabled: bool,
    registry: Registry,
    trace: Arc<TraceRing>,
    start_nanos: u64,
    // ---- serve ----
    requests: Vec<Arc<Counter>>,
    latency: Vec<Arc<AtomicHistogram>>,
    shard_hits: Vec<Arc<Counter>>,
    shard_misses: Vec<Arc<Counter>>,
    shard_batch: Vec<Arc<AtomicHistogram>>,
    // ---- flight recorder ----
    stage_seconds: Vec<Arc<AtomicHistogram>>,
    spans: Arc<SpanStore>,
    lineage: Arc<LineageJournal>,
    alerts_active: Arc<Gauge>,
    // ---- ingest / epoch ----
    ingest_events: Arc<Counter>,
    ingest_batches: Arc<Counter>,
    ingest_applied: Arc<Counter>,
    ingest_occupancy: Arc<AtomicHistogram>,
    ingest_apply_seconds: Arc<AtomicHistogram>,
    epoch_publish_seconds: Arc<AtomicHistogram>,
    epoch_id: Arc<Gauge>,
    epoch_faults: Arc<Gauge>,
    epoch_advances: Arc<Counter>,
    // ---- audit / tolerate searches ----
    search_visited: Arc<Counter>,
    search_pruned: Arc<Counter>,
    search_wall_seconds: Arc<AtomicHistogram>,
}

impl ServeObs {
    /// Builds the full catalog for `shards` connection shards, bridging
    /// the pre-existing [`ServerStats`] counters into the exposition.
    /// `spans` toggles flight-recorder span collection independently of
    /// the base metrics (and is forced off when `enabled` is).
    pub(crate) fn new(enabled: bool, spans: bool, shards: usize, stats: Arc<ServerStats>) -> Self {
        use std::sync::atomic::Ordering::Relaxed;
        let start_nanos = monotonic_nanos();
        let registry = Registry::new();
        let trace = Arc::new(TraceRing::new(TRACE_CAPACITY));

        registry.func_gauge(
            "ftr_uptime_seconds",
            "Seconds since the server observatory was created.",
            &[],
            move || (monotonic_nanos() - start_nanos) / 1_000_000_000,
        );
        let requests = VERBS
            .iter()
            .map(|verb| {
                registry.counter(
                    "ftr_requests_total",
                    "Requests dispatched, by verb (parsed lines only).",
                    &[("verb", verb)],
                )
            })
            .collect();
        let latency = LAT_VERBS
            .iter()
            .map(|verb| {
                registry.histogram(
                    "ftr_request_latency_seconds",
                    "Server-side dispatch latency by verb (ROUTE is \
                     batch-attributed: each query in a batch records the \
                     batch's compute time).",
                    Unit::Seconds,
                    &[("verb", verb)],
                )
            })
            .collect();
        let mut shard_hits = Vec::with_capacity(shards);
        let mut shard_misses = Vec::with_capacity(shards);
        let mut shard_batch = Vec::with_capacity(shards);
        for s in 0..shards {
            let shard = s.to_string();
            shard_hits.push(registry.counter(
                "ftr_cache_hits_total",
                "Epoch-cache hits, by connection shard.",
                &[("shard", &shard)],
            ));
            shard_misses.push(registry.counter(
                "ftr_cache_misses_total",
                "Epoch-cache misses, by connection shard.",
                &[("shard", &shard)],
            ));
            shard_batch.push(registry.histogram(
                "ftr_batch_size",
                "Requests per dispatch batch, by connection shard.",
                Unit::None,
                &[("shard", &shard)],
            ));
        }
        let stage_seconds = STAGES
            .iter()
            .map(|stage| {
                registry.histogram(
                    "ftr_stage_seconds",
                    "Flight-recorder stage durations per dispatch batch \
                     (batch is the root span; engine nests under cache).",
                    Unit::Seconds,
                    &[("stage", stage)],
                )
            })
            .collect();
        let spans_store = Arc::new(SpanStore::new(SPAN_RECENT_CAP, SPAN_SLOW_CAP));
        let sp = Arc::clone(&spans_store);
        registry.func_counter(
            "ftr_span_batches_total",
            "Batch span trees ingested by the span store.",
            &[],
            move || sp.batches_total(),
        );
        let sp = Arc::clone(&spans_store);
        registry.func_counter(
            "ftr_spans_dropped_total",
            "Spans evicted from the recent/slow rings (STATS spans_dropped=).",
            &[],
            move || sp.spans_dropped(),
        );
        let sp = Arc::clone(&spans_store);
        registry.func_counter(
            "ftr_span_slow_retained_total",
            "Batches tail-retained in the slow-query log (total over p99).",
            &[],
            move || sp.slow_total(),
        );
        let sp = Arc::clone(&spans_store);
        registry.func_gauge(
            "ftr_span_slow_threshold_nanos",
            "Rolling p99 of batch total duration gating slow retention.",
            &[],
            move || sp.p99_nanos(),
        );
        let lineage = Arc::new(LineageJournal::new(LINEAGE_CAPACITY));
        let lj = Arc::clone(&lineage);
        registry.func_counter(
            "ftr_lineage_records_total",
            "Epoch-advance records pushed to the lineage journal.",
            &[],
            move || lj.total(),
        );
        let lj = Arc::clone(&lineage);
        registry.func_counter(
            "ftr_lineage_dropped_total",
            "Lineage records evicted by the journal bound.",
            &[],
            move || lj.dropped(),
        );
        let alerts_active = registry.gauge(
            "ftr_alerts_active",
            "SLO burn alerts currently firing (STATS alerts_active=).",
            &[],
        );

        // Pre-existing STATS counters, bridged so one scrape carries
        // everything. (The Arc clones keep the closures 'static.)
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_queries_total",
            "Requests answered, ERR replies included (STATS queries=).",
            &[],
            move || s.queries.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_connections_total",
            "Connections accepted (STATS connections=).",
            &[],
            move || s.connections.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_protocol_errors_total",
            "Malformed requests and query errors (STATS errors=).",
            &[],
            move || s.protocol_errors.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_events_enqueued_total",
            "Fault events enqueued (STATS events=).",
            &[],
            move || s.events_enqueued.load(Relaxed),
        );
        let s = Arc::clone(&stats);
        registry.func_counter(
            "ftr_accept_retries_total",
            "Transient accept-loop errors retried (STATS accept_retries=).",
            &[],
            move || s.accept_retries.load(Relaxed),
        );

        let ingest_events = registry.counter(
            "ftr_ingest_events_total",
            "Fault events drained by the ingest thread.",
            &[],
        );
        let ingest_batches = registry.counter(
            "ftr_ingest_batches_total",
            "Ingest batches drained (effective or not).",
            &[],
        );
        let ingest_applied = registry.counter(
            "ftr_ingest_applied_total",
            "Events that actually toggled a node.",
            &[],
        );
        let ingest_occupancy = registry.histogram(
            "ftr_ingest_batch_occupancy",
            "Events per ingest batch (window occupancy; cap is the \
             configured max batch).",
            Unit::None,
            &[],
        );
        let ingest_apply_seconds = registry.histogram(
            "ftr_ingest_apply_seconds",
            "Incremental epoch-advance time per effective batch \
             (toggles applied, excluding the publish swap).",
            Unit::Seconds,
            &[],
        );
        let epoch_publish_seconds = registry.histogram(
            "ftr_epoch_publish_seconds",
            "Snapshot-swap (epoch publish) time.",
            Unit::Seconds,
            &[],
        );
        let epoch_id = registry.gauge("ftr_epoch_id", "Current epoch id.", &[]);
        let epoch_faults =
            registry.gauge("ftr_epoch_faults", "Fault count of the current epoch.", &[]);
        let epoch_advances = registry.counter(
            "ftr_epoch_advances_total",
            "Epochs published since start.",
            &[],
        );

        let search_visited = registry.counter(
            "ftr_search_visited_total",
            "Fault sets evaluated by TOLERATE/AUDIT searches.",
            &[],
        );
        let search_pruned = registry.counter(
            "ftr_search_pruned_total",
            "Fault sets covered by pruning in TOLERATE/AUDIT searches.",
            &[],
        );
        let search_wall_seconds = registry.histogram(
            "ftr_search_wall_seconds",
            "TOLERATE/AUDIT search wall time.",
            Unit::Seconds,
            &[],
        );

        let t = Arc::clone(&trace);
        registry.func_counter(
            "ftr_trace_events_total",
            "Events pushed to the trace ring since start.",
            &[],
            move || t.total(),
        );
        let t = Arc::clone(&trace);
        registry.func_counter(
            "ftr_trace_dropped_total",
            "Trace events evicted from the ring.",
            &[],
            move || t.dropped(),
        );

        #[cfg(feature = "obs-counters")]
        {
            registry.func_counter(
                "ftr_engine_bfs_calls_total",
                "Bit-parallel BFS invocations (obs-counters feature).",
                &[],
                ftr_graph::obs::bfs_calls,
            );
            registry.func_counter(
                "ftr_engine_bfs_levels_total",
                "BFS frontier levels expanded (obs-counters feature).",
                &[],
                ftr_graph::obs::bfs_levels,
            );
            registry.func_counter(
                "ftr_engine_batch_calls_total",
                "Batched diameter-kernel invocations (obs-counters feature).",
                &[],
                ftr_core::obs::batch_calls,
            );
            registry.func_counter(
                "ftr_engine_batch_sets_total",
                "Fault sets evaluated by the batched kernel (obs-counters \
                 feature).",
                &[],
                ftr_core::obs::batch_sets,
            );
        }

        ServeObs {
            enabled,
            spans_enabled: enabled && spans,
            registry,
            trace,
            start_nanos,
            requests,
            latency,
            shard_hits,
            shard_misses,
            shard_batch,
            stage_seconds,
            spans: spans_store,
            lineage,
            alerts_active,
            ingest_events,
            ingest_batches,
            ingest_applied,
            ingest_occupancy,
            ingest_apply_seconds,
            epoch_publish_seconds,
            epoch_id,
            epoch_faults,
            epoch_advances,
            search_visited,
            search_pruned,
            search_wall_seconds,
        }
    }

    /// Whether shards record (the exposition works either way).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether shards collect flight-recorder span trees.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled
    }

    /// The metric registry (the watchdog registers its gauges here).
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The alerts-active gauge (set by the watchdog, read by `STATS`).
    pub(crate) fn alerts_active_gauge(&self) -> Arc<Gauge> {
        Arc::clone(&self.alerts_active)
    }

    /// SLO burn alerts currently firing.
    pub(crate) fn alerts_active(&self) -> u64 {
        self.alerts_active.get()
    }

    /// Spans evicted from the span-store rings since start.
    pub(crate) fn spans_dropped(&self) -> u64 {
        self.spans.spans_dropped()
    }

    /// Point-in-time route-latency histogram (cumulative; diff two
    /// snapshots for a window) — the watchdog's burn-rate input.
    pub(crate) fn route_latency_snapshot(&self) -> Histogram {
        self.latency[LAT_ROUTE].snapshot()
    }

    /// Point-in-time epoch-publish latency histogram (cumulative).
    pub(crate) fn epoch_publish_snapshot(&self) -> Histogram {
        self.epoch_publish_seconds.snapshot()
    }

    /// Epochs published since start.
    pub(crate) fn epoch_advances_total(&self) -> u64 {
        self.epoch_advances.get()
    }

    /// The last published epoch id (from the gauge; tags trace events
    /// pushed off the request path).
    pub(crate) fn epoch_id_value(&self) -> u64 {
        self.epoch_id.get()
    }

    /// Whole seconds since the observatory was created.
    pub fn uptime_seconds(&self) -> u64 {
        (monotonic_nanos() - self.start_nanos) / 1_000_000_000
    }

    /// The event journal.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The last `n` journal events, oldest first.
    pub fn trace_last(&self, n: usize) -> Vec<TraceEvent> {
        self.trace.last(n)
    }

    /// Per-verb request counts, aligned with [`VERBS`].
    pub(crate) fn verb_counts(&self) -> [u64; VERBS.len()] {
        let mut out = [0u64; VERBS.len()];
        for (slot, counter) in out.iter_mut().zip(&self.requests) {
            *slot = counter.get();
        }
        out
    }

    /// Prometheus text exposition of the whole registry.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Flat JSON snapshot of the whole registry.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }

    /// The `OK METRICS lines=<k>` reply: header plus the exposition
    /// lines, newline-separated (the server's write loop appends the
    /// final newline).
    pub(crate) fn metrics_reply(&self) -> String {
        let body = self.render_prometheus();
        let body = body.trim_end_matches('\n');
        if body.is_empty() {
            return "OK METRICS lines=0".to_string();
        }
        format!("OK METRICS lines={}\n{body}", body.lines().count())
    }

    /// The `OK TRACE lines=<k>` reply draining the last `n` events.
    pub(crate) fn trace_reply(&self, n: usize) -> String {
        let events = self.trace.last(n);
        let mut out = format!("OK TRACE lines={}", events.len());
        for event in &events {
            out.push('\n');
            out.push_str(&event.to_string());
        }
        out
    }

    fn span_reply(verb: &str, batches: &[BatchSpans]) -> String {
        let total: usize = batches.iter().map(|b| b.spans.len()).sum();
        let mut out = format!("OK {verb} lines={total}");
        for batch in batches {
            for line in batch.lines() {
                out.push('\n');
                out.push_str(&line);
            }
        }
        out
    }

    /// The `OK SPANS lines=<k>` reply: the newest `n` batch span trees,
    /// batches oldest first, one line per span.
    pub(crate) fn spans_reply(&self, n: usize) -> String {
        Self::span_reply("SPANS", &self.spans.recent(n))
    }

    /// The `OK SLOW lines=<k>` reply from the tail-retained slow log.
    pub(crate) fn slow_reply(&self, n: usize) -> String {
        Self::span_reply("SLOW", &self.spans.slow(n))
    }

    /// The `OK LINEAGE lines=<k>` reply: the newest `n` epoch-advance
    /// records, oldest first.
    pub(crate) fn lineage_reply(&self, n: usize) -> String {
        let records = self.lineage.last(n);
        let mut out = format!("OK LINEAGE lines={}", records.len());
        for record in &records {
            out.push('\n');
            out.push_str(&record.to_string());
        }
        out
    }

    /// Records one drained ingest batch (and, when it published, the
    /// epoch advance — including its lineage-journal record: parent
    /// epoch, applied events, occupancy delta, apply/publish timing) —
    /// called from the ingest thread at batch rate. `parent` is the
    /// epoch id the advance derived from and `faults_before` its live
    /// fault count, captured before the publish.
    // Mirrors IngestReport's fields; bundling them re-creates that struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest_batch(
        &self,
        events: u64,
        applied: u64,
        apply_nanos: u64,
        publish_nanos: u64,
        published: bool,
        epoch_id: u64,
        faults: u64,
        parent: u64,
        faults_before: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.ingest_events.add(events);
        self.ingest_batches.inc();
        self.ingest_applied.add(applied);
        self.ingest_occupancy.record(events);
        if published {
            self.ingest_apply_seconds.record(apply_nanos);
            self.epoch_publish_seconds.record(publish_nanos);
            self.epoch_id.set(epoch_id);
            self.epoch_faults.set(faults);
            self.epoch_advances.inc();
            self.lineage.push(LineageRecord {
                epoch: epoch_id,
                parent,
                events,
                applied,
                faults,
                delta: faults as i64 - faults_before as i64,
                apply_nanos,
                publish_nanos,
                at_nanos: monotonic_nanos(),
            });
            self.trace.push(
                epoch_id,
                "epoch_publish",
                format!(
                    "events={events} applied={applied} faults={faults} \
                     apply_ns={apply_nanos} publish_ns={publish_nanos}"
                ),
            );
        } else {
            self.trace
                .push(epoch_id, "ingest_noop", format!("events={events}"));
        }
    }

    /// Seeds the epoch gauges from the genesis epoch.
    pub(crate) fn seed_epoch(&self, epoch_id: u64, faults: u64) {
        self.epoch_id.set(epoch_id);
        self.epoch_faults.set(faults);
        self.trace
            .push(epoch_id, "server_start", format!("faults={faults}"));
    }

    /// Records one TOLERATE/AUDIT search (visited/pruned progression
    /// plus wall time) — called at search rate, never per query.
    pub(crate) fn search(
        &self,
        kind: &'static str,
        epoch_id: u64,
        visited: u64,
        pruned: u64,
        wall_nanos: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.search_visited.add(visited);
        self.search_pruned.add(pruned);
        self.search_wall_seconds.record(wall_nanos);
        self.trace.push(
            epoch_id,
            kind,
            format!("visited={visited} pruned={pruned} wall_ns={wall_nanos}"),
        );
    }
}

/// A shard's plain-integer metric accumulator: written on the dispatch
/// hot path without atomics, flushed in bulk into [`ServeObs`]. The
/// flight recorder rides the same discipline: spans accumulate in the
/// embedded [`SpanRecorder`], sealed batch trees queue in `span_batches`
/// and per-stage durations in `stage`, all flushed on the same cadence.
pub(crate) struct LocalObs {
    pub verbs: [u64; VERBS.len()],
    pub hits: u64,
    pub misses: u64,
    pub batch_sizes: Histogram,
    pub latency: [Histogram; LAT_VERBS.len()],
    /// Dispatch batches since the last flush.
    pub batches: u32,
    /// The shard's span buffer for the batch currently dispatching.
    pub recorder: SpanRecorder,
    /// Sealed batch span trees awaiting flush into the span store.
    pub span_batches: Vec<BatchSpans>,
    /// Per-stage span durations awaiting flush, aligned with [`STAGES`].
    pub stage: [Histogram; STAGES.len()],
    /// Per-shard monotone batch sequence number (never reset).
    pub batch_seq: u64,
    /// Epoch id of the batch currently open in the recorder.
    pub pending_epoch: u64,
    /// Request count of the batch currently open in the recorder.
    pub pending_requests: u32,
}

impl LocalObs {
    pub fn new() -> Self {
        LocalObs {
            verbs: [0; VERBS.len()],
            hits: 0,
            misses: 0,
            batch_sizes: Histogram::new(),
            latency: std::array::from_fn(|_| Histogram::new()),
            batches: 0,
            recorder: SpanRecorder::new(),
            span_batches: Vec::new(),
            stage: std::array::from_fn(|_| Histogram::new()),
            batch_seq: 0,
            pending_epoch: 0,
            pending_requests: 0,
        }
    }

    /// Seals the recorder's current span tree as one batch, recording
    /// its stage durations locally and queueing the tree for flush.
    pub fn seal_batch(&mut self, shard: usize, epoch: u64, requests: u32) {
        if self.recorder.is_empty() {
            return;
        }
        self.batch_seq += 1;
        let batch = self
            .recorder
            .take(shard as u32, self.batch_seq, epoch, requests);
        for span in &batch.spans {
            if let Some(i) = STAGES.iter().position(|s| *s == span.stage) {
                self.stage[i].record(span.duration_nanos());
            }
        }
        self.span_batches.push(batch);
    }

    /// Whether anything has accumulated since the last flush. (Latency
    /// and cache outcomes can land after a mid-batch introspection
    /// flush, so this checks every cell, not just the batch count.)
    pub fn dirty(&self) -> bool {
        self.batches > 0
            || self.hits > 0
            || self.misses > 0
            || !self.batch_sizes.is_empty()
            || self.latency.iter().any(|h| !h.is_empty())
            || !self.span_batches.is_empty()
            || self.stage.iter().any(|h| !h.is_empty())
    }

    /// Folds everything into the shared registry and resets.
    pub fn flush(&mut self, obs: &ServeObs, shard: usize) {
        if !self.dirty() {
            return;
        }
        for (count, counter) in self.verbs.iter_mut().zip(&obs.requests) {
            counter.add(*count);
            *count = 0;
        }
        obs.shard_hits[shard].add(self.hits);
        obs.shard_misses[shard].add(self.misses);
        self.hits = 0;
        self.misses = 0;
        obs.shard_batch[shard].merge_from(&self.batch_sizes);
        self.batch_sizes.clear();
        for (local, shared) in self.latency.iter_mut().zip(&obs.latency) {
            shared.merge_from(local);
            local.clear();
        }
        for (local, shared) in self.stage.iter_mut().zip(&obs.stage_seconds) {
            shared.merge_from(local);
            local.clear();
        }
        obs.spans.ingest(&mut self.span_batches);
        self.batches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_renders_at_least_twelve_series() {
        let obs = ServeObs::new(true, true, 2, Arc::new(ServerStats::default()));
        let text = obs.render_prometheus();
        let families: std::collections::BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert!(
            families.len() >= 12,
            "only {} families: {families:?}",
            families.len()
        );
        for required in [
            "ftr_uptime_seconds",
            "ftr_requests_total",
            "ftr_request_latency_seconds",
            "ftr_cache_hits_total",
            "ftr_cache_misses_total",
            "ftr_batch_size",
            "ftr_ingest_events_total",
            "ftr_ingest_batch_occupancy",
            "ftr_epoch_id",
            "ftr_epoch_advances_total",
            "ftr_epoch_publish_seconds",
            "ftr_search_visited_total",
            "ftr_search_wall_seconds",
            "ftr_stage_seconds",
            "ftr_span_batches_total",
            "ftr_spans_dropped_total",
            "ftr_span_slow_retained_total",
            "ftr_span_slow_threshold_nanos",
            "ftr_lineage_records_total",
            "ftr_lineage_dropped_total",
            "ftr_alerts_active",
        ] {
            assert!(families.contains(required), "missing {required}");
        }
    }

    #[test]
    fn local_obs_flushes_into_the_shared_catalog() {
        let obs = ServeObs::new(true, true, 1, Arc::new(ServerStats::default()));
        let mut local = LocalObs::new();
        local.verbs[0] += 3; // route
        local.verbs[1] += 1; // ping
        local.hits += 2;
        local.misses += 1;
        local.batch_sizes.record(4);
        local.latency[LAT_ROUTE].record_n(10_000, 4);
        local.batches = 1;
        local.flush(&obs, 0);
        assert!(!local.dirty());
        let counts = obs.verb_counts();
        assert_eq!(counts[0], 3);
        assert_eq!(counts[1], 1);
        let text = obs.render_prometheus();
        assert!(text.contains("ftr_cache_hits_total{shard=\"0\"} 2"));
        assert!(text.contains("ftr_cache_misses_total{shard=\"0\"} 1"));
        assert!(text.contains("ftr_request_latency_seconds_count{verb=\"route\"} 4"));
        // Flushing twice adds nothing.
        local.flush(&obs, 0);
        assert_eq!(obs.verb_counts()[0], 3);
    }

    #[test]
    fn ingest_and_search_paths_record_and_trace() {
        let obs = ServeObs::new(true, true, 1, Arc::new(ServerStats::default()));
        obs.seed_epoch(0, 0);
        obs.ingest_batch(3, 2, 1_000, 500, true, 1, 2, 0, 0);
        obs.ingest_batch(1, 0, 0, 0, false, 1, 2, 1, 2);
        obs.search("audit_search", 1, 56, 0, 2_000_000);
        let text = obs.render_prometheus();
        assert!(text.contains("ftr_ingest_events_total 4"));
        assert!(text.contains("ftr_ingest_batches_total 2"));
        assert!(text.contains("ftr_ingest_applied_total 2"));
        assert!(text.contains("ftr_epoch_id 1"));
        assert!(text.contains("ftr_epoch_faults 2"));
        assert!(text.contains("ftr_epoch_advances_total 1"));
        assert!(text.contains("ftr_search_visited_total 56"));
        let events = obs.trace_last(10);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, "server_start");
        assert_eq!(events[1].kind, "epoch_publish");
        assert_eq!(events[2].kind, "ingest_noop");
        assert_eq!(events[3].kind, "audit_search");
        let reply = obs.trace_reply(2);
        assert!(reply.starts_with("OK TRACE lines=2\n"));
        assert!(reply.contains("kind=audit_search"));
        let metrics = obs.metrics_reply();
        assert!(metrics.starts_with("OK METRICS lines="));
        // Disabled recording is a no-op but the exposition still works.
        let off = ServeObs::new(false, true, 1, Arc::new(ServerStats::default()));
        assert!(!off.spans_enabled(), "spans force off without metrics");
        off.ingest_batch(3, 2, 1_000, 500, true, 1, 2, 0, 0);
        off.search("audit_search", 1, 5, 0, 10);
        assert!(off
            .render_prometheus()
            .contains("ftr_ingest_events_total 0"));
        assert!(off.metrics_reply().starts_with("OK METRICS lines="));
    }

    #[test]
    fn flight_recorder_flushes_and_replies() {
        let obs = ServeObs::new(true, true, 1, Arc::new(ServerStats::default()));
        assert!(obs.spans_enabled());
        let mut local = LocalObs::new();
        // An abandoned (empty) batch seals to nothing.
        local.seal_batch(0, 0, 0);
        assert!(local.span_batches.is_empty());
        let root = local.recorder.start("batch");
        let d = local.recorder.start("decode");
        local.recorder.end(d);
        let c = local.recorder.start("cache");
        local.recorder.end(c);
        let s = local.recorder.start("serialize");
        local.recorder.end(s);
        local.recorder.end(root);
        local.seal_batch(0, 5, 3);
        assert_eq!(local.span_batches.len(), 1);
        assert!(local.dirty());
        local.flush(&obs, 0);
        assert!(!local.dirty());
        let reply = obs.spans_reply(8);
        assert!(reply.starts_with("OK SPANS lines=4\n"), "{reply}");
        assert!(reply.contains("batch=1 shard=0 epoch=5 reqs=3 span=1 parent=0 stage=batch"));
        assert!(reply.contains("stage=serialize"));
        let text = obs.render_prometheus();
        assert!(text.contains("ftr_stage_seconds_count{stage=\"decode\"} 1"));
        assert!(text.contains("ftr_span_batches_total 1"));
        // Slow log is empty below SLOW_MIN_SAMPLES; the reply is still
        // well-formed.
        assert_eq!(obs.slow_reply(8), "OK SLOW lines=0");
        // Lineage arrives via ingest_batch.
        obs.ingest_batch(2, 2, 900, 400, true, 1, 2, 0, 0);
        obs.ingest_batch(1, 1, 800, 300, true, 2, 1, 1, 2);
        let lineage = obs.lineage_reply(10);
        assert!(lineage.starts_with("OK LINEAGE lines=2\n"), "{lineage}");
        assert!(lineage.contains("epoch=1 parent=0 events=2 applied=2 faults=2 delta=2"));
        assert!(lineage.contains("epoch=2 parent=1 events=1 applied=1 faults=1 delta=-1"));
        assert_eq!(obs.lineage.total(), 2);
        // STATS feeds.
        assert_eq!(obs.alerts_active(), 0);
        obs.alerts_active_gauge().set(2);
        assert_eq!(obs.alerts_active(), 2);
        assert_eq!(obs.spans_dropped(), 0);
    }
}

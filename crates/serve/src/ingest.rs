//! Batched fault-event ingestion: the write path of the server.
//!
//! `FAIL`/`REPAIR` commands do not mutate anything on the connection
//! thread — they enqueue a [`FaultEvent`] and return immediately. A
//! single ingest thread drains the queue in batches (a short batching
//! window coalesces bursts), applies the toggles *incrementally* to a
//! persistent [`ftr_core::EpochState`] — cost proportional to the routes
//! through the toggled nodes, never a recompile — and publishes one new
//! epoch per effective batch.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Recovers a poisoned queue lock instead of panicking: `push` appends
/// one element atomically and the drain takes whole prefixes, so a
/// holder that panicked between those operations cannot have left the
/// event vector half-written.
fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

use ftr_core::{CompiledRoutes, EpochState};
use ftr_graph::Node;

use crate::epoch::EpochStore;
use crate::metrics::ServeObs;

/// One fault-churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Node `v` failed.
    Fail(Node),
    /// Node `v` was repaired.
    Repair(Node),
}

struct QueueInner {
    events: Vec<FaultEvent>,
    closed: bool,
}

/// An unbounded multi-producer event queue with batch-draining
/// semantics for the single ingest consumer.
pub struct EventQueue {
    inner: Mutex<QueueInner>,
    signal: Condvar,
}

impl EventQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        EventQueue {
            inner: Mutex::new(QueueInner {
                events: Vec::new(),
                closed: false,
            }),
            signal: Condvar::new(),
        }
    }

    /// Enqueues one event (no-op after [`EventQueue::close`]).
    pub fn push(&self, event: FaultEvent) {
        let mut inner = relock(self.inner.lock());
        if inner.closed {
            return;
        }
        inner.events.push(event);
        drop(inner);
        self.signal.notify_one();
    }

    /// Closes the queue: the consumer drains what remains, then
    /// [`EventQueue::next_batch`] starts returning `None`.
    pub fn close(&self) {
        relock(self.inner.lock()).closed = true;
        self.signal.notify_all();
    }

    /// Events currently queued (the ingest backlog the watchdog
    /// gauges). Momentary under concurrent producers.
    pub fn len(&self) -> usize {
        relock(self.inner.lock()).events.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one event is available (or the queue
    /// closes), then keeps collecting for up to `window` so bursts
    /// coalesce into one batch, capped at `max` events. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn next_batch(&self, window: Duration, max: usize) -> Option<Vec<FaultEvent>> {
        let mut inner = relock(self.inner.lock());
        while inner.events.is_empty() {
            if inner.closed {
                return None;
            }
            inner = relock(self.signal.wait(inner));
        }
        // First event seen: hold the batch open for the window.
        let deadline = Instant::now() + window;
        while inner.events.len() < max && !inner.closed {
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, _) = relock(
                self.signal
                    .wait_timeout(inner, left)
                    .map_err(|e| PoisonError::new(e.into_inner())),
            );
            inner = guard;
        }
        let batch_len = inner.events.len().min(max);
        let batch: Vec<FaultEvent> = inner.events.drain(..batch_len).collect();
        Some(batch)
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters the ingest loop reports back through [`Ingestor::run`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Events drained from the queue.
    pub events: u64,
    /// Events that actually toggled a node (`FAIL` of an
    /// already-faulty node and `REPAIR` of a healthy node are no-ops).
    pub applied: u64,
    /// Batches that published a new epoch.
    pub batches: u64,
}

/// The single-threaded write path: owns the persistent [`EpochState`]
/// and advances the [`EpochStore`] one epoch per effective batch.
pub struct Ingestor<'a> {
    engine: &'a CompiledRoutes,
    state: EpochState,
    store: EpochStore,
    /// Metric/trace sink; `None` keeps the ingest loop observation-free
    /// (unit tests, embedded uses).
    obs: Option<Arc<ServeObs>>,
}

impl<'a> Ingestor<'a> {
    /// An ingestor whose state starts at the store's genesis fault set.
    pub fn new(engine: &'a CompiledRoutes, store: EpochStore) -> Self {
        let mut state = engine.epoch_state();
        for v in store.load().faults().iter() {
            state.insert(engine, v);
        }
        Ingestor {
            engine,
            state,
            store,
            obs: None,
        }
    }

    /// Attaches the server observatory: batch occupancy, apply and
    /// publish timing, epoch gauges and trace events.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<ServeObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Applies one batch of events to the cursor state; if any toggle
    /// was effective, publishes the next epoch. Returns the number of
    /// effective toggles.
    ///
    /// Events within a batch apply in order, so `FAIL 3, REPAIR 3`
    /// cancels out — but still publishes an epoch (the intermediate
    /// state was real; publishing keeps epoch ids aligned with batches
    /// that did work).
    pub fn apply_batch(&mut self, events: &[FaultEvent]) -> usize {
        let observing = self.obs.as_deref().is_some_and(ServeObs::enabled);
        // Lineage provenance: the epoch this batch derives from and its
        // live fault count, captured before any toggle applies.
        let parent = self.store.current_id();
        let faults_before = self.state.faults().len() as u64;
        let start = observing.then(Instant::now);
        let mut applied = 0;
        for &event in events {
            let effective = match event {
                FaultEvent::Fail(v) => self.state.insert(self.engine, v),
                FaultEvent::Repair(v) => self.state.remove(self.engine, v),
            };
            applied += usize::from(effective);
        }
        let apply_nanos = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut publish_nanos = 0;
        if applied > 0 {
            let start = observing.then(Instant::now);
            self.store.publish(&self.state);
            publish_nanos = start.map_or(0, |t| t.elapsed().as_nanos() as u64);
        }
        if let Some(obs) = &self.obs {
            obs.ingest_batch(
                events.len() as u64,
                applied as u64,
                apply_nanos,
                publish_nanos,
                applied > 0,
                self.store.current_id(),
                self.state.faults().len() as u64,
                parent,
                faults_before,
            );
        }
        applied
    }

    /// Drains `queue` until it closes, batching with `window`/`max`.
    pub fn run(mut self, queue: &EventQueue, window: Duration, max: usize) -> IngestReport {
        let mut report = IngestReport::default();
        while let Some(batch) = queue.next_batch(window, max) {
            report.events += batch.len() as u64;
            let applied = self.apply_batch(&batch);
            report.applied += applied as u64;
            report.batches += u64::from(applied > 0);
        }
        report
    }

    /// The current (not-yet-published) fault count, for diagnostics.
    pub fn fault_count(&self) -> usize {
        self.state.faults().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{Compile, KernelRouting};
    use ftr_graph::gen;

    fn fixture() -> (CompiledRoutes, EpochStore) {
        let g = gen::petersen();
        let engine = KernelRouting::build(&g).unwrap().routing().compile();
        let store = EpochStore::new(&engine.epoch_state());
        (engine, store)
    }

    #[test]
    fn batch_applies_incrementally_and_publishes() {
        let (engine, store) = fixture();
        let mut ingestor = Ingestor::new(&engine, store.clone());
        let applied = ingestor.apply_batch(&[
            FaultEvent::Fail(2),
            FaultEvent::Fail(2), // duplicate: no-op
            FaultEvent::Fail(6),
            FaultEvent::Repair(9), // healthy: no-op
        ]);
        assert_eq!(applied, 2);
        let epoch = store.load();
        assert_eq!(epoch.id(), 1, "one batch, one epoch");
        assert_eq!(epoch.faults().iter().collect::<Vec<_>>(), vec![2, 6]);
    }

    #[test]
    fn noop_batch_publishes_nothing() {
        let (engine, store) = fixture();
        let mut ingestor = Ingestor::new(&engine, store.clone());
        assert_eq!(ingestor.apply_batch(&[FaultEvent::Repair(3)]), 0);
        assert_eq!(store.current_id(), 0);
    }

    #[test]
    fn ingestor_seeds_from_genesis_faults() {
        let (engine, _) = fixture();
        let mut seeded = engine.epoch_state();
        seeded.insert(&engine, 5);
        let store = EpochStore::new(&seeded);
        let mut ingestor = Ingestor::new(&engine, store.clone());
        assert_eq!(ingestor.fault_count(), 1);
        // Repairing the seeded fault is effective.
        assert_eq!(ingestor.apply_batch(&[FaultEvent::Repair(5)]), 1);
        assert!(store.load().faults().is_empty());
    }

    #[test]
    fn queue_batches_and_closes() {
        let queue = EventQueue::new();
        queue.push(FaultEvent::Fail(1));
        queue.push(FaultEvent::Fail(2));
        let batch = queue
            .next_batch(Duration::from_millis(1), 16)
            .expect("open queue yields a batch");
        assert_eq!(batch.len(), 2);
        queue.push(FaultEvent::Fail(3));
        queue.close();
        assert_eq!(
            queue.next_batch(Duration::from_millis(1), 16),
            Some(vec![FaultEvent::Fail(3)]),
            "closing drains the remainder"
        );
        assert_eq!(queue.next_batch(Duration::from_millis(1), 16), None);
        queue.push(FaultEvent::Fail(4));
        assert_eq!(
            queue.next_batch(Duration::from_millis(1), 16),
            None,
            "pushes after close are dropped"
        );
    }

    #[test]
    fn queue_respects_max_batch() {
        let queue = EventQueue::new();
        for v in 0..10 {
            queue.push(FaultEvent::Fail(v));
        }
        let batch = queue.next_batch(Duration::ZERO, 4).unwrap();
        assert_eq!(batch.len(), 4);
        let rest = queue.next_batch(Duration::ZERO, 100).unwrap();
        assert_eq!(rest.len(), 6);
    }

    #[test]
    fn run_drains_until_close() {
        let (engine, store) = fixture();
        let queue = EventQueue::new();
        let report = std::thread::scope(|scope| {
            let ingestor = Ingestor::new(&engine, store.clone());
            let handle = scope.spawn(|| ingestor.run(&queue, Duration::from_micros(200), 1024));
            for v in 0..5 {
                queue.push(FaultEvent::Fail(v));
            }
            queue.push(FaultEvent::Repair(0));
            queue.close();
            handle.join().expect("ingest thread lives")
        });
        assert_eq!(report.events, 6);
        assert_eq!(report.applied, 6);
        assert!(report.batches >= 1);
        let epoch = store.load();
        assert_eq!(epoch.faults().iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }
}

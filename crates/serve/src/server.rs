//! The TCP daemon: accept loop, worker pool, and the glue between the
//! protocol, the epoch store and the ingest queue.
//!
//! Threading follows the `ftr_core::par` shape — a `std::thread::scope`
//! whose workers own their state outright (an [`EpochReader`], a scratch
//! line buffer) and share only a connection queue and atomic counters,
//! no locks on the query path. One extra scoped thread runs the
//! [`Ingestor`]; the accept loop runs on the caller's thread.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use ftr_core::{Planner, PlannerRequest, SchemeParams, SchemeRegistry};

use crate::epoch::{EpochReader, EpochStore, QueryKey};
use crate::ingest::{EventQueue, FaultEvent, Ingestor};
use crate::proto::{parse_request, render_diameter, render_route, Request};
use crate::query::{self, QueryError};
use crate::snapshot::RoutingSnapshot;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Connection-handling worker threads. Each held-open client
    /// connection occupies one worker, so size this at least as large
    /// as the expected concurrent client count.
    pub workers: usize,
    /// How long the ingest thread holds a batch open after the first
    /// event, so bursts coalesce into one epoch advance.
    pub batch_window: Duration,
    /// Maximum events per batch.
    pub max_batch: usize,
    /// Worst-case fault-set budget for one `TOLERATE` search.
    pub tolerate_budget: u64,
    /// Worst-case fault-set budget for one `AUDIT` search (audits run
    /// on the pristine snapshot and are memoized, so they may be
    /// granted more room than per-epoch `TOLERATE`s).
    pub audit_budget: u64,
    /// Estimated-route-count cap for one `PLAN` evaluation (candidates
    /// above it are ruled out instead of built).
    pub plan_route_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 8,
            batch_window: Duration::from_micros(200),
            max_batch: 1024,
            tolerate_budget: 250_000,
            audit_budget: 1_000_000,
            plan_route_budget: 2_000_000,
        }
    }
}

/// Monotonic counters shared by the workers, readable over `STATS` and
/// through [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests answered (including `ERR` replies).
    pub queries: AtomicU64,
    /// `ROUTE`/`TOLERATE` answers served from the epoch cache.
    pub cache_hits: AtomicU64,
    /// Malformed requests and query errors.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Fault events enqueued.
    pub events_enqueued: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.events_enqueued.load(Ordering::Relaxed),
        )
    }
}

/// A blocking queue of accepted connections feeding the worker pool.
struct ConnQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    signal: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            signal: Condvar::new(),
        }
    }

    fn push(&self, conn: TcpStream) {
        let mut inner = self.inner.lock().expect("conn queue poisoned");
        inner.0.push_back(conn);
        drop(inner);
        self.signal.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("conn queue poisoned").1 = true;
        self.signal.notify_all();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("conn queue poisoned");
        loop {
            if let Some(conn) = inner.0.pop_front() {
                return Some(conn);
            }
            if inner.1 {
                return None;
            }
            inner = self.signal.wait(inner).expect("conn queue poisoned");
        }
    }
}

/// Control handle for a bound (possibly running) server: address,
/// stats, live epoch access and shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    store: EpochStore,
    queue: Arc<EventQueue>,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound listen address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The epoch store (read-side, e.g. for tests and diagnostics).
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// Requests shutdown: closes the ingest queue, flags the loops and
    /// pokes the accept loop awake. Idempotent.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound server, ready to run.
pub struct Server {
    snapshot: Arc<RoutingSnapshot>,
    config: ServerConfig,
    listener: TcpListener,
    handle: ServerHandle,
}

impl Server {
    /// Binds the listener and builds the epoch store (genesis epoch =
    /// fault-free snapshot).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(snapshot: Arc<RoutingSnapshot>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let store = EpochStore::new(&snapshot.engine().epoch_state());
        let handle = ServerHandle {
            addr,
            stats: Arc::new(ServerStats::default()),
            store,
            queue: Arc::new(EventQueue::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        };
        Ok(Server {
            snapshot,
            config,
            listener,
            handle,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A control handle (clone freely).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Runs the server on the calling thread until
    /// [`ServerHandle::shutdown`]; workers and the ingest thread live in
    /// a `std::thread::scope` inside this call.
    ///
    /// # Errors
    ///
    /// Propagates listener failures other than shutdown-induced ones.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            snapshot,
            config,
            listener,
            handle,
        } = self;
        let conns = ConnQueue::new();
        // Scheme planning and auditing are static properties of the
        // served graph: the SCHEMES survey is memoized once, PLAN and
        // AUDIT replies per (d, f).
        let schemes = OnceLock::new();
        let plans = Mutex::new(HashMap::new());
        let audits = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            let ingestor = Ingestor::new(snapshot.engine(), handle.store.clone());
            let queue = Arc::clone(&handle.queue);
            let (window, max_batch) = (config.batch_window, config.max_batch);
            scope.spawn(move || ingestor.run(&queue, window, max_batch));
            for _ in 0..config.workers.max(1) {
                let worker = Worker {
                    snapshot: &snapshot,
                    config: &config,
                    stats: &handle.stats,
                    queue: &handle.queue,
                    reader: handle.store.reader(),
                    shutdown: &handle.shutdown,
                    schemes: &schemes,
                    plans: &plans,
                    audits: &audits,
                };
                let conns = &conns;
                scope.spawn(move || {
                    let mut worker = worker;
                    while let Some(conn) = conns.pop() {
                        worker.stats.connections.fetch_add(1, Ordering::Relaxed);
                        let _ = worker.serve_connection(conn);
                    }
                });
            }
            // Accept loop on this thread.
            loop {
                match listener.accept() {
                    Ok((conn, _)) => {
                        if handle.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        conns.push(conn);
                    }
                    Err(e) => {
                        if handle.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Transient accept errors (e.g. EMFILE, aborted
                        // handshakes) should not kill the daemon.
                        std::thread::sleep(Duration::from_millis(1));
                        let _ = e;
                    }
                }
            }
            conns.close();
            handle.queue.close();
            Ok(())
        })
    }

    /// Runs the server on a background thread, returning a handle pair
    /// for in-process use (tests, the load generator).
    pub fn spawn(self) -> SpawnedServer {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        SpawnedServer { handle, join }
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct SpawnedServer {
    handle: ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The control handle.
    pub fn handle(&self) -> &ServerHandle {
        &self.handle
    }

    /// Shuts the server down and joins its thread.
    ///
    /// # Errors
    ///
    /// Propagates a listener failure from the server loop.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        self.join.join().expect("server thread panicked")
    }
}

/// Upper bound on memoized `PLAN` (and `AUDIT`) replies; distinct
/// `(d, f)` targets beyond it are answered but not cached.
const PLAN_MEMO_CAP: usize = 64;

/// Per-worker state: an epoch reader (lock-free current-epoch access)
/// plus borrowed shared pieces.
struct Worker<'a> {
    snapshot: &'a RoutingSnapshot,
    config: &'a ServerConfig,
    stats: &'a ServerStats,
    queue: &'a EventQueue,
    reader: EpochReader,
    shutdown: &'a AtomicBool,
    /// Lazily memoized `SCHEMES` reply (one applicability survey per
    /// server lifetime — the graph never changes).
    schemes: &'a OnceLock<String>,
    /// Memoized `PLAN` replies per `(diameter, faults)` target.
    plans: &'a Mutex<HashMap<(u32, usize), String>>,
    /// Memoized `AUDIT` replies per `(diameter, faults)` claim — audits
    /// run against the pristine snapshot, so they never go stale.
    audits: &'a Mutex<HashMap<(u32, usize), String>>,
}

impl Worker<'_> {
    fn serve_connection(&mut self, conn: TcpStream) -> std::io::Result<()> {
        conn.set_nodelay(true)?;
        // A finite read timeout lets the worker notice shutdown even
        // while a client holds the connection open silently.
        conn.set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut reader = BufReader::new(conn.try_clone()?);
        let mut writer = BufWriter::new(conn);
        let mut line = String::new();
        loop {
            line.clear();
            // Assemble one full line, tolerating read timeouts (which
            // may leave partial data appended to `line`).
            let eof = loop {
                match reader.read_line(&mut line) {
                    Ok(0) => break true,
                    Ok(_) if line.ends_with('\n') => break false,
                    Ok(_) => break true, // EOF mid-line: serve what we got
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        if self.shutdown.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                    }
                    Err(e) => return Err(e),
                }
            };
            if line.trim().is_empty() {
                if eof {
                    return Ok(());
                }
                continue;
            }
            self.stats.queries.fetch_add(1, Ordering::Relaxed);
            let (reply, quit) = self.dispatch(line.trim());
            writer.write_all(reply.as_bytes())?;
            writer.write_all(b"\n")?;
            // Flush only when no further *complete* pipelined request is
            // already buffered — one syscall per burst, not per request.
            // A buffered partial line must not withhold replies: its
            // sender may be blocked waiting on this reply before finishing
            // the next request.
            if quit || eof || !reader.buffer().contains(&b'\n') {
                writer.flush()?;
            }
            if quit || eof {
                return Ok(());
            }
        }
    }

    fn dispatch(&mut self, line: &str) -> (String, bool) {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(reason) => {
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return (format!("ERR {reason}"), false);
            }
        };
        let reply = match request {
            Request::Ping => "OK PONG".to_string(),
            Request::Quit => return ("OK BYE".to_string(), true),
            Request::Epoch => {
                let epoch = self.reader.current();
                format!(
                    "OK EPOCH id={} faults={}",
                    epoch.id(),
                    query::render_faults(epoch.faults())
                )
            }
            Request::Diam => render_diameter(self.reader.current().diameter()),
            // Malformed queries are rejected *before* the cache lookup,
            // so an `ERR` reply is never cached and the cache's key
            // space stays bounded by valid node pairs / budgets.
            Request::Route { x, y } => {
                if let Err(e) = query::validate_route_query(self.snapshot, x, y) {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    format!("ERR {e}")
                } else {
                    let epoch = Arc::clone(self.reader.current());
                    let (reply, hit) =
                        epoch.cache().get_or_insert_with(QueryKey::Route(x, y), || {
                            match query::route(self.snapshot, &epoch, x, y) {
                                Ok(r) => render_route(&r),
                                // Unreachable post-validation; kept so a
                                // logic slip degrades to an ERR reply,
                                // not a worker panic.
                                Err(e) => format!("ERR {e}"),
                            }
                        });
                    if hit {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.to_string()
                }
            }
            Request::Tolerate { diameter, faults } => {
                let epoch = Arc::clone(self.reader.current());
                let budget = self.config.tolerate_budget;
                let needed = query::tolerate_cost(self.snapshot, &epoch, faults);
                if needed > budget {
                    // Bound-aware budget guard: reject with a structured
                    // ERR naming the worst-case search size instead of
                    // truncating the sweep.
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    format!("ERR {}", QueryError::TolerateBudget { needed, budget })
                } else {
                    // The pruned search is bound-aware, so the cache key
                    // carries the full (d, f) claim; the search itself is
                    // single-threaded and deterministic, so a cached
                    // reply is byte-identical to a fresh one.
                    let (reply, hit) = epoch.cache().get_or_insert_with(
                        QueryKey::Tolerate(diameter, faults),
                        || match query::tolerate(self.snapshot, &epoch, diameter, faults, budget) {
                            Ok(a) => render_tolerate(&a),
                            // Unreachable (the budget was checked with
                            // the same inputs above); kept as a visible
                            // ERR, never a silent wrong answer.
                            Err(e) => format!("ERR {e}"),
                        },
                    );
                    if hit {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.to_string()
                }
            }
            Request::Audit { diameter, faults } => {
                let budget = self.config.audit_budget;
                let key = (diameter, faults);
                let cached = self
                    .audits
                    .lock()
                    .expect("audit cache poisoned")
                    .get(&key)
                    .cloned();
                match cached {
                    Some(reply) => {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        reply
                    }
                    None => match query::audit_claim(self.snapshot, diameter, faults, budget) {
                        Err(e) => {
                            self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            format!("ERR {e}")
                        }
                        Ok(a) => {
                            let reply = render_audit(&a);
                            let mut audits = self.audits.lock().expect("audit cache poisoned");
                            if audits.len() < PLAN_MEMO_CAP {
                                audits.insert(key, reply.clone());
                            }
                            reply
                        }
                    },
                }
            }
            Request::Fail(v) | Request::Repair(v) => {
                if (v as usize) >= self.snapshot.node_count() {
                    self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    format!("ERR {}", QueryError::NodeOutOfRange(v))
                } else {
                    let event = match request {
                        Request::Fail(v) => FaultEvent::Fail(v),
                        _ => FaultEvent::Repair(v),
                    };
                    self.queue.push(event);
                    self.stats.events_enqueued.fetch_add(1, Ordering::Relaxed);
                    "OK QUEUED".to_string()
                }
            }
            Request::Stats => {
                let (queries, hits, errors, conns, events) = self.stats.snapshot();
                let epoch = self.reader.current();
                format!(
                    "OK STATS epoch={} faults={} queries={queries} cache_hits={hits} \
                     errors={errors} connections={conns} events={events}",
                    epoch.id(),
                    epoch.faults().len()
                )
            }
            // The served graph never changes, so the applicability
            // survey is computed once per server lifetime.
            Request::Schemes => self
                .schemes
                .get_or_init(|| {
                    let registry = SchemeRegistry::standard();
                    let params = SchemeParams::default();
                    let parts: Vec<String> = registry
                        .iter()
                        .map(
                            |scheme| match scheme.applicability(self.snapshot.graph(), &params) {
                                Ok(g) => format!(
                                    "{}=({},{})/{}",
                                    scheme.name(),
                                    g.diameter,
                                    g.faults,
                                    g.theorem.token()
                                ),
                                Err(_) => format!("{}=-", scheme.name()),
                            },
                        )
                        .collect();
                    format!("OK SCHEMES {}", parts.join(" "))
                })
                .clone(),
            // A dry run of the planner against the served network; the
            // serving snapshot is never swapped. The memo lock is never
            // held across a plan (candidate builds take seconds on large
            // graphs and must not serialize every connection's PLAN);
            // concurrent identical targets may race to build the same
            // plan — deterministic, so they insert the same reply.
            Request::Plan { diameter, faults } => {
                let key = (diameter, faults);
                let cached = self
                    .plans
                    .lock()
                    .expect("plan cache poisoned")
                    .get(&key)
                    .cloned();
                match cached {
                    Some(reply) => reply,
                    None => {
                        let request = PlannerRequest::tolerate(faults)
                            .within_diameter(diameter)
                            .single_routes()
                            .max_routes(self.config.plan_route_budget);
                        let reply = match Planner::new().plan(self.snapshot.graph(), &request) {
                            Ok(plan) => {
                                let g = plan.winner.guarantee();
                                format!(
                                    "OK PLAN scheme={} theorem={} d={} f={} routes={}",
                                    plan.winner.spec(),
                                    g.theorem.token(),
                                    g.diameter,
                                    g.faults,
                                    g.routes
                                )
                            }
                            Err(_) => "OK PLAN none".to_string(),
                        };
                        let mut plans = self.plans.lock().expect("plan cache poisoned");
                        // A malicious target sweep must not grow the memo
                        // without bound; past the cap, plans still answer,
                        // just uncached.
                        if plans.len() < PLAN_MEMO_CAP {
                            plans.insert(key, reply.clone());
                        }
                        reply
                    }
                }
            }
        };
        (reply, false)
    }
}

/// Renders a [`query::ToleranceAnswer`] as its `OK TOLERATE …` line.
fn render_tolerate(a: &query::ToleranceAnswer) -> String {
    if a.holds {
        format!("OK TOLERATE yes sets={} pruned={}", a.sets, a.pruned)
    } else {
        format!(
            "OK TOLERATE no found={} witness={} sets={}",
            render_found(a.found),
            render_witness(&a.witness),
            a.sets
        )
    }
}

/// Renders a [`query::AuditAnswer`] as its `OK AUDIT …` line.
fn render_audit(a: &query::AuditAnswer) -> String {
    if a.holds {
        format!(
            "OK AUDIT holds visited={} pruned={} covered={} space={}",
            a.visited,
            a.pruned,
            a.visited + a.pruned,
            a.space
        )
    } else {
        format!(
            "OK AUDIT violated found={} witness={} visited={}",
            render_found(a.found),
            render_witness(&a.witness),
            a.visited
        )
    }
}

fn render_found(found: Option<Option<u32>>) -> String {
    match found {
        Some(Some(d)) => d.to_string(),
        Some(None) => "disconnect".to_string(),
        None => "-".to_string(),
    }
}

fn render_witness(witness: &[ftr_graph::Node]) -> String {
    if witness.is_empty() {
        return "-".to_string();
    }
    let parts: Vec<String> = witness.iter().map(|v| v.to_string()).collect();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::KernelRouting;
    use ftr_graph::gen;

    #[test]
    fn bind_picks_a_port_and_shuts_down_cleanly() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let snapshot = RoutingSnapshot::new(g, kernel.routing().clone())
            .unwrap()
            .into_shared();
        let server = Server::bind(snapshot, ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        let spawned = server.spawn();
        spawned.shutdown_and_join().unwrap();
    }
}

//! The TCP daemon: sharded accept, readiness-polled connection shards,
//! and the glue between the protocol, the epoch store and the ingest
//! queue.
//!
//! The serve loop is built for pipelined throughput rather than
//! thread-per-connection simplicity. One accept thread (the caller's)
//! deals connections round-robin into per-shard inboxes; each shard
//! thread multiplexes its connections with nonblocking sockets and the
//! [`crate::poll::PollSet`] readiness shim, frame-decodes whole read
//! buffers into request *batches*, executes each batch against a single
//! epoch acquisition (one `Arc` clone and one cache pass per window —
//! see [`query::route_batch`]), and writes one coalesced reply buffer
//! back per batch. One extra scoped thread runs the [`Ingestor`];
//! shared state is only the epoch store, atomic counters and the
//! static-scheme memos.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use ftr_core::{Planner, PlannerRequest, SchemeParams, SchemeRegistry};
use ftr_graph::Node;

use crate::epoch::{Epoch, EpochReader, EpochStore, QueryKey};
use crate::ingest::{EventQueue, FaultEvent, Ingestor};
use crate::metrics::{
    verb_index, LocalObs, ServeObs, FLUSH_EVERY, LAT_AUDIT, LAT_PLAN, LAT_ROUTE, LAT_TOLERATE,
    LAT_VERBS, VERBS,
};
use crate::poll::PollSet;
use crate::proto::{parse_request, render_diameter, Request};
use crate::query::{self, QueryError};
use crate::snapshot::RoutingSnapshot;
use crate::watchdog::{SloConfig, Watchdog};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Connection-shard threads. Each shard multiplexes many
    /// connections with readiness polling, so this sizes to core
    /// count, not client count.
    pub shards: usize,
    /// How long the ingest thread holds a batch open after the first
    /// event, so bursts coalesce into one epoch advance.
    pub batch_window: Duration,
    /// Maximum events per batch.
    pub max_batch: usize,
    /// Worst-case fault-set budget for one `TOLERATE` search.
    pub tolerate_budget: u64,
    /// Worst-case fault-set budget for one `AUDIT` search (audits run
    /// on the pristine snapshot and are memoized, so they may be
    /// granted more room than per-epoch `TOLERATE`s).
    pub audit_budget: u64,
    /// Estimated-route-count cap for one `PLAN` evaluation (candidates
    /// above it are ruled out instead of built).
    pub plan_route_budget: usize,
    /// Whether the shards record metrics and trace events. Off, the
    /// hot path skips all recording (including clock reads); `METRICS`
    /// still answers, with the serve-side series frozen at zero.
    pub metrics: bool,
    /// Whether the shards record flight-recorder span trees (`SPANS` /
    /// `SLOW`). Forced off when `metrics` is off.
    pub spans: bool,
    /// SLO targets and sampling cadence for the stall watchdog (which
    /// runs only when `metrics` is on).
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            shards: 2,
            batch_window: Duration::from_micros(200),
            max_batch: 1024,
            tolerate_budget: 250_000,
            audit_budget: 1_000_000,
            plan_route_budget: 2_000_000,
            metrics: true,
            spans: true,
            slo: SloConfig::default(),
        }
    }
}

/// Recovers a poisoned lock instead of panicking the acquiring thread.
/// Everything locked in this module tolerates it: inboxes hold whole
/// `TcpStream`s, and the PLAN/AUDIT memos cache deterministic replies —
/// a holder that panicked cannot have left a half-written value.
fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Monotonic counters shared by the shards, readable over `STATS` and
/// through [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests answered (including `ERR` replies).
    pub queries: AtomicU64,
    /// `ROUTE`/`TOLERATE` answers served from the epoch cache.
    pub cache_hits: AtomicU64,
    /// Malformed requests and query errors.
    pub protocol_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Fault events enqueued.
    pub events_enqueued: AtomicU64,
    /// Transient accept-loop errors retried with backoff.
    pub accept_retries: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.events_enqueued.load(Ordering::Relaxed),
            self.accept_retries.load(Ordering::Relaxed),
        )
    }
}

/// Control handle for a bound (possibly running) server: address,
/// stats, live epoch access and shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    obs: Arc<ServeObs>,
    store: EpochStore,
    queue: Arc<EventQueue>,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound listen address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The metric registry and trace journal (for `--metrics-json`
    /// exporters, tests and diagnostics).
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.obs
    }

    /// The epoch store (read-side, e.g. for tests and diagnostics).
    pub fn store(&self) -> &EpochStore {
        &self.store
    }

    /// Requests shutdown: closes the ingest queue, flags the loops and
    /// pokes the accept loop awake. Idempotent.
    pub fn shutdown(&self) {
        // AcqRel: the Release half publishes the flag to shard/accept
        // loops' Acquire loads; the Acquire half makes the idempotence
        // check see a racing shutdown's queue-close.
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound server, ready to run.
pub struct Server {
    snapshot: Arc<RoutingSnapshot>,
    config: ServerConfig,
    listener: TcpListener,
    handle: ServerHandle,
}

impl Server {
    /// Binds the listener and builds the epoch store (genesis epoch =
    /// fault-free snapshot).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(snapshot: Arc<RoutingSnapshot>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let store = EpochStore::new(&snapshot.engine().epoch_state());
        let stats = Arc::new(ServerStats::default());
        let obs = Arc::new(ServeObs::new(
            config.metrics,
            config.spans,
            config.shards.max(1),
            Arc::clone(&stats),
        ));
        {
            let mut reader = store.reader();
            let genesis = Arc::clone(reader.current());
            obs.seed_epoch(genesis.id(), genesis.faults().len() as u64);
        }
        let handle = ServerHandle {
            addr,
            stats,
            obs,
            store,
            queue: Arc::new(EventQueue::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        };
        Ok(Server {
            snapshot,
            config,
            listener,
            handle,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A control handle (clone freely).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Runs the server on the calling thread until
    /// [`ServerHandle::shutdown`]; shard threads and the ingest thread
    /// live in a `std::thread::scope` inside this call.
    ///
    /// # Errors
    ///
    /// Propagates listener failures other than shutdown-induced ones.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            snapshot,
            config,
            listener,
            handle,
        } = self;
        let shard_count = config.shards.max(1);
        let inboxes: Vec<Mutex<Vec<TcpStream>>> =
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
        // Scheme planning and auditing are static properties of the
        // served graph: the SCHEMES survey is memoized once, PLAN and
        // AUDIT replies per (d, f).
        let schemes = OnceLock::new();
        let plans = Mutex::new(HashMap::new());
        let audits = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            let ingestor = Ingestor::new(snapshot.engine(), handle.store.clone())
                .with_obs(Arc::clone(&handle.obs));
            let queue = Arc::clone(&handle.queue);
            let (window, max_batch) = (config.batch_window, config.max_batch);
            scope.spawn(move || ingestor.run(&queue, window, max_batch));
            if config.metrics {
                let watchdog = Watchdog {
                    obs: &handle.obs,
                    stats: &handle.stats,
                    queue: &handle.queue,
                    inboxes: &inboxes,
                    shutdown: &handle.shutdown,
                    slo: config.slo.clone(),
                };
                scope.spawn(move || watchdog.run());
            }
            for (index, inbox) in inboxes.iter().enumerate() {
                let shard = Shard {
                    index,
                    snapshot: &snapshot,
                    config: &config,
                    stats: &handle.stats,
                    obs: &handle.obs,
                    queue: &handle.queue,
                    reader: handle.store.reader(),
                    shutdown: &handle.shutdown,
                    schemes: &schemes,
                    plans: &plans,
                    audits: &audits,
                    inbox,
                };
                scope.spawn(move || {
                    let mut shard = shard;
                    shard.run();
                });
            }
            // Accept loop on this thread: deal connections round-robin
            // into the shard inboxes. Transient errors (EMFILE, aborted
            // handshakes) back off exponentially instead of hot-looping.
            let mut next_shard = 0usize;
            let mut backoff = Duration::from_millis(1);
            const BACKOFF_CAP: Duration = Duration::from_millis(128);
            loop {
                match listener.accept() {
                    Ok((conn, _)) => {
                        backoff = Duration::from_millis(1);
                        if handle.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        handle.stats.connections.fetch_add(1, Ordering::Relaxed);
                        relock(inboxes[next_shard % shard_count].lock()).push(conn);
                        next_shard = next_shard.wrapping_add(1);
                    }
                    Err(_) => {
                        if handle.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        handle.stats.accept_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                    }
                }
            }
            handle.queue.close();
            Ok(())
        })
    }

    /// Runs the server on a background thread, returning a handle pair
    /// for in-process use (tests, the load generator).
    pub fn spawn(self) -> SpawnedServer {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        SpawnedServer { handle, join }
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct SpawnedServer {
    handle: ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl SpawnedServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The control handle.
    pub fn handle(&self) -> &ServerHandle {
        &self.handle
    }

    /// Shuts the server down and joins its thread.
    ///
    /// # Errors
    ///
    /// Propagates a listener failure from the server loop; a server
    /// thread that itself panicked is reported as an error too.
    pub fn shutdown_and_join(self) -> std::io::Result<()> {
        self.handle.shutdown();
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Upper bound on memoized `PLAN` (and `AUDIT`) replies; distinct
/// `(d, f)` targets beyond it are answered but not cached.
const PLAN_MEMO_CAP: usize = 64;

/// Poll timeout: how stale a shard may be about shutdown flags and
/// freshly accepted connections sitting in its inbox.
const POLL_TIMEOUT_MS: i32 = 10;

/// A connection's unparsed input may grow only this far without a
/// newline before the connection is dropped as abusive.
const MAX_LINE_BYTES: usize = 1 << 20;

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed (at most one partial trailing
    /// line between batches).
    rbuf: Vec<u8>,
    /// Coalesced reply bytes not yet written.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written.
    wpos: usize,
    /// Peer sent EOF; serve what is buffered, flush, close.
    eof: bool,
    /// Peer sent QUIT; flush the replies (ending with `OK BYE`), close.
    quit: bool,
    /// Connection is finished (flushed + closing, or errored).
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            eof: false,
            quit: false,
            dead: false,
        })
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Drains the socket into `rbuf` until `WouldBlock` (or EOF/error),
    /// reading through the shard's reused chunk buffer.
    fn fill(&mut self, chunk: &mut [u8]) {
        loop {
            match self.stream.read(chunk) {
                Ok(0) => {
                    self.eof = true;
                    return;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Writes as much of `wbuf` as the socket accepts; on a complete
    /// flush, a connection pending close (QUIT or EOF) dies.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        if self.quit || self.eof {
            self.dead = true;
        }
    }
}

/// One reply slot of a dispatch batch, aligned with the parsed request
/// at the same index.
enum Reply {
    /// A cached (or batch-computed) reply — the `Arc` is the cache's
    /// own allocation, serialized without copying into a `String`.
    Shared(Arc<str>),
    /// A reply rendered for this request alone.
    Owned(String),
    /// Placeholder for a validated ROUTE awaiting the batch pass.
    Pending,
}

/// Reusable per-shard buffers for batch dispatch.
#[derive(Default)]
struct DispatchScratch {
    requests: Vec<Result<Request, String>>,
    replies: Vec<Reply>,
    /// `(reply index, x, y)` of validated ROUTE queries in this batch.
    jobs: Vec<(u32, Node, Node)>,
    /// The `(x, y)` column of `jobs`, contiguous for the cache pass.
    pairs: Vec<(Node, Node)>,
}

/// Per-shard state: an epoch reader (lock-free current-epoch access),
/// the shard's connections, and borrowed shared pieces.
struct Shard<'a> {
    /// This shard's index (labels its per-shard metric series).
    index: usize,
    snapshot: &'a RoutingSnapshot,
    config: &'a ServerConfig,
    stats: &'a ServerStats,
    obs: &'a ServeObs,
    queue: &'a EventQueue,
    reader: EpochReader,
    shutdown: &'a AtomicBool,
    /// Lazily memoized `SCHEMES` reply (one applicability survey per
    /// server lifetime — the graph never changes).
    schemes: &'a OnceLock<String>,
    /// Memoized `PLAN` replies per `(diameter, faults)` target.
    plans: &'a Mutex<HashMap<(u32, usize), String>>,
    /// Memoized `AUDIT` replies per `(diameter, faults)` claim — audits
    /// run against the pristine snapshot, so they never go stale.
    audits: &'a Mutex<HashMap<(u32, usize), String>>,
    /// Connections accepted for this shard, awaiting adoption.
    inbox: &'a Mutex<Vec<TcpStream>>,
}

impl Shard<'_> {
    fn run(&mut self) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut poll = PollSet::new();
        let mut scratch = DispatchScratch::default();
        let mut local = LocalObs::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let ctx = DispatchCtx {
            snapshot: self.snapshot,
            config: self.config,
            stats: self.stats,
            obs: self.obs,
            queue: self.queue,
            schemes: self.schemes,
            plans: self.plans,
            audits: self.audits,
        };
        while !self.shutdown.load(Ordering::Acquire) {
            // Adopt freshly accepted connections.
            {
                let mut inbox = relock(self.inbox.lock());
                for stream in inbox.drain(..) {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
            }
            poll.clear();
            for conn in &conns {
                poll.push(&conn.stream, conn.wants_write());
            }
            if poll.wait(POLL_TIMEOUT_MS) == 0 {
                // Idle tick: fold the local accumulators into the shared
                // registry so scrapes never lag a quiet shard by more
                // than the poll timeout.
                local.flush(self.obs, self.index);
                continue;
            }
            for (i, conn) in conns.iter_mut().enumerate() {
                if conn.dead {
                    continue;
                }
                // A backlogged socket that still isn't writable would
                // answer every write with `WouldBlock`; skip it until
                // poll reports the send buffer drained.
                let backlogged = conn.wants_write() && !poll.writable(i);
                if poll.readable(i) && !conn.eof {
                    conn.fill(&mut chunk);
                }
                if !conn.rbuf.is_empty() || conn.eof {
                    Self::drain_batches(
                        self.index,
                        &ctx,
                        &mut self.reader,
                        conn,
                        &mut scratch,
                        &mut local,
                    );
                }
                // A non-empty recorder means `drain_batches` left a batch
                // tree open: time the coalesced socket write as its final
                // stage, then seal the tree into the flush queue.
                let recording = !local.recorder.is_empty();
                if !backlogged && (conn.wants_write() || conn.quit || conn.eof) {
                    if recording {
                        let span = local.recorder.start("write");
                        conn.flush();
                        local.recorder.end(span);
                    } else {
                        conn.flush();
                    }
                }
                if recording {
                    let (epoch, requests) = (local.pending_epoch, local.pending_requests);
                    local.seal_batch(self.index, epoch, requests);
                }
            }
            conns.retain(|c| !c.dead);
        }
        local.flush(self.obs, self.index);
    }

    // lint: hot-path
    // (through `trim_ascii`: the per-batch frame-decode + dispatch path
    // every request crosses. Lock acquisitions live behind `ctx` in
    // `dispatch_slow`, outside this region.)

    /// Frame-decodes every complete line buffered on `conn` into one
    /// request batch, dispatches it against a single epoch acquisition,
    /// and appends the coalesced replies to the connection's write
    /// buffer. At EOF a trailing partial line is served as a final
    /// request (a slow sender's last query is answered, not dropped).
    fn drain_batches(
        shard_index: usize,
        ctx: &DispatchCtx<'_>,
        reader: &mut EpochReader,
        conn: &mut Conn,
        scratch: &mut DispatchScratch,
        local: &mut LocalObs,
    ) {
        scratch.requests.clear();
        // Flight recorder: open the batch's root span and its decode
        // child before frame-decoding. The recorder is a plain
        // Vec-backed structure in shard-local state — no shared memory
        // is touched until `LocalObs::flush`.
        let spans_on = ctx.obs.spans_enabled();
        let decode_span = if spans_on {
            local.recorder.reset();
            local.recorder.start("batch");
            Some(local.recorder.start("decode"))
        } else {
            None
        };
        let buf = &conn.rbuf;
        let mut consumed = 0usize;
        let mut cursor = 0usize;
        while let Some(nl) = buf[cursor..].iter().position(|&b| b == b'\n') {
            let line = &buf[cursor..cursor + nl];
            cursor += nl + 1;
            consumed = cursor;
            if Self::push_line(&mut scratch.requests, line) {
                conn.quit = true;
                consumed = buf.len();
                break;
            }
        }
        if conn.eof && !conn.quit && consumed < buf.len() {
            // EOF mid-line: serve what we got.
            let line = &buf[consumed..];
            if Self::push_line(&mut scratch.requests, line) {
                conn.quit = true;
            }
            consumed = buf.len();
        }
        if consumed == 0 && buf.len() > MAX_LINE_BYTES {
            conn.dead = true;
            local.recorder.reset();
            return;
        }
        conn.rbuf.drain(..consumed);
        if let Some(span) = decode_span {
            local.recorder.end(span);
        }
        if scratch.requests.is_empty() {
            local.recorder.reset();
            return;
        }
        // One epoch acquisition for the whole window: every request of
        // the batch answers at the same epoch.
        let epoch = Arc::clone(reader.current());
        if spans_on {
            local.pending_epoch = epoch.id();
            local.pending_requests = scratch.requests.len() as u32;
        }
        ctx.stats
            .queries
            .fetch_add(scratch.requests.len() as u64, Ordering::Relaxed);
        let DispatchScratch {
            requests,
            replies,
            jobs,
            pairs,
        } = scratch;
        replies.clear();
        jobs.clear();
        pairs.clear();
        let record = ctx.obs.enabled();
        if record {
            // Per-verb and batch-size accounting stays in the shard's
            // plain-integer local; only introspection verbs force an
            // early flush, so their replies see their own batch.
            local.batches += 1;
            local.batch_sizes.record(requests.len() as u64);
            let mut introspect = false;
            for parsed in requests.iter().flatten() {
                local.verbs[verb_index(parsed)] += 1;
                introspect |= matches!(
                    parsed,
                    Request::Stats
                        | Request::Metrics
                        | Request::Trace(_)
                        | Request::Spans(_)
                        | Request::Slow(_)
                        | Request::Lineage(_)
                );
            }
            if introspect {
                local.flush(ctx.obs, shard_index);
            }
        }
        let mut errors = 0u64;
        for (idx, parsed) in requests.iter().enumerate() {
            let reply = match parsed {
                Err(reason) => {
                    errors += 1;
                    Reply::Owned(format!("ERR {reason}"))
                }
                // Malformed queries are rejected *before* the cache
                // lookup, so an `ERR` reply is never cached and the
                // cache's key space stays bounded by valid node pairs.
                Ok(Request::Route { x, y }) => {
                    match query::validate_route_query(ctx.snapshot, *x, *y) {
                        Ok(()) => {
                            jobs.push((idx as u32, *x, *y));
                            pairs.push((*x, *y));
                            Reply::Pending
                        }
                        Err(e) => {
                            errors += 1;
                            Reply::Owned(format!("ERR {e}"))
                        }
                    }
                }
                Ok(request) => {
                    // TOLERATE/AUDIT/PLAN are the verbs whose server-side
                    // latency earns a distribution; the rest are O(1)
                    // renders not worth two clock reads each.
                    let slot = match request {
                        Request::Tolerate { .. } => Some(LAT_TOLERATE),
                        Request::Audit { .. } => Some(LAT_AUDIT),
                        Request::Plan { .. } => Some(LAT_PLAN),
                        _ => None,
                    };
                    match slot.filter(|_| record) {
                        Some(slot) => {
                            let span = spans_on.then(|| local.recorder.start(LAT_VERBS[slot]));
                            let start = Instant::now();
                            let reply = ctx.dispatch_slow(*request, &epoch, &mut errors);
                            local.latency[slot].record(start.elapsed().as_nanos() as u64);
                            if let Some(span) = span {
                                local.recorder.end(span);
                            }
                            reply
                        }
                        None => ctx.dispatch_slow(*request, &epoch, &mut errors),
                    }
                }
            };
            replies.push(reply);
        }
        if !pairs.is_empty() {
            let mut hits = 0u64;
            let start = record.then(Instant::now);
            if spans_on {
                // The cache span covers the whole batched lookup; misses
                // that fall through to the engine report their first/last
                // compute window, recorded as a child "engine" span.
                let cache_span = local.recorder.start("cache");
                let mut window = query::EngineWindow::default();
                query::route_batch_observed(
                    ctx.snapshot,
                    &epoch,
                    pairs,
                    &mut window,
                    |j, value, hit| {
                        hits += u64::from(hit);
                        replies[jobs[j].0 as usize] = Reply::Shared(value);
                    },
                );
                if window.active() {
                    local
                        .recorder
                        .record_window("engine", window.start_nanos, window.end_nanos);
                }
                local.recorder.end(cache_span);
            } else {
                query::route_batch(ctx.snapshot, &epoch, pairs, |j, value, hit| {
                    hits += u64::from(hit);
                    replies[jobs[j].0 as usize] = Reply::Shared(value);
                });
            }
            if let Some(start) = start {
                // Batch-attributed ROUTE latency, mirroring the load
                // generator's accounting: every query in the batch
                // records the batch's compute time.
                local.latency[LAT_ROUTE]
                    .record_n(start.elapsed().as_nanos() as u64, pairs.len() as u64);
                local.hits += hits;
                local.misses += pairs.len() as u64 - hits;
            }
            if hits > 0 {
                ctx.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
            }
        }
        if errors > 0 {
            ctx.stats
                .protocol_errors
                .fetch_add(errors, Ordering::Relaxed);
        }
        if local.batches >= FLUSH_EVERY {
            local.flush(ctx.obs, shard_index);
        }
        let serialize_span = spans_on.then(|| local.recorder.start("serialize"));
        for reply in replies.iter() {
            match reply {
                Reply::Shared(s) => conn.wbuf.extend_from_slice(s.as_bytes()),
                Reply::Owned(s) => conn.wbuf.extend_from_slice(s.as_bytes()),
                // The route batch fills every pending slot; a hole would
                // be a bug, answered as an ERR line rather than a panic.
                Reply::Pending => conn
                    .wbuf
                    .extend_from_slice(b"ERR internal: unresolved batch reply"),
            }
            conn.wbuf.push(b'\n');
        }
        if let Some(span) = serialize_span {
            local.recorder.end(span);
        }
        // The root "batch" span stays open: the caller closes it around
        // the coalesced socket write via `LocalObs::seal_batch`.
    }

    /// Parses one raw line into the batch; returns `true` on QUIT (the
    /// batch ends there; pipelined bytes after a QUIT are discarded,
    /// matching the blocking loop's behavior). Empty lines produce no
    /// request and no reply.
    fn push_line(requests: &mut Vec<Result<Request, String>>, line: &[u8]) -> bool {
        let line = trim_ascii(line);
        if line.is_empty() {
            return false;
        }
        let parsed = match std::str::from_utf8(line) {
            Ok(s) => parse_request(s),
            Err(_) => Err("request is not valid UTF-8".to_string()),
        };
        let quit = matches!(parsed, Ok(Request::Quit));
        requests.push(parsed);
        quit
    }
}

fn trim_ascii(mut line: &[u8]) -> &[u8] {
    while let [b, rest @ ..] = line {
        if b.is_ascii_whitespace() {
            line = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., b] = line {
        if b.is_ascii_whitespace() {
            line = rest;
        } else {
            break;
        }
    }
    line
}
// lint: end-hot-path

/// The shared pieces a batch dispatch needs, split from [`Shard`] so
/// the epoch reader can be borrowed mutably alongside.
struct DispatchCtx<'a> {
    snapshot: &'a RoutingSnapshot,
    config: &'a ServerConfig,
    stats: &'a ServerStats,
    obs: &'a ServeObs,
    queue: &'a EventQueue,
    schemes: &'a OnceLock<String>,
    plans: &'a Mutex<HashMap<(u32, usize), String>>,
    audits: &'a Mutex<HashMap<(u32, usize), String>>,
}

impl DispatchCtx<'_> {
    /// Answers every verb except `ROUTE` (batched separately by the
    /// caller) against the batch's epoch.
    fn dispatch_slow(&self, request: Request, epoch: &Arc<Epoch>, errors: &mut u64) -> Reply {
        match request {
            Request::Ping => Reply::Owned("OK PONG".to_string()),
            Request::Quit => Reply::Owned("OK BYE".to_string()),
            // ROUTE is batched by the caller; a stray one reaching the
            // slow path is a dispatch bug, answered as an ERR.
            Request::Route { .. } => {
                *errors += 1;
                Reply::Owned("ERR internal: unbatched ROUTE".to_string())
            }
            Request::Epoch => Reply::Owned(format!(
                "OK EPOCH id={} faults={}",
                epoch.id(),
                query::render_faults(epoch.faults())
            )),
            Request::Diam => Reply::Owned(render_diameter(epoch.diameter())),
            Request::Tolerate { diameter, faults } => {
                let budget = self.config.tolerate_budget;
                let needed = query::tolerate_cost(self.snapshot, epoch, faults);
                if needed > budget {
                    // Bound-aware budget guard: reject with a structured
                    // ERR naming the worst-case search size instead of
                    // truncating the sweep.
                    *errors += 1;
                    Reply::Owned(format!(
                        "ERR {}",
                        QueryError::TolerateBudget { needed, budget }
                    ))
                } else {
                    // The pruned search is bound-aware, so the cache key
                    // carries the full (d, f) claim; the search itself is
                    // single-threaded and deterministic, so a cached
                    // reply is byte-identical to a fresh one.
                    let mut searched = None;
                    let (reply, hit) = epoch.cache().get_or_insert_with(
                        QueryKey::Tolerate(diameter, faults),
                        || match query::tolerate(self.snapshot, epoch, diameter, faults, budget) {
                            Ok(a) => {
                                searched = Some((a.sets, a.pruned, a.wall_nanos));
                                render_tolerate(&a)
                            }
                            // Unreachable (the budget was checked with
                            // the same inputs above); kept as a visible
                            // ERR, never a silent wrong answer.
                            Err(e) => format!("ERR {e}"),
                        },
                    );
                    if let Some((sets, pruned, wall)) = searched {
                        self.obs
                            .search("tolerate_search", epoch.id(), sets, pruned, wall);
                    }
                    if hit {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Reply::Shared(reply)
                }
            }
            Request::Audit { diameter, faults } => {
                let budget = self.config.audit_budget;
                let key = (diameter, faults);
                let cached = relock(self.audits.lock()).get(&key).cloned();
                match cached {
                    Some(reply) => {
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        Reply::Owned(reply)
                    }
                    None => match query::audit_claim(self.snapshot, diameter, faults, budget) {
                        Err(e) => {
                            *errors += 1;
                            Reply::Owned(format!("ERR {e}"))
                        }
                        Ok(a) => {
                            self.obs.search(
                                "audit_search",
                                epoch.id(),
                                a.visited,
                                a.pruned,
                                a.wall_nanos,
                            );
                            let reply = render_audit(&a);
                            let mut audits = relock(self.audits.lock());
                            if audits.len() < PLAN_MEMO_CAP {
                                audits.insert(key, reply.clone());
                            }
                            Reply::Owned(reply)
                        }
                    },
                }
            }
            Request::Fail(v) | Request::Repair(v) => {
                if (v as usize) >= self.snapshot.node_count() {
                    *errors += 1;
                    Reply::Owned(format!("ERR {}", QueryError::NodeOutOfRange(v)))
                } else {
                    let event = match request {
                        Request::Fail(v) => FaultEvent::Fail(v),
                        _ => FaultEvent::Repair(v),
                    };
                    self.queue.push(event);
                    self.stats.events_enqueued.fetch_add(1, Ordering::Relaxed);
                    Reply::Owned("OK QUEUED".to_string())
                }
            }
            Request::Stats => {
                let (queries, hits, errors, conns, events, retries) = self.stats.snapshot();
                // Every pre-existing token stays byte-identical, in the
                // same order; uptime and the per-verb counters (prefixed
                // `verb_` so names can never collide with the originals)
                // are appended after them.
                let mut reply = format!(
                    "OK STATS epoch={} faults={} queries={queries} cache_hits={hits} \
                     errors={errors} connections={conns} events={events} \
                     accept_retries={retries} uptime_s={}",
                    epoch.id(),
                    epoch.faults().len(),
                    self.obs.uptime_seconds()
                );
                let counts = self.obs.verb_counts();
                for (verb, count) in VERBS.iter().zip(counts) {
                    use std::fmt::Write as _;
                    let _ = write!(reply, " verb_{verb}={count}");
                }
                {
                    use std::fmt::Write as _;
                    let _ = write!(
                        reply,
                        " alerts_active={} spans_dropped={}",
                        self.obs.alerts_active(),
                        self.obs.spans_dropped()
                    );
                }
                Reply::Owned(reply)
            }
            Request::Metrics => Reply::Owned(self.obs.metrics_reply()),
            Request::Trace(n) => Reply::Owned(self.obs.trace_reply(n)),
            Request::Spans(n) => Reply::Owned(self.obs.spans_reply(n)),
            Request::Slow(n) => Reply::Owned(self.obs.slow_reply(n)),
            Request::Lineage(n) => Reply::Owned(self.obs.lineage_reply(n)),
            // The served graph never changes, so the applicability
            // survey is computed once per server lifetime.
            Request::Schemes => Reply::Owned(
                self.schemes
                    .get_or_init(|| {
                        let registry = SchemeRegistry::standard();
                        let params = SchemeParams::default();
                        let parts: Vec<String> = registry
                            .iter()
                            .map(|scheme| {
                                match scheme.applicability(self.snapshot.graph(), &params) {
                                    Ok(g) => format!(
                                        "{}=({},{})/{}",
                                        scheme.name(),
                                        g.diameter,
                                        g.faults,
                                        g.theorem.token()
                                    ),
                                    Err(_) => format!("{}=-", scheme.name()),
                                }
                            })
                            .collect();
                        format!("OK SCHEMES {}", parts.join(" "))
                    })
                    .clone(),
            ),
            // A dry run of the planner against the served network; the
            // serving snapshot is never swapped. The memo lock is never
            // held across a plan (candidate builds take seconds on large
            // graphs and must not serialize every connection's PLAN);
            // concurrent identical targets may race to build the same
            // plan — deterministic, so they insert the same reply.
            Request::Plan { diameter, faults } => {
                let key = (diameter, faults);
                let cached = relock(self.plans.lock()).get(&key).cloned();
                match cached {
                    Some(reply) => Reply::Owned(reply),
                    None => {
                        let request = PlannerRequest::tolerate(faults)
                            .within_diameter(diameter)
                            .single_routes()
                            .max_routes(self.config.plan_route_budget);
                        let reply = match Planner::new().plan(self.snapshot.graph(), &request) {
                            Ok(plan) => {
                                let g = plan.winner.guarantee();
                                format!(
                                    "OK PLAN scheme={} theorem={} d={} f={} routes={}",
                                    plan.winner.spec(),
                                    g.theorem.token(),
                                    g.diameter,
                                    g.faults,
                                    g.routes
                                )
                            }
                            Err(_) => "OK PLAN none".to_string(),
                        };
                        let mut plans = relock(self.plans.lock());
                        // A malicious target sweep must not grow the memo
                        // without bound; past the cap, plans still answer,
                        // just uncached.
                        if plans.len() < PLAN_MEMO_CAP {
                            plans.insert(key, reply.clone());
                        }
                        Reply::Owned(reply)
                    }
                }
            }
        }
    }
}

/// Renders a [`query::ToleranceAnswer`] as its `OK TOLERATE …` line.
fn render_tolerate(a: &query::ToleranceAnswer) -> String {
    if a.holds {
        format!("OK TOLERATE yes sets={} pruned={}", a.sets, a.pruned)
    } else {
        format!(
            "OK TOLERATE no found={} witness={} sets={}",
            render_found(a.found),
            render_witness(&a.witness),
            a.sets
        )
    }
}

/// Renders a [`query::AuditAnswer`] as its `OK AUDIT …` line.
fn render_audit(a: &query::AuditAnswer) -> String {
    if a.holds {
        format!(
            "OK AUDIT holds visited={} pruned={} covered={} space={}",
            a.visited,
            a.pruned,
            a.visited + a.pruned,
            a.space
        )
    } else {
        format!(
            "OK AUDIT violated found={} witness={} visited={}",
            render_found(a.found),
            render_witness(&a.witness),
            a.visited
        )
    }
}

fn render_found(found: Option<Option<u32>>) -> String {
    match found {
        Some(Some(d)) => d.to_string(),
        Some(None) => "disconnect".to_string(),
        None => "-".to_string(),
    }
}

fn render_witness(witness: &[ftr_graph::Node]) -> String {
    if witness.is_empty() {
        return "-".to_string();
    }
    let parts: Vec<String> = witness.iter().map(|v| v.to_string()).collect();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::KernelRouting;
    use ftr_graph::gen;

    #[test]
    fn bind_picks_a_port_and_shuts_down_cleanly() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let snapshot = RoutingSnapshot::new(g, kernel.routing().clone())
            .unwrap()
            .into_shared();
        let server = Server::bind(snapshot, ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        let spawned = server.spawn();
        spawned.shutdown_and_join().unwrap();
    }

    #[test]
    fn trim_ascii_strips_both_ends() {
        assert_eq!(trim_ascii(b"  PING \r\n"), b"PING");
        assert_eq!(trim_ascii(b"\r\n"), b"");
        assert_eq!(trim_ascii(b""), b"");
        assert_eq!(trim_ascii(b"a b"), b"a b");
    }
}

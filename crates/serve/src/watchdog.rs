//! The stall watchdog: a sampler thread that snapshots queue depths,
//! ingest backlog and latency windows on an interval, computes
//! multi-window SLO burn rates and drives alert state.
//!
//! Each tick the watchdog:
//!
//! 1. gauges the ingest backlog ([`EventQueue`] depth) and every
//!    shard's unadopted-connection inbox depth;
//! 2. diffs the cumulative route-latency and epoch-publish histograms
//!    against the previous tick ([`ftr_obs::Histogram::diff_from`]),
//!    turning them into per-interval windows;
//! 3. computes burn rates against the configured SLOs — route p99
//!    (fraction of the window's routes over the target, divided by the
//!    1% tail budget), epoch-advance latency (same shape, plus a stall
//!    escalation when backlog sits undrained across a whole tick with
//!    no epoch advance), and error rate;
//! 4. feeds each burn into its [`SloAlert`] (short window = this tick,
//!    long window = trailing average), exporting the rates as gauges
//!    and pushing `alert_fire`/`alert_clear` [`ftr_obs::TraceRing`]
//!    events on transitions. The total active count lands in the
//!    `ftr_alerts_active` gauge the `STATS` verb reports.
//!
//! The watchdog runs at sampling rate (default 1 s), never on the
//! request path; it reads the shared atomics the shards already
//! publish and takes only the short inbox locks the accept loop uses.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use ftr_obs::{AlertTransition, SloAlert};

use crate::ingest::EventQueue;
use crate::metrics::ServeObs;
use crate::server::ServerStats;

/// SLO targets and sampling cadence for the watchdog.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Route p99 target in microseconds: at most 1% of a window's
    /// routes may exceed it before the budget burns at rate 1.
    pub route_p99_us: u64,
    /// Epoch-advance (publish) latency target in milliseconds.
    pub epoch_ms: u64,
    /// Tolerated error fraction (errors / queries) per window.
    pub error_rate: f64,
    /// Sampling interval (the short burn window).
    pub interval: Duration,
    /// Ticks averaged into the long burn window.
    pub long_windows: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            route_p99_us: 5_000,
            epoch_ms: 50,
            error_rate: 0.01,
            interval: Duration::from_secs(1),
            long_windows: 8,
        }
    }
}

/// The three tracked SLOs, in gauge-label order.
const SLO_NAMES: [&str; 3] = ["route_p99", "epoch_advance", "error_rate"];

/// Burn rate assigned when the ingest pipeline looks stalled (backlog
/// undrained across a full tick with no epoch advance) — high enough
/// that a sustained stall fires the epoch-advance alert on its own.
const STALL_BURN: f64 = 2.0;

/// The tail fraction an SLO quantile target leaves as budget (both
/// latency SLOs are p99 targets).
const TAIL_BUDGET: f64 = 0.01;

fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// The sampler thread's borrowed context (everything lives in the
/// server's scope).
pub(crate) struct Watchdog<'a> {
    pub obs: &'a ServeObs,
    pub stats: &'a ServerStats,
    pub queue: &'a EventQueue,
    pub inboxes: &'a [Mutex<Vec<TcpStream>>],
    pub shutdown: &'a AtomicBool,
    pub slo: SloConfig,
}

impl Watchdog<'_> {
    /// Samples until shutdown. Registers its gauges on entry.
    pub fn run(self) {
        let registry = self.obs.registry();
        let backlog_gauge = registry.gauge(
            "ftr_ingest_backlog",
            "Fault events queued but not yet drained by the ingest thread.",
            &[],
        );
        let inbox_gauges: Vec<_> = (0..self.inboxes.len())
            .map(|s| {
                let shard = s.to_string();
                registry.gauge(
                    "ftr_shard_inbox_depth",
                    "Accepted connections awaiting shard adoption.",
                    &[("shard", &shard)],
                )
            })
            .collect();
        let ticks = registry.counter(
            "ftr_watchdog_ticks_total",
            "Watchdog sampling ticks since start.",
            &[],
        );
        let burn_gauges: Vec<_> = SLO_NAMES
            .iter()
            .map(|name| {
                registry.gauge(
                    "ftr_slo_burn_milli",
                    "Short-window SLO burn rate in thousandths (1000 = \
                     budget consumed exactly at the allowed rate).",
                    &[("slo", name)],
                )
            })
            .collect();
        let active_gauges: Vec<_> = SLO_NAMES
            .iter()
            .map(|name| {
                registry.gauge(
                    "ftr_alert_active",
                    "Whether this SLO's multi-window burn alert is firing.",
                    &[("slo", name)],
                )
            })
            .collect();
        let alerts_total = self.obs.alerts_active_gauge();

        let mut alerts: Vec<SloAlert> = SLO_NAMES
            .iter()
            .map(|_| SloAlert::new(self.slo.long_windows))
            .collect();
        let mut prev_route = self.obs.route_latency_snapshot();
        let mut prev_publish = self.obs.epoch_publish_snapshot();
        let mut prev_advances = self.obs.epoch_advances_total();
        let mut prev_queries = self.stats.queries.load(Ordering::Relaxed);
        let mut prev_errors = self.stats.protocol_errors.load(Ordering::Relaxed);

        loop {
            // Sleep the interval in short steps so shutdown never waits
            // on a full tick.
            let mut slept = Duration::ZERO;
            while slept < self.slo.interval {
                if self.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let step = Duration::from_millis(10).min(self.slo.interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
            ticks.inc();

            let backlog = self.queue.len() as u64;
            backlog_gauge.set(backlog);
            for (gauge, inbox) in inbox_gauges.iter().zip(self.inboxes) {
                gauge.set(relock(inbox.lock()).len() as u64);
            }

            // Route p99 burn over this tick's window.
            let route = self.obs.route_latency_snapshot();
            let route_window = route.diff_from(&prev_route);
            prev_route = route;
            let route_burn = if route_window.is_empty() {
                0.0
            } else {
                route_window.fraction_above(self.slo.route_p99_us.saturating_mul(1_000))
                    / TAIL_BUDGET
            };

            // Epoch-advance burn: publish-latency tail plus stall
            // escalation (backlog present, no advance all tick).
            let publish = self.obs.epoch_publish_snapshot();
            let publish_window = publish.diff_from(&prev_publish);
            prev_publish = publish;
            let advances = self.obs.epoch_advances_total();
            let stalled = backlog > 0 && advances == prev_advances;
            prev_advances = advances;
            let mut epoch_burn = if publish_window.is_empty() {
                0.0
            } else {
                publish_window.fraction_above(self.slo.epoch_ms.saturating_mul(1_000_000))
                    / TAIL_BUDGET
            };
            if stalled {
                epoch_burn = epoch_burn.max(STALL_BURN);
            }

            // Error-rate burn.
            let queries = self.stats.queries.load(Ordering::Relaxed);
            let errors = self.stats.protocol_errors.load(Ordering::Relaxed);
            let delta_q = queries.saturating_sub(prev_queries);
            let delta_e = errors.saturating_sub(prev_errors);
            prev_queries = queries;
            prev_errors = errors;
            let error_burn = if delta_q == 0 {
                0.0
            } else {
                (delta_e as f64 / delta_q as f64) / self.slo.error_rate
            };

            let epoch_id = self.obs.epoch_id_value();
            let mut active_count = 0u64;
            let burns = [route_burn, epoch_burn, error_burn];
            for (i, (alert, burn)) in alerts.iter_mut().zip(burns).enumerate() {
                let (rate, transition) = alert.observe(burn);
                burn_gauges[i].set((rate.short * 1_000.0) as u64);
                active_gauges[i].set(u64::from(alert.active()));
                active_count += u64::from(alert.active());
                if let Some(t) = transition {
                    let kind = match t {
                        AlertTransition::Fired => "alert_fire",
                        AlertTransition::Cleared => "alert_clear",
                    };
                    self.obs.trace().push(
                        epoch_id,
                        kind,
                        format!(
                            "slo={} short={:.2} long={:.2}",
                            SLO_NAMES[i], rate.short, rate.long
                        ),
                    );
                }
            }
            alerts_total.set(active_count);
        }
    }
}

//! Query evaluation against one epoch.
//!
//! Everything here is a pure function of `(snapshot, epoch, request)`,
//! which is what makes the per-epoch cache sound: the same inputs always
//! produce the same reply, so a memoized answer is exactly as good as a
//! recomputed one for the epoch it was computed under.

use std::collections::VecDeque;

use ftr_core::{CompiledRoutes, EpochState};
use ftr_graph::{Node, NodeSet};

use crate::epoch::Epoch;
use crate::snapshot::RoutingSnapshot;

/// Reply to a `ROUTE x y` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteReply {
    /// The pair's own route survives; the full node path is attached.
    Direct(Vec<Node>),
    /// The primary route is dead but a chain of surviving routes
    /// connects the pair; the concatenated node path (through each relay
    /// endpoint) is attached.
    Detour(Vec<Node>),
    /// No chain of surviving routes connects the pair at this epoch.
    Unreachable,
}

/// A malformed or over-budget query (rendered as an `ERR` line; never
/// cached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A node id at or beyond the network size.
    NodeOutOfRange(Node),
    /// `ROUTE x x` is not a route.
    EqualEndpoints,
    /// A `TOLERATE` enumeration would exceed the configured budget.
    TolerateBudget {
        /// Fault sets the enumeration would have to visit.
        needed: u64,
        /// The configured cap.
        budget: u64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            QueryError::EqualEndpoints => write!(f, "route endpoints must differ"),
            QueryError::TolerateBudget { needed, budget } => {
                write!(f, "tolerate needs {needed} fault sets, budget is {budget}")
            }
        }
    }
}

fn check_node(snapshot: &RoutingSnapshot, v: Node) -> Result<(), QueryError> {
    if (v as usize) < snapshot.node_count() {
        Ok(())
    } else {
        Err(QueryError::NodeOutOfRange(v))
    }
}

/// Validates the endpoints of a `ROUTE x y` query without evaluating
/// it. The server rejects invalid queries *before* touching the
/// per-epoch cache, so error replies are never cached and the cache key
/// space stays bounded by the valid pairs.
///
/// # Errors
///
/// Returns [`QueryError`] for out-of-range or equal endpoints.
pub fn validate_route_query(
    snapshot: &RoutingSnapshot,
    x: Node,
    y: Node,
) -> Result<(), QueryError> {
    check_node(snapshot, x)?;
    check_node(snapshot, y)?;
    if x == y {
        return Err(QueryError::EqualEndpoints);
    }
    Ok(())
}

/// Answers `ROUTE x y` at `epoch`: the surviving primary route, a
/// shortest detour over surviving routes, or unreachability.
///
/// # Errors
///
/// Returns [`QueryError`] for out-of-range or equal endpoints.
pub fn route(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    x: Node,
    y: Node,
) -> Result<RouteReply, QueryError> {
    validate_route_query(snapshot, x, y)?;
    if epoch.faults().contains(x) || epoch.faults().contains(y) {
        return Ok(RouteReply::Unreachable);
    }
    if epoch.arc_survives(x, y) {
        let view = snapshot
            .routing()
            .route(x, y)
            .expect("live arcs exist only for routed pairs");
        return Ok(RouteReply::Direct(view.nodes()));
    }
    match relay_chain(epoch, x, y) {
        Some(relays) => {
            // Expand each surviving hop into its stored node path,
            // dropping the duplicated joint between consecutive hops.
            let mut nodes: Vec<Node> = Vec::new();
            for hop in relays.windows(2) {
                let view = snapshot
                    .routing()
                    .route(hop[0], hop[1])
                    .expect("live arcs exist only for routed pairs");
                let path = view.nodes();
                let skip = usize::from(!nodes.is_empty());
                nodes.extend(path.into_iter().skip(skip));
            }
            Ok(RouteReply::Detour(nodes))
        }
        None => Ok(RouteReply::Unreachable),
    }
}

/// BFS over the epoch's surviving route graph (faulty nodes masked out)
/// from `x` to `y`, returning the relay endpoints `x, r1, …, y` of a
/// shortest chain of surviving routes.
fn relay_chain(epoch: &Epoch, x: Node, y: Node) -> Option<Vec<Node>> {
    let n = epoch.live().node_count();
    let mut pred: Vec<Node> = vec![Node::MAX; n];
    let mut queue = VecDeque::new();
    pred[x as usize] = x;
    queue.push_back(x);
    'search: while let Some(u) = queue.pop_front() {
        for (wi, &word) in epoch.live().row(u).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = (wi * 64) as Node + bits.trailing_zeros();
                bits &= bits - 1;
                if pred[v as usize] != Node::MAX || epoch.faults().contains(v) {
                    continue;
                }
                pred[v as usize] = u;
                if v == y {
                    break 'search;
                }
                queue.push_back(v);
            }
        }
    }
    if pred[y as usize] == Node::MAX {
        return None;
    }
    let mut relays = vec![y];
    let mut at = y;
    while at != x {
        at = pred[at as usize];
        relays.push(at);
    }
    relays.reverse();
    Some(relays)
}

/// Outcome of a `TOLERATE` measurement at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToleranceAnswer {
    /// Worst surviving diameter over every fault set reachable by
    /// adding at most `extra` healthy-node failures to the epoch's
    /// faults; `None` if any such set disconnects the survivors.
    pub worst: Option<u32>,
    /// Fault sets evaluated (including the epoch's own).
    pub sets: u64,
}

impl ToleranceAnswer {
    /// Does the epoch tolerate `extra` more faults within diameter `d`?
    pub fn within(&self, d: u32) -> bool {
        self.worst.is_some_and(|w| w <= d)
    }
}

/// Measures `TOLERATE` at `epoch`: exhaustively enumerates every way to
/// add up to `extra` faults on currently-healthy nodes (depth-first,
/// incremental toggles on a scratch [`EpochState`] — the same cursor
/// discipline as the offline verifier) and records the worst surviving
/// diameter.
///
/// # Errors
///
/// Returns [`QueryError::TolerateBudget`] without doing any work if the
/// enumeration would exceed `budget` fault sets.
pub fn tolerate(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    extra: usize,
    budget: u64,
) -> Result<ToleranceAnswer, QueryError> {
    let engine = snapshot.engine();
    let healthy: Vec<Node> = (0..snapshot.node_count() as Node)
        .filter(|&v| !epoch.faults().contains(v))
        .collect();
    let needed = sets_to_visit(healthy.len() as u64, extra as u64);
    if needed > budget {
        return Err(QueryError::TolerateBudget { needed, budget });
    }
    debug_assert_eq!(needed, tolerate_cost(snapshot, epoch, extra));
    let mut state = engine.epoch_state();
    for v in epoch.faults().iter() {
        state.insert(engine, v);
    }
    let mut answer = ToleranceAnswer {
        worst: state.diameter(),
        sets: 1,
    };
    if answer.worst.is_some() && extra > 0 {
        descend(engine, &mut state, &healthy, 0, extra, &mut answer);
    }
    Ok(answer)
}

/// Depth-first enumeration with early exit on the first disconnection
/// (nothing can be worse).
fn descend(
    engine: &CompiledRoutes,
    state: &mut EpochState,
    healthy: &[Node],
    from: usize,
    depth_left: usize,
    answer: &mut ToleranceAnswer,
) {
    for (i, &v) in healthy.iter().enumerate().skip(from) {
        state.insert(engine, v);
        answer.sets += 1;
        match state.diameter() {
            Some(d) => {
                answer.worst = answer.worst.map(|w| w.max(d));
                if depth_left > 1 {
                    descend(engine, state, healthy, i + 1, depth_left - 1, answer);
                }
            }
            None => answer.worst = None,
        }
        state.remove(engine, v);
        if answer.worst.is_none() {
            return;
        }
    }
}

/// The number of fault sets a [`tolerate`] evaluation with `extra`
/// additional faults would visit at `epoch` — the server compares this
/// against its budget *before* consulting the per-epoch cache, so
/// over-budget requests are rejected without caching anything.
pub fn tolerate_cost(snapshot: &RoutingSnapshot, epoch: &Epoch, extra: usize) -> u64 {
    let healthy = (snapshot.node_count() - epoch.faults().len()) as u64;
    sets_to_visit(healthy, extra as u64)
}

/// `1 + C(n, 1) + … + C(n, k)` with saturation: the number of diameter
/// evaluations a `TOLERATE` with `k` extra faults costs.
fn sets_to_visit(n: u64, k: u64) -> u64 {
    let mut total: u64 = 1;
    let mut level: u64 = 1;
    for i in 0..k.min(n) {
        level = match level.checked_mul(n - i) {
            Some(x) => x / (i + 1),
            None => return u64::MAX,
        };
        total = total.saturating_add(level);
    }
    total
}

/// The current fault set rendered for diagnostics (`-` when empty).
pub fn render_faults(faults: &NodeSet) -> String {
    if faults.is_empty() {
        return "-".to_string();
    }
    let ids: Vec<String> = faults.iter().map(|v| v.to_string()).collect();
    ids.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochStore;
    use ftr_core::{verify_tolerance, FaultStrategy, KernelRouting, RouteTable};
    use ftr_graph::gen;

    fn fixture() -> (RoutingSnapshot, EpochStore) {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
        let store = EpochStore::new(&snapshot.engine().epoch_state());
        (snapshot, store)
    }

    fn epoch_with_faults(snapshot: &RoutingSnapshot, store: &EpochStore, faults: &[Node]) {
        let mut state = snapshot.engine().epoch_state();
        for &v in faults {
            state.insert(snapshot.engine(), v);
        }
        store.publish(&state);
    }

    #[test]
    fn direct_route_returns_stored_path() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        for (s, d, view) in snapshot.routing().routes() {
            match route(&snapshot, &epoch, s, d).unwrap() {
                RouteReply::Direct(nodes) => assert_eq!(nodes, view.nodes()),
                other => panic!("fault-free ({s}, {d}) must be direct, got {other:?}"),
            }
        }
    }

    #[test]
    fn detour_chains_surviving_routes() {
        let (snapshot, store) = fixture();
        // Fail nodes until some pair loses its direct route.
        epoch_with_faults(&snapshot, &store, &[0]);
        let epoch = store.load();
        let mut detours = 0;
        for x in 0..10u32 {
            for y in 0..10u32 {
                if x == y || epoch.faults().contains(x) || epoch.faults().contains(y) {
                    continue;
                }
                match route(&snapshot, &epoch, x, y).unwrap() {
                    RouteReply::Direct(nodes) => {
                        assert_eq!(nodes.first(), Some(&x));
                        assert_eq!(nodes.last(), Some(&y));
                    }
                    RouteReply::Detour(nodes) => {
                        detours += 1;
                        assert_eq!(nodes.first(), Some(&x));
                        assert_eq!(nodes.last(), Some(&y));
                        // Surviving routes avoid every fault by
                        // construction, so the whole expanded path must.
                        assert!(nodes.iter().all(|&v| !epoch.faults().contains(v)));
                    }
                    RouteReply::Unreachable => {
                        panic!("kernel routing on petersen survives one fault ({x}, {y})")
                    }
                }
            }
        }
        assert!(detours > 0, "failing node 0 must force some detours");
    }

    #[test]
    fn faulty_endpoint_is_unreachable() {
        let (snapshot, store) = fixture();
        epoch_with_faults(&snapshot, &store, &[3]);
        let epoch = store.load();
        assert_eq!(
            route(&snapshot, &epoch, 3, 5).unwrap(),
            RouteReply::Unreachable
        );
        assert_eq!(
            route(&snapshot, &epoch, 5, 3).unwrap(),
            RouteReply::Unreachable
        );
    }

    #[test]
    fn malformed_routes_error() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        assert_eq!(
            route(&snapshot, &epoch, 4, 4),
            Err(QueryError::EqualEndpoints)
        );
        assert_eq!(
            route(&snapshot, &epoch, 0, 99),
            Err(QueryError::NodeOutOfRange(99))
        );
    }

    #[test]
    fn tolerate_matches_offline_verifier_at_genesis() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        let answer = tolerate(&snapshot, &epoch, 2, 1_000_000).unwrap();
        let report = verify_tolerance(snapshot.engine(), 2, FaultStrategy::Exhaustive, 1);
        assert_eq!(answer.worst, report.worst_diameter);
        // Same enumeration, plus the f=0 and f=1 prefixes.
        assert!(answer.sets >= report.sets_checked as u64);
        assert!(answer.within(report.worst_diameter.unwrap()));
        assert!(!answer.within(report.worst_diameter.unwrap() - 1));
    }

    #[test]
    fn tolerate_accounts_for_current_faults() {
        let (snapshot, store) = fixture();
        epoch_with_faults(&snapshot, &store, &[1, 6]);
        let epoch = store.load();
        let zero_extra = tolerate(&snapshot, &epoch, 0, 100).unwrap();
        assert_eq!(zero_extra.sets, 1);
        assert_eq!(
            zero_extra.worst,
            snapshot
                .engine()
                .surviving_diameter(&NodeSet::from_nodes(10, [1, 6]))
        );
        // One more fault on top of two is three total: beyond the kernel
        // claim's budget of t = 2, so disconnection may appear — but the
        // measurement must agree with brute force.
        let one_extra = tolerate(&snapshot, &epoch, 1, 1_000).unwrap();
        let mut brute_worst = zero_extra.worst;
        for v in 0..10u32 {
            if epoch.faults().contains(v) {
                continue;
            }
            let mut faults = NodeSet::from_nodes(10, [1, 6]);
            faults.insert(v);
            match (
                snapshot.engine().surviving_diameter(&faults),
                &mut brute_worst,
            ) {
                (Some(d), Some(w)) => *w = (*w).max(d),
                (None, w) => *w = None,
                (Some(_), None) => {}
            }
        }
        assert_eq!(one_extra.worst, brute_worst);
    }

    #[test]
    fn tolerate_budget_is_enforced() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        let err = tolerate(&snapshot, &epoch, 3, 10).unwrap_err();
        assert!(matches!(err, QueryError::TolerateBudget { budget: 10, .. }));
    }

    #[test]
    fn sets_to_visit_counts_binomials() {
        assert_eq!(sets_to_visit(10, 0), 1);
        assert_eq!(sets_to_visit(10, 1), 11);
        assert_eq!(sets_to_visit(10, 2), 56); // 1 + 10 + 45
        assert_eq!(sets_to_visit(3, 5), 8); // whole powerset
        assert_eq!(sets_to_visit(u64::MAX / 2, 3), u64::MAX);
    }

    #[test]
    fn faults_render_compactly() {
        assert_eq!(render_faults(&NodeSet::new(5)), "-");
        assert_eq!(render_faults(&NodeSet::from_nodes(9, [7, 2])), "2,7");
    }
}

//! Query evaluation against one epoch.
//!
//! Everything here is a pure function of `(snapshot, epoch, request)`,
//! which is what makes the per-epoch cache sound: the same inputs always
//! produce the same reply, so a memoized answer is exactly as good as a
//! recomputed one for the epoch it was computed under.

use std::collections::VecDeque;

use ftr_audit::{SearchConfig, SearchMode, Verdict};
use ftr_core::ToleranceClaim;
use ftr_graph::{Node, NodeSet};

use crate::epoch::Epoch;
use crate::snapshot::RoutingSnapshot;

/// Reply to a `ROUTE x y` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteReply {
    /// The pair's own route survives; the full node path is attached.
    Direct(Vec<Node>),
    /// The primary route is dead but a chain of surviving routes
    /// connects the pair; the concatenated node path (through each relay
    /// endpoint) is attached.
    Detour(Vec<Node>),
    /// No chain of surviving routes connects the pair at this epoch.
    Unreachable,
}

/// A malformed or over-budget query (rendered as an `ERR` line; never
/// cached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A node id at or beyond the network size.
    NodeOutOfRange(Node),
    /// `ROUTE x x` is not a route.
    EqualEndpoints,
    /// A `TOLERATE` search could exceed the configured budget: the ERR
    /// names the estimated (worst-case) search size so the client knows
    /// how far over it asked, instead of receiving a silently truncated
    /// sweep.
    TolerateBudget {
        /// Fault sets the search would have to cover in the worst case
        /// (pruning can beat the estimate but cannot promise to).
        needed: u64,
        /// The configured cap.
        budget: u64,
    },
    /// An `AUDIT` search could exceed the configured budget.
    AuditBudget {
        /// Fault sets the audit would have to cover in the worst case.
        needed: u64,
        /// The configured cap.
        budget: u64,
    },
    /// A structurally-impossible state was reached (a routed pair with
    /// no stored path, an uncapped search reporting exhaustion). The
    /// request path renders it as an `ERR` reply instead of panicking
    /// the shard thread: one corrupted answer must not take down the
    /// other connections multiplexed on the same shard.
    Internal(&'static str),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NodeOutOfRange(v) => write!(f, "node {v} out of range"),
            QueryError::EqualEndpoints => write!(f, "route endpoints must differ"),
            QueryError::TolerateBudget { needed, budget } => {
                write!(
                    f,
                    "TOLERATE search-size estimate {needed} exceeds budget {budget}"
                )
            }
            QueryError::AuditBudget { needed, budget } => {
                write!(
                    f,
                    "AUDIT search-size estimate {needed} exceeds budget {budget}"
                )
            }
            QueryError::Internal(what) => write!(f, "internal: {what}"),
        }
    }
}

fn check_node(snapshot: &RoutingSnapshot, v: Node) -> Result<(), QueryError> {
    if (v as usize) < snapshot.node_count() {
        Ok(())
    } else {
        Err(QueryError::NodeOutOfRange(v))
    }
}

/// Validates the endpoints of a `ROUTE x y` query without evaluating
/// it. The server rejects invalid queries *before* touching the
/// per-epoch cache, so error replies are never cached and the cache key
/// space stays bounded by the valid pairs.
///
/// # Errors
///
/// Returns [`QueryError`] for out-of-range or equal endpoints.
pub fn validate_route_query(
    snapshot: &RoutingSnapshot,
    x: Node,
    y: Node,
) -> Result<(), QueryError> {
    check_node(snapshot, x)?;
    check_node(snapshot, y)?;
    if x == y {
        return Err(QueryError::EqualEndpoints);
    }
    Ok(())
}

/// Answers `ROUTE x y` at `epoch`: the surviving primary route, a
/// shortest detour over surviving routes, or unreachability.
///
/// # Errors
///
/// Returns [`QueryError`] for out-of-range or equal endpoints.
pub fn route(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    x: Node,
    y: Node,
) -> Result<RouteReply, QueryError> {
    validate_route_query(snapshot, x, y)?;
    if epoch.faults().contains(x) || epoch.faults().contains(y) {
        return Ok(RouteReply::Unreachable);
    }
    // Live arcs exist only for routed pairs, so these lookups cannot
    // miss; if the invariant ever breaks, the pair degrades to a
    // structured ERR instead of panicking the shard.
    const NO_PATH: QueryError = QueryError::Internal("live arc has no stored route");
    if epoch.arc_survives(x, y) {
        let view = snapshot.routing().route(x, y).ok_or(NO_PATH)?;
        return Ok(RouteReply::Direct(view.nodes()));
    }
    match relay_chain(epoch, x, y) {
        Some(relays) => {
            // Expand each surviving hop into its stored node path,
            // dropping the duplicated joint between consecutive hops.
            let mut nodes: Vec<Node> = Vec::new();
            for hop in relays.windows(2) {
                let view = snapshot.routing().route(hop[0], hop[1]).ok_or(NO_PATH)?;
                let path = view.nodes();
                let skip = usize::from(!nodes.is_empty());
                nodes.extend(path.into_iter().skip(skip));
            }
            Ok(RouteReply::Detour(nodes))
        }
        None => Ok(RouteReply::Unreachable),
    }
}

/// Answers a batch of **pre-validated** `ROUTE` pairs against one epoch
/// in a single cache pass, calling `sink(index, rendered_reply, hit)`
/// per pair in order.
///
/// This is the server's pipeline-window fast path: the caller acquires
/// the epoch once for the whole window, validation (and therefore every
/// `ERR`) happens before the cache is touched, and the cache resolves
/// the window with at most one lock acquisition per shard — lock-free
/// outright on small graphs ([`crate::QueryCache::route_many`]). Misses
/// are computed by [`route`] and rendered once; the `Arc<str>` handed to
/// `sink` is the cached allocation, never a copy.
///
/// Pairs are expected to pass [`validate_route_query`] — the caller
/// rejects invalid ones before building the batch. A pair that fails
/// anyway is answered with its rendered `ERR` line (and that line is
/// what the cache remembers for the pair), never a panic.
pub fn route_batch(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    pairs: &[(Node, Node)],
    sink: impl FnMut(usize, std::sync::Arc<str>, bool),
) {
    epoch.cache().route_many(
        pairs,
        |x, y| match route(snapshot, epoch, x, y) {
            Ok(reply) => crate::proto::render_route(&reply),
            Err(e) => format!("ERR {e}"),
        },
        sink,
    );
}

/// The window of wall time the engine (cache-miss compute) was active
/// during one [`route_batch_observed`] call: first miss start to last
/// miss end, in [`ftr_obs::monotonic_nanos`] nanos. Both zero when the
/// whole batch was served from cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineWindow {
    /// Start of the first cache-miss computation.
    pub start_nanos: u64,
    /// End of the last cache-miss computation.
    pub end_nanos: u64,
}

impl EngineWindow {
    /// Whether any miss was computed (the window is meaningful).
    pub fn active(&self) -> bool {
        self.end_nanos > 0
    }
}

/// [`route_batch`] plus flight-recorder observation: timestamps the
/// engine's share of the cache pass into `window` (plain writes into a
/// caller-owned struct — no locks, no atomics, hot-path safe). The
/// caller turns the window into a synthesized `engine` child span under
/// its `cache` span.
pub fn route_batch_observed(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    pairs: &[(Node, Node)],
    window: &mut EngineWindow,
    sink: impl FnMut(usize, std::sync::Arc<str>, bool),
) {
    epoch.cache().route_many(
        pairs,
        |x, y| {
            if window.start_nanos == 0 {
                window.start_nanos = ftr_obs::monotonic_nanos();
            }
            let rendered = match route(snapshot, epoch, x, y) {
                Ok(reply) => crate::proto::render_route(&reply),
                Err(e) => format!("ERR {e}"),
            };
            window.end_nanos = ftr_obs::monotonic_nanos();
            rendered
        },
        sink,
    );
}

/// BFS over the epoch's surviving route graph (faulty nodes masked out)
/// from `x` to `y`, returning the relay endpoints `x, r1, …, y` of a
/// shortest chain of surviving routes.
fn relay_chain(epoch: &Epoch, x: Node, y: Node) -> Option<Vec<Node>> {
    let n = epoch.live().node_count();
    let mut pred: Vec<Node> = vec![Node::MAX; n];
    let mut queue = VecDeque::new();
    pred[x as usize] = x;
    queue.push_back(x);
    'search: while let Some(u) = queue.pop_front() {
        for (wi, &word) in epoch.live().row(u).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let v = (wi * 64) as Node + bits.trailing_zeros();
                bits &= bits - 1;
                if pred[v as usize] != Node::MAX || epoch.faults().contains(v) {
                    continue;
                }
                pred[v as usize] = u;
                if v == y {
                    break 'search;
                }
                queue.push_back(v);
            }
        }
    }
    if pred[y as usize] == Node::MAX {
        return None;
    }
    let mut relays = vec![y];
    let mut at = y;
    while at != x {
        at = pred[at as usize];
        relays.push(at);
    }
    relays.reverse();
    Some(relays)
}

/// Outcome of a `TOLERATE` measurement at one epoch: the pruned
/// searcher's bound-aware verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToleranceAnswer {
    /// `true` iff *every* way to add up to `extra` healthy-node faults
    /// keeps the surviving diameter within the requested bound.
    pub holds: bool,
    /// On a `no` verdict: the surviving diameter the witness produced
    /// (`None` = disconnection).
    pub found: Option<Option<u32>>,
    /// On a `no` verdict: the full violating fault set (current epoch
    /// faults included), ascending.
    pub witness: Vec<Node>,
    /// Fault sets actually evaluated (including the epoch's own).
    pub sets: u64,
    /// Fault sets covered by the monotone prune instead of evaluation.
    pub pruned: u64,
    /// Search wall time in nanoseconds (from the audit searcher).
    pub wall_nanos: u64,
}

/// Measures `TOLERATE d f` at `epoch` through the `ftr-audit` pruned
/// searcher: the claim "every extension of the current faults by at
/// most `extra` healthy nodes keeps the surviving diameter `<= bound`"
/// is certified (with full accounting) or refuted by a witness —
/// instead of the raw count-capped sweep this verb used to run.
///
/// Single-threaded by design: replies are cached per `(bound, extra)`
/// in the epoch cache, and a deterministic search keeps cached and
/// fresh answers byte-identical.
///
/// # Errors
///
/// Returns [`QueryError::TolerateBudget`] without doing any work if the
/// worst-case search size exceeds `budget` fault sets.
pub fn tolerate(
    snapshot: &RoutingSnapshot,
    epoch: &Epoch,
    bound: u32,
    extra: usize,
    budget: u64,
) -> Result<ToleranceAnswer, QueryError> {
    let needed = tolerate_cost(snapshot, epoch, extra);
    if needed > budget {
        return Err(QueryError::TolerateBudget { needed, budget });
    }
    let claim = ToleranceClaim {
        diameter: bound,
        faults: extra,
    };
    let report = ftr_audit::audit(
        snapshot.engine(),
        claim,
        &[],
        epoch.faults(),
        &SearchConfig {
            mode: SearchMode::Certify,
            threads: 1,
            max_visits: None, // the worst case was budget-checked above
            ..SearchConfig::default()
        },
    );
    match report.verdict {
        Verdict::Holds => Ok(ToleranceAnswer {
            holds: true,
            found: None,
            witness: Vec::new(),
            sets: report.visited,
            pruned: report.pruned_sets,
            wall_nanos: report.wall_nanos,
        }),
        Verdict::Violated { witness, diameter } => Ok(ToleranceAnswer {
            holds: false,
            found: Some(diameter),
            witness,
            sets: report.visited,
            pruned: report.pruned_sets,
            wall_nanos: report.wall_nanos,
        }),
        // No visit cap was set, so the searcher cannot report
        // exhaustion; degrade to an ERR rather than panic the shard.
        Verdict::Exhausted => Err(QueryError::Internal("uncapped TOLERATE search exhausted")),
    }
}

/// The worst-case number of fault sets a [`tolerate`] search with
/// `extra` additional faults would have to cover at `epoch` — the
/// server compares this against its budget *before* consulting the
/// per-epoch cache, so over-budget requests are rejected with a
/// structured ERR (naming this estimate) without caching anything.
/// Pruning may finish far below the estimate but cannot promise to.
pub fn tolerate_cost(snapshot: &RoutingSnapshot, epoch: &Epoch, extra: usize) -> u64 {
    let healthy = (snapshot.node_count() - epoch.faults().len()) as u64;
    sets_to_visit(healthy, extra as u64)
}

/// Outcome of an `AUDIT d f` evaluation: a pristine-snapshot audit of
/// the claim, with full searched-space accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditAnswer {
    /// `true` iff the claim held over the whole space.
    pub holds: bool,
    /// On a violation: the witness's surviving diameter.
    pub found: Option<Option<u32>>,
    /// On a violation: the witness fault set, ascending.
    pub witness: Vec<Node>,
    /// Fault sets evaluated.
    pub visited: u64,
    /// Fault sets covered by pruning.
    pub pruned: u64,
    /// The whole space `Σ_{k<=f} C(n, k)`.
    pub space: u64,
    /// Search wall time in nanoseconds (from the audit searcher).
    pub wall_nanos: u64,
}

/// Audits `(bound, faults)` against the **pristine** snapshot (current
/// epoch faults ignored — this is about the served scheme's guarantee,
/// not the current weather), through the pruned searcher. The answer is
/// epoch-independent, so the server memoizes it per `(bound, faults)`
/// for its whole lifetime.
///
/// # Errors
///
/// Returns [`QueryError::AuditBudget`] without doing any work if the
/// worst-case search size exceeds `budget`.
pub fn audit_claim(
    snapshot: &RoutingSnapshot,
    bound: u32,
    faults: usize,
    budget: u64,
) -> Result<AuditAnswer, QueryError> {
    let n = snapshot.node_count() as u64;
    let needed = sets_to_visit(n, faults as u64);
    if needed > budget {
        return Err(QueryError::AuditBudget { needed, budget });
    }
    let claim = ToleranceClaim {
        diameter: bound,
        faults,
    };
    let report = ftr_audit::audit(
        snapshot.engine(),
        claim,
        &[],
        &NodeSet::new(snapshot.node_count()),
        &SearchConfig {
            mode: SearchMode::Certify,
            threads: 1,
            max_visits: None,
            ..SearchConfig::default()
        },
    );
    match report.verdict {
        Verdict::Holds => Ok(AuditAnswer {
            holds: true,
            found: None,
            witness: Vec::new(),
            visited: report.visited,
            pruned: report.pruned_sets,
            space: report.space,
            wall_nanos: report.wall_nanos,
        }),
        Verdict::Violated { witness, diameter } => Ok(AuditAnswer {
            holds: false,
            found: Some(diameter),
            witness,
            visited: report.visited,
            pruned: report.pruned_sets,
            space: report.space,
            wall_nanos: report.wall_nanos,
        }),
        // No visit cap was set, so the searcher cannot report
        // exhaustion; degrade to an ERR rather than panic the shard.
        Verdict::Exhausted => Err(QueryError::Internal("uncapped AUDIT search exhausted")),
    }
}

/// `1 + C(n, 1) + … + C(n, k)` with saturation: the number of diameter
/// evaluations a `TOLERATE` with `k` extra faults costs.
fn sets_to_visit(n: u64, k: u64) -> u64 {
    let mut total: u64 = 1;
    let mut level: u64 = 1;
    for i in 0..k.min(n) {
        level = match level.checked_mul(n - i) {
            Some(x) => x / (i + 1),
            None => return u64::MAX,
        };
        total = total.saturating_add(level);
    }
    total
}

/// The current fault set rendered for diagnostics (`-` when empty).
pub fn render_faults(faults: &NodeSet) -> String {
    if faults.is_empty() {
        return "-".to_string();
    }
    let ids: Vec<String> = faults.iter().map(|v| v.to_string()).collect();
    ids.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochStore;
    use ftr_core::{verify_tolerance, FaultStrategy, KernelRouting, RouteTable};
    use ftr_graph::gen;

    fn fixture() -> (RoutingSnapshot, EpochStore) {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let snapshot = RoutingSnapshot::new(g, kernel.routing().clone()).unwrap();
        let store = EpochStore::new(&snapshot.engine().epoch_state());
        (snapshot, store)
    }

    fn epoch_with_faults(snapshot: &RoutingSnapshot, store: &EpochStore, faults: &[Node]) {
        let mut state = snapshot.engine().epoch_state();
        for &v in faults {
            state.insert(snapshot.engine(), v);
        }
        store.publish(&state);
    }

    #[test]
    fn direct_route_returns_stored_path() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        for (s, d, view) in snapshot.routing().routes() {
            match route(&snapshot, &epoch, s, d).unwrap() {
                RouteReply::Direct(nodes) => assert_eq!(nodes, view.nodes()),
                other => panic!("fault-free ({s}, {d}) must be direct, got {other:?}"),
            }
        }
    }

    #[test]
    fn detour_chains_surviving_routes() {
        let (snapshot, store) = fixture();
        // Fail nodes until some pair loses its direct route.
        epoch_with_faults(&snapshot, &store, &[0]);
        let epoch = store.load();
        let mut detours = 0;
        for x in 0..10u32 {
            for y in 0..10u32 {
                if x == y || epoch.faults().contains(x) || epoch.faults().contains(y) {
                    continue;
                }
                match route(&snapshot, &epoch, x, y).unwrap() {
                    RouteReply::Direct(nodes) => {
                        assert_eq!(nodes.first(), Some(&x));
                        assert_eq!(nodes.last(), Some(&y));
                    }
                    RouteReply::Detour(nodes) => {
                        detours += 1;
                        assert_eq!(nodes.first(), Some(&x));
                        assert_eq!(nodes.last(), Some(&y));
                        // Surviving routes avoid every fault by
                        // construction, so the whole expanded path must.
                        assert!(nodes.iter().all(|&v| !epoch.faults().contains(v)));
                    }
                    RouteReply::Unreachable => {
                        panic!("kernel routing on petersen survives one fault ({x}, {y})")
                    }
                }
            }
        }
        assert!(detours > 0, "failing node 0 must force some detours");
    }

    #[test]
    fn faulty_endpoint_is_unreachable() {
        let (snapshot, store) = fixture();
        epoch_with_faults(&snapshot, &store, &[3]);
        let epoch = store.load();
        assert_eq!(
            route(&snapshot, &epoch, 3, 5).unwrap(),
            RouteReply::Unreachable
        );
        assert_eq!(
            route(&snapshot, &epoch, 5, 3).unwrap(),
            RouteReply::Unreachable
        );
    }

    #[test]
    fn malformed_routes_error() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        assert_eq!(
            route(&snapshot, &epoch, 4, 4),
            Err(QueryError::EqualEndpoints)
        );
        assert_eq!(
            route(&snapshot, &epoch, 0, 99),
            Err(QueryError::NodeOutOfRange(99))
        );
    }

    #[test]
    fn tolerate_matches_offline_verifier_at_genesis() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        let report = verify_tolerance(snapshot.engine(), 2, FaultStrategy::Exhaustive, 1);
        let worst = report.worst_diameter.unwrap();
        // At the exhaustive worst diameter the claim holds, with full
        // accounting; one below it, a witness must surface.
        let at = tolerate(&snapshot, &epoch, worst, 2, 1_000_000).unwrap();
        assert!(at.holds, "{at:?}");
        assert_eq!(at.sets + at.pruned, report.sets_checked as u64);
        let below = tolerate(&snapshot, &epoch, worst - 1, 2, 1_000_000).unwrap();
        assert!(!below.holds);
        let found = below.found.expect("witness diameter recorded");
        assert_eq!(
            found,
            snapshot
                .engine()
                .surviving_diameter(&NodeSet::from_nodes(10, below.witness.clone())),
            "witness reproduces"
        );
        assert!(below.sets < at.sets, "violations end the search early");
    }

    #[test]
    fn tolerate_accounts_for_current_faults() {
        let (snapshot, store) = fixture();
        epoch_with_faults(&snapshot, &store, &[1, 6]);
        let epoch = store.load();
        let current = snapshot
            .engine()
            .surviving_diameter(&NodeSet::from_nodes(10, [1, 6]))
            .expect("two faults keep the petersen kernel connected");
        let zero_extra = tolerate(&snapshot, &epoch, current, 0, 100).unwrap();
        assert!(zero_extra.holds);
        assert_eq!(zero_extra.sets, 1);
        assert!(
            !tolerate(&snapshot, &epoch, current - 1, 0, 100)
                .unwrap()
                .holds
        );
        // One more fault on top of two is three total: beyond the kernel
        // claim's budget of t = 2 — the verdict must agree with brute
        // force over the nine single extensions.
        let mut brute_worst = Some(current);
        for v in 0..10u32 {
            if epoch.faults().contains(v) {
                continue;
            }
            let mut faults = NodeSet::from_nodes(10, [1, 6]);
            faults.insert(v);
            match (
                snapshot.engine().surviving_diameter(&faults),
                &mut brute_worst,
            ) {
                (Some(d), Some(w)) => *w = (*w).max(d),
                (None, w) => *w = None,
                (Some(_), None) => {}
            }
        }
        for bound in [current, current + 1, 12] {
            let answer = tolerate(&snapshot, &epoch, bound, 1, 1_000).unwrap();
            let brute_holds = brute_worst.is_some_and(|w| w <= bound);
            assert_eq!(answer.holds, brute_holds, "bound {bound}");
            if !answer.holds {
                assert!(answer.witness.contains(&1) && answer.witness.contains(&6));
            }
        }
    }

    #[test]
    fn tolerate_budget_is_enforced() {
        let (snapshot, store) = fixture();
        let epoch = store.load();
        let err = tolerate(&snapshot, &epoch, 4, 3, 10).unwrap_err();
        assert!(matches!(err, QueryError::TolerateBudget { budget: 10, .. }));
        // The structured ERR names the worst-case estimate.
        assert!(err.to_string().contains("176"), "{err}"); // 1 + 10 + 45 + 120
                                                           // AUDIT has its own guard.
        let err = audit_claim(&snapshot, 4, 3, 10).unwrap_err();
        assert!(matches!(err, QueryError::AuditBudget { budget: 10, .. }));
    }

    #[test]
    fn sets_to_visit_counts_binomials() {
        assert_eq!(sets_to_visit(10, 0), 1);
        assert_eq!(sets_to_visit(10, 1), 11);
        assert_eq!(sets_to_visit(10, 2), 56); // 1 + 10 + 45
        assert_eq!(sets_to_visit(3, 5), 8); // whole powerset
        assert_eq!(sets_to_visit(u64::MAX / 2, 3), u64::MAX);
    }

    #[test]
    fn faults_render_compactly() {
        assert_eq!(render_faults(&NodeSet::new(5)), "-");
        assert_eq!(render_faults(&NodeSet::from_nodes(9, [7, 2])), "2,7");
    }
}

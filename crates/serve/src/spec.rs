//! Command-line graph specs — re-exported from [`ftr_graph::spec`],
//! where the parser moved so that non-serve binaries (the `ftr-audit`
//! CLI) share the same grammar. Kept as a module so existing
//! `ftr_serve::spec::parse_graph_spec` callers keep compiling.

pub use ftr_graph::spec::parse_graph_spec;

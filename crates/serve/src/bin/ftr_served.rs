//! `ftr-served` — the routing query daemon.
//!
//! ```text
//! ftr-served [--graph SPEC | --snapshot FILE] [--scheme SCHEME|auto]
//!            [--faults F] [--addr HOST:PORT] [--shards N] [--batch-us N]
//!            [--no-metrics] [--no-spans] [--metrics-json FILE]
//!            [--metrics-interval-s N] [--slo-route-p99-us N]
//!            [--slo-epoch-ms N] [--write-snapshot FILE]
//!
//! Graph specs:  petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C
//! Scheme specs: kernel | circular[:k=N] | tricircular[:small] |
//!               bipolar[:uni|bi,roots=A-B] | hypercube | augment | auto
//! ```
//!
//! `--scheme` takes a `ftr_core::SchemeSpec` (the same grammar the load
//! generator and experiment binaries accept) and builds the named
//! construction through the `SchemeRegistry`; `--scheme auto` lets the
//! `Planner` survey every applicable scheme and serve the winner. Either
//! way the snapshot records which scheme (and guarantee) built it, and
//! the provenance round-trips through the v2 snapshot format.
//!
//! With `--write-snapshot` the daemon builds the routing, writes the
//! snapshot file and exits — the file can then be served (or shipped)
//! with `--snapshot`.
//!
//! Metrics are on by default (`METRICS` / `TRACE n` serve them over the
//! wire); `--no-metrics` turns hot-path recording off, and
//! `--metrics-json FILE` additionally writes a flat JSON snapshot of
//! the registry every `--metrics-interval-s` seconds (default 5),
//! atomically via a temp-file rename.
//!
//! The flight recorder (`SPANS` / `SLOW` span trees) rides on metrics
//! and is likewise on by default; `--no-spans` disables just the span
//! tracing. `--slo-route-p99-us` and `--slo-epoch-ms` set the stall
//! watchdog's burn-rate targets (route p99 latency and epoch-advance
//! latency respectively).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use ftr_core::{Planner, PlannerRequest, SchemeRegistry, SchemeSpec};
use ftr_graph::{connectivity, Graph};
use ftr_serve::spec::parse_graph_spec;
use ftr_serve::{RoutingSnapshot, Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ftr-served: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    // Anchor the monotonic span/trace clock at process start so every
    // recorded timestamp is relative to daemon launch.
    ftr_obs::monotonic_nanos();
    let mut graph_spec = String::from("harary:5,24");
    let mut snapshot_file: Option<String> = None;
    let mut scheme_spec = String::from("kernel");
    let mut faults: Option<usize> = None;
    let mut addr: SocketAddr = "127.0.0.1:7077".parse().expect("valid default");
    let mut config = ServerConfig::default();
    let mut write_snapshot: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut metrics_interval = Duration::from_secs(5);

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--graph" => graph_spec = value("--graph")?,
            "--snapshot" => snapshot_file = Some(value("--snapshot")?),
            "--scheme" => scheme_spec = value("--scheme")?,
            "--faults" => {
                faults = Some(
                    value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?,
                )
            }
            "--addr" => {
                addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("--addr: {e}"))?
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--batch-us" => {
                let us: u64 = value("--batch-us")?
                    .parse()
                    .map_err(|e| format!("--batch-us: {e}"))?;
                config.batch_window = Duration::from_micros(us);
            }
            "--write-snapshot" => write_snapshot = Some(value("--write-snapshot")?),
            "--no-metrics" => config.metrics = false,
            "--no-spans" => config.spans = false,
            "--slo-route-p99-us" => {
                config.slo.route_p99_us = value("--slo-route-p99-us")?
                    .parse()
                    .map_err(|e| format!("--slo-route-p99-us: {e}"))?
            }
            "--slo-epoch-ms" => {
                config.slo.epoch_ms = value("--slo-epoch-ms")?
                    .parse()
                    .map_err(|e| format!("--slo-epoch-ms: {e}"))?
            }
            "--metrics-json" => metrics_json = Some(value("--metrics-json")?),
            "--metrics-interval-s" => {
                let s: u64 = value("--metrics-interval-s")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval-s: {e}"))?;
                metrics_interval = Duration::from_secs(s.max(1));
            }
            "--help" | "-h" => {
                println!(
                    "usage: ftr-served [--graph SPEC | --snapshot FILE] \
                     [--scheme SCHEME|auto] [--faults F] [--addr HOST:PORT] [--shards N] \
                     [--batch-us N] [--no-metrics] [--no-spans] [--metrics-json FILE] \
                     [--metrics-interval-s N] [--slo-route-p99-us N] [--slo-epoch-ms N] \
                     [--write-snapshot FILE]\n\
                     graph specs:  petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C\n\
                     scheme specs: kernel | circular[:k=N] | tricircular[:small] | \
                     bipolar[:uni|bi] | hypercube | augment | auto"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }

    let snapshot = match snapshot_file {
        Some(path) => RoutingSnapshot::load(&path).map_err(|e| e.to_string())?,
        None => {
            let (graph, label) = parse_graph_spec(&graph_spec)?;
            let built = build_scheme(&graph, &scheme_spec, faults)?;
            println!(
                "built {} on {label}: guarantees ({}, {}) per {}",
                built.spec(),
                built.guarantee().diameter,
                built.guarantee().faults,
                built.guarantee().theorem
            );
            RoutingSnapshot::from_built(built).map_err(|e| e.to_string())?
        }
    };

    if let Some(path) = write_snapshot {
        snapshot.save(&path).map_err(|e| e.to_string())?;
        println!(
            "wrote snapshot ({} nodes, {} routes{}) to {path}",
            snapshot.node_count(),
            snapshot.routing().route_count(),
            match snapshot.scheme() {
                Some(tag) => format!(", scheme {}", tag.spec),
                None => String::new(),
            }
        );
        return Ok(());
    }

    config.addr = addr;
    let server = Server::bind(snapshot.into_shared(), config).map_err(|e| format!("bind: {e}"))?;
    println!("ftr-served listening on {}", server.local_addr());
    if let Some(path) = metrics_json {
        spawn_metrics_writer(server.handle(), path, metrics_interval);
    }
    server.run().map_err(|e| format!("serve: {e}"))
}

/// Periodically snapshots the metric registry as flat JSON. The thread
/// is detached — it exits with the process (the write interval bounds
/// how stale the final file can be), and write failures are reported
/// once without killing the daemon.
fn spawn_metrics_writer(handle: ftr_serve::ServerHandle, path: String, interval: Duration) {
    std::thread::spawn(move || {
        let tmp = format!("{path}.tmp");
        let mut warned = false;
        loop {
            std::thread::sleep(interval);
            let json = handle.obs().render_json();
            let result =
                std::fs::write(&tmp, json.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
            if let Err(e) = result {
                if !warned {
                    eprintln!("ftr-served: metrics-json write to {path} failed: {e}");
                    warned = true;
                }
            }
        }
    });
}

/// Builds the requested scheme through the registry, or lets the
/// planner pick (`auto`). Only single-route schemes are servable, so
/// `auto` plans with that restriction.
fn build_scheme(
    graph: &Graph,
    scheme: &str,
    faults: Option<usize>,
) -> Result<ftr_core::BuiltRouting, String> {
    if scheme == "auto" {
        let budget =
            faults.unwrap_or_else(|| connectivity::vertex_connectivity(graph).saturating_sub(1));
        let request = PlannerRequest::tolerate(budget).single_routes();
        let plan = Planner::new()
            .plan(graph, &request)
            .map_err(|e| e.to_string())?;
        for candidate in &plan.candidates {
            println!("plan: {candidate}");
        }
        return Ok(plan.winner);
    }
    let mut spec: SchemeSpec = scheme.parse()?;
    if faults.is_some() {
        spec.params.faults = faults;
    }
    SchemeRegistry::standard()
        .build_spec(graph, &spec)
        .map_err(|e| e.to_string())
}

//! `ftr-served` — the routing query daemon.
//!
//! ```text
//! ftr-served [--graph SPEC | --snapshot FILE] [--routing kernel|circular]
//!            [--addr HOST:PORT] [--workers N] [--batch-us N]
//!            [--write-snapshot FILE]
//!
//! Graph specs: petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C
//! ```
//!
//! With `--write-snapshot` the daemon builds the routing, writes the
//! snapshot file and exits — the file can then be served (or shipped)
//! with `--snapshot`.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use ftr_core::{CircularRouting, KernelRouting, Routing};
use ftr_graph::Graph;
use ftr_serve::spec::parse_graph_spec;
use ftr_serve::{RoutingSnapshot, Server, ServerConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ftr-served: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut graph_spec = String::from("harary:5,24");
    let mut snapshot_file: Option<String> = None;
    let mut routing_kind = String::from("kernel");
    let mut addr: SocketAddr = "127.0.0.1:7077".parse().expect("valid default");
    let mut config = ServerConfig::default();
    let mut write_snapshot: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--graph" => graph_spec = value("--graph")?,
            "--snapshot" => snapshot_file = Some(value("--snapshot")?),
            "--routing" => routing_kind = value("--routing")?,
            "--addr" => {
                addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("--addr: {e}"))?
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--batch-us" => {
                let us: u64 = value("--batch-us")?
                    .parse()
                    .map_err(|e| format!("--batch-us: {e}"))?;
                config.batch_window = Duration::from_micros(us);
            }
            "--write-snapshot" => write_snapshot = Some(value("--write-snapshot")?),
            "--help" | "-h" => {
                println!(
                    "usage: ftr-served [--graph SPEC | --snapshot FILE] \
                     [--routing kernel|circular] [--addr HOST:PORT] [--workers N] \
                     [--batch-us N] [--write-snapshot FILE]\n\
                     graph specs: petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }

    let snapshot = match snapshot_file {
        Some(path) => RoutingSnapshot::load(&path).map_err(|e| e.to_string())?,
        None => {
            let (graph, _) = parse_graph_spec(&graph_spec)?;
            let routing = build_routing(&graph, &routing_kind)?;
            RoutingSnapshot::new(graph, routing).map_err(|e| e.to_string())?
        }
    };

    if let Some(path) = write_snapshot {
        snapshot.save(&path).map_err(|e| e.to_string())?;
        println!(
            "wrote snapshot ({} nodes, {} routes) to {path}",
            snapshot.node_count(),
            snapshot.routing().route_count()
        );
        return Ok(());
    }

    config.addr = addr;
    let server = Server::bind(snapshot.into_shared(), config).map_err(|e| format!("bind: {e}"))?;
    println!("ftr-served listening on {}", server.local_addr());
    server.run().map_err(|e| format!("serve: {e}"))
}

fn build_routing(graph: &Graph, kind: &str) -> Result<Routing, String> {
    match kind {
        "kernel" => Ok(KernelRouting::build(graph)
            .map_err(|e| e.to_string())?
            .routing()
            .clone()),
        "circular" => Ok(CircularRouting::build(graph)
            .map_err(|e| e.to_string())?
            .routing()
            .clone()),
        other => Err(format!("unknown routing {other:?} (kernel|circular)")),
    }
}

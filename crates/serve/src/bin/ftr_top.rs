//! `ftr-top` — a live terminal dashboard for a running `ftr-served`.
//!
//! ```text
//! ftr-top [--addr HOST:PORT] [--interval-s N] [--once]
//! ```
//!
//! Scrapes the daemon's `STATS`, `METRICS`, `SPANS` and `LINEAGE`
//! verbs over the wire protocol and renders a refreshing table:
//! throughput, per-stage latency quantiles from the flight recorder,
//! cache hit rate, ingest/epoch health and SLO alert status. `--once`
//! prints a single frame and exits (the CI smoke test runs it that
//! way); otherwise the screen refreshes every `--interval-s` seconds
//! (default 2) until interrupted.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ftr_serve::Client;

/// Span stages rendered in pipeline order (matches the server's
/// flight-recorder stage set).
const STAGES: [&str; 6] = ["batch", "decode", "cache", "engine", "serialize", "write"];

/// Watchdog SLO labels, in the server's gauge order.
const SLOS: [&str; 3] = ["route_p99", "epoch_advance", "error_rate"];

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ftr-top: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    ftr_obs::monotonic_nanos(); // anchor the clock at process start
    let mut addr: SocketAddr = "127.0.0.1:7077".parse().expect("valid default");
    let mut interval = Duration::from_secs(2);
    let mut once = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => {
                addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("--addr: {e}"))?
            }
            "--interval-s" => {
                let s: u64 = value("--interval-s")?
                    .parse()
                    .map_err(|e| format!("--interval-s: {e}"))?;
                interval = Duration::from_secs(s.max(1));
            }
            "--once" => once = true,
            "--help" | "-h" => {
                println!("usage: ftr-top [--addr HOST:PORT] [--interval-s N] [--once]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }

    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut prev: Option<(Instant, u64)> = None;
    loop {
        let frame = scrape(&mut client).map_err(|e| format!("scrape: {e}"))?;
        let now = Instant::now();
        let qps = match prev {
            Some((t, queries)) => {
                let dt = now.duration_since(t).as_secs_f64();
                if dt > 0.0 {
                    (frame.queries.saturating_sub(queries)) as f64 / dt
                } else {
                    0.0
                }
            }
            // First frame: fall back to the lifetime average.
            None => frame.queries as f64 / (frame.uptime_s.max(1)) as f64,
        };
        prev = Some((now, frame.queries));
        if !once {
            // Clear screen, home cursor.
            print!("\x1b[2J\x1b[H");
        }
        render(&frame, addr, qps);
        if once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// One scraped dashboard frame.
struct Frame {
    epoch: u64,
    faults: u64,
    queries: u64,
    cache_hits: u64,
    errors: u64,
    connections: u64,
    uptime_s: u64,
    alerts_active: u64,
    spans_dropped: u64,
    metrics: HashMap<String, f64>,
    spans: Vec<String>,
    lineage: Vec<String>,
}

fn scrape(client: &mut Client) -> std::io::Result<Frame> {
    let stats = client.request("STATS")?;
    let stat = |key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let metrics = parse_prometheus(&client.metrics()?);
    let spans = client.spans(8).unwrap_or_default();
    let lineage = client.lineage(4).unwrap_or_default();
    Ok(Frame {
        epoch: stat("epoch="),
        faults: stat("faults="),
        queries: stat("queries="),
        cache_hits: stat("cache_hits="),
        errors: stat("errors="),
        connections: stat("connections="),
        uptime_s: stat("uptime_s="),
        alerts_active: stat("alerts_active="),
        spans_dropped: stat("spans_dropped="),
        metrics,
        spans,
        lineage,
    })
}

/// Parses the Prometheus text exposition into `series-with-labels →
/// value` (comment lines skipped, label order preserved verbatim).
fn parse_prometheus(text: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((series, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(series.to_string(), v);
            }
        }
    }
    out
}

fn render(frame: &Frame, addr: SocketAddr, qps: f64) {
    let get = |key: &str| frame.metrics.get(key).copied().unwrap_or(0.0);
    let hit_rate = if frame.queries > 0 {
        100.0 * frame.cache_hits as f64 / frame.queries as f64
    } else {
        0.0
    };
    println!(
        "ftr-top — {addr}  up {}s  epoch {}  faults {}  conns {}",
        frame.uptime_s, frame.epoch, frame.faults, frame.connections
    );
    println!(
        "  {qps:>12.0} qps   cache {hit_rate:>5.1}%   errors {}   backlog {:.0}   epoch advances {:.0}",
        frame.errors,
        get("ftr_ingest_backlog"),
        get("ftr_epoch_advances_total"),
    );
    println!();
    println!("  stage        count        p50        p95        p99");
    for stage in STAGES {
        let count = get(&format!("ftr_stage_seconds_count{{stage=\"{stage}\"}}"));
        let q = |q: &str| {
            micros(get(&format!(
                "ftr_stage_seconds{{stage=\"{stage}\",quantile=\"{q}\"}}"
            )))
        };
        println!(
            "  {stage:<10} {count:>7.0} {:>10} {:>10} {:>10}",
            q("0.5"),
            q("0.95"),
            q("0.99")
        );
    }
    println!();
    let slow_threshold = get("ftr_span_slow_threshold_nanos") / 1_000.0;
    println!(
        "  recorder: {:.0} batches, {:.0} slow retained, {} spans dropped, slow > {slow_threshold:.0}us",
        get("ftr_span_batches_total"),
        get("ftr_span_slow_retained_total"),
        frame.spans_dropped,
    );
    println!(
        "  alerts: {} active   {}",
        frame.alerts_active,
        SLOS.map(|slo| {
            let firing = get(&format!("ftr_alert_active{{slo=\"{slo}\"}}")) > 0.0;
            let burn = get(&format!("ftr_slo_burn_milli{{slo=\"{slo}\"}}")) / 1000.0;
            format!(
                "{slo}={} (burn {burn:.2})",
                if firing { "FIRING" } else { "ok" }
            )
        })
        .join("  ")
    );
    println!();
    println!("  recent spans ({} lines):", frame.spans.len());
    for line in frame.spans.iter().rev().take(8).rev() {
        println!("    {line}");
    }
    println!("  lineage ({} records):", frame.lineage.len());
    for line in &frame.lineage {
        println!("    {line}");
    }
}

/// Renders a fractional-seconds exposition value as microseconds.
fn micros(seconds: f64) -> String {
    format!("{:.1}us", seconds * 1e6)
}

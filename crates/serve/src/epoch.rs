//! Epoch-versioned snapshots of the surviving route graph.
//!
//! The server's read path must never block on the write path: route
//! queries are answered against an *epoch* — an immutable, atomically
//! published snapshot of the fault set, the surviving-route reachability
//! state ([`BitMatrix`]) and a per-epoch query cache. Fault ingestion
//! builds the next epoch off to the side (incrementally, via
//! [`ftr_core::EpochState`]) and publishes it with one pointer swap.
//!
//! Readers hold an [`EpochReader`], which caches an [`Arc<Epoch>`] and
//! revalidates it against a single atomic epoch-id load per query: in
//! the steady state (no epoch change since the last query) the read
//! path takes **no lock at all**. Only when the id moves does the reader
//! briefly take the store's read lock to re-clone the current `Arc` —
//! never while an epoch is being *built*, so a slow epoch construction
//! can never stall a query.
//!
//! The query cache lives *inside* the epoch, so cache invalidation is
//! structural: swapping epochs abandons the old cache wholesale, and an
//! answer computed against epoch `k` can only ever be served from epoch
//! `k`.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

use ftr_core::EpochState;
use ftr_graph::{BitMatrix, Node, NodeSet};

/// Recovers a poisoned lock instead of panicking the acquiring thread.
/// Sound here because everything guarded in this module is either a
/// pure function of its epoch (cache entries — recomputing or reusing
/// one is always correct) or an `Arc` slot only ever replaced whole, so
/// a holder that panicked cannot have left a half-written value behind.
fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Shards in the per-epoch query cache (a power of two; bounds writer
/// contention between worker threads warming the same epoch).
const CACHE_SHARDS: usize = 16;

/// Largest node count for which the cache keeps a flat lock-free
/// `n × n` array of ROUTE reply slots (16 bytes per slot; 256 KiB at
/// the cap). Beyond this, ROUTE replies share the hashed shard maps.
const FLAT_ROUTE_MAX_N: usize = 128;

/// One immutable serving snapshot: fault set, surviving-route
/// reachability, lazily measured diameter, and the query cache for
/// answers valid at exactly this epoch.
#[derive(Debug)]
pub struct Epoch {
    id: u64,
    faults: NodeSet,
    live: BitMatrix,
    diameter: OnceLock<Option<u32>>,
    cache: QueryCache,
}

impl Epoch {
    fn new(id: u64, faults: NodeSet, live: BitMatrix) -> Self {
        let n = live.node_count();
        Epoch {
            id,
            faults,
            live,
            diameter: OnceLock::new(),
            cache: QueryCache::new(n),
        }
    }

    /// The epoch id (0 for the genesis epoch, monotonically increasing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The fault set this epoch was built under.
    pub fn faults(&self) -> &NodeSet {
        &self.faults
    }

    /// The surviving route graph: an arc per routed pair with at least
    /// one live route. Faulty *endpoints* remain in the matrix; mask
    /// them with [`Epoch::faults`] as traversals do.
    pub fn live(&self) -> &BitMatrix {
        &self.live
    }

    /// Returns `true` if the route arc `x → y` survives this epoch
    /// (both endpoints healthy and at least one route of the pair
    /// avoids every fault).
    pub fn arc_survives(&self, x: Node, y: Node) -> bool {
        !self.faults.contains(x) && !self.faults.contains(y) && self.live.has(x, y)
    }

    /// The surviving diameter at this epoch (`None` = disconnected),
    /// measured once on first use and memoized for the epoch's lifetime.
    pub fn diameter(&self) -> Option<u32> {
        *self
            .diameter
            .get_or_init(|| self.live.diameter(Some(&self.faults)))
    }

    /// The per-epoch query cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }
}

/// Keys of the per-epoch query cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKey {
    /// A `ROUTE x y` reply.
    Route(Node, Node),
    /// A `TOLERATE d f` verdict — the pruned search is bound-aware, so
    /// both the claimed diameter and the extra-fault budget shape the
    /// answer and the key.
    Tolerate(u32, usize),
}

/// A memo table scoped to one epoch.
///
/// Values are rendered reply fragments; the cache never outlives its
/// epoch, so entries need no versioning or expiry.
///
/// ROUTE replies on small graphs (`n ≤` [`FLAT_ROUTE_MAX_N`]) live in a
/// flat `n × n` array of [`OnceLock`] slots — lock-free and hash-free
/// on both hit and miss, the serve hot path. Everything else (TOLERATE
/// verdicts, ROUTE on large graphs) shares the hashed shard maps.
#[derive(Debug)]
pub struct QueryCache {
    routes: Option<FlatRoutes>,
    shards: Vec<Mutex<HashMap<QueryKey, Arc<str>>>>,
}

/// The flat lock-free ROUTE-reply array (slot `x * n + y`).
#[derive(Debug)]
struct FlatRoutes {
    n: usize,
    slots: Vec<OnceLock<Arc<str>>>,
}

impl FlatRoutes {
    fn slot(&self, x: Node, y: Node) -> Option<&OnceLock<Arc<str>>> {
        let (x, y) = (x as usize, y as usize);
        (x < self.n && y < self.n).then(|| &self.slots[x * self.n + y])
    }

    fn get_or_insert(
        &self,
        slot: &OnceLock<Arc<str>>,
        compute: impl FnOnce() -> String,
    ) -> (Arc<str>, bool) {
        if let Some(v) = slot.get() {
            return (v.clone(), true);
        }
        let mut computed = false;
        let v = slot.get_or_init(|| {
            computed = true;
            Arc::from(compute())
        });
        // A racing thread may have initialized the slot first; either
        // way the caller that ran `compute` reports a miss.
        (v.clone(), !computed)
    }
}

impl QueryCache {
    fn new(n: usize) -> Self {
        let routes = (n <= FLAT_ROUTE_MAX_N).then(|| FlatRoutes {
            n,
            slots: (0..n * n).map(|_| OnceLock::new()).collect(),
        });
        QueryCache {
            routes,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_index(key: &QueryKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % CACHE_SHARDS
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<HashMap<QueryKey, Arc<str>>> {
        &self.shards[Self::shard_index(key)]
    }

    /// Looks `key` up, computing and memoizing it with `compute` on a
    /// miss. Returns the value and whether it was a hit.
    ///
    /// No lock is held while `compute` runs — concurrent misses may
    /// compute twice, and the first insert wins; queries are pure
    /// functions of the epoch, so duplicated work is the only cost.
    pub fn get_or_insert_with(
        &self,
        key: QueryKey,
        compute: impl FnOnce() -> String,
    ) -> (Arc<str>, bool) {
        if let (QueryKey::Route(x, y), Some(flat)) = (key, self.routes.as_ref()) {
            if let Some(slot) = flat.slot(x, y) {
                return flat.get_or_insert(slot, compute);
            }
        }
        let shard = self.shard(&key);
        if let Some(v) = relock(shard.lock()).get(&key) {
            return (v.clone(), true);
        }
        let fresh: Arc<str> = Arc::from(compute());
        let mut map = relock(shard.lock());
        let value = map.entry(key).or_insert_with(|| fresh).clone();
        (value, false)
    }

    /// Resolves a batch of validated ROUTE pairs in one pass, calling
    /// `sink(index, reply, hit)` for each pair in order.
    ///
    /// On the flat path this is lock-free per pair. On the sharded path
    /// the batch takes each touched shard lock at most twice (one probe
    /// pass, one insert pass for the misses) instead of once per query;
    /// `compute` runs outside any lock and the first insert wins.
    pub fn route_many(
        &self,
        pairs: &[(Node, Node)],
        mut compute: impl FnMut(Node, Node) -> String,
        mut sink: impl FnMut(usize, Arc<str>, bool),
    ) {
        if let Some(flat) = &self.routes {
            for (i, &(x, y)) in pairs.iter().enumerate() {
                match flat.slot(x, y) {
                    Some(slot) => {
                        let (v, hit) = flat.get_or_insert(slot, || compute(x, y));
                        sink(i, v, hit);
                    }
                    None => {
                        // Out-of-range pairs are rejected by validation
                        // before they reach the cache; fall back to the
                        // shard maps for safety if one slips through.
                        let (v, hit) =
                            self.get_or_insert_with(QueryKey::Route(x, y), || compute(x, y));
                        sink(i, v, hit);
                    }
                }
            }
            return;
        }
        let shard_of: Vec<u8> = pairs
            .iter()
            .map(|&(x, y)| Self::shard_index(&QueryKey::Route(x, y)) as u8)
            .collect();
        let mut touched = [false; CACHE_SHARDS];
        for &s in &shard_of {
            touched[s as usize] = true;
        }
        let mut resolved: Vec<Option<(Arc<str>, bool)>> = vec![None; pairs.len()];
        for (s, _) in touched.iter().enumerate().filter(|(_, t)| **t) {
            let map = relock(self.shards[s].lock());
            for (i, &(x, y)) in pairs.iter().enumerate() {
                if shard_of[i] as usize == s {
                    if let Some(v) = map.get(&QueryKey::Route(x, y)) {
                        resolved[i] = Some((v.clone(), true));
                    }
                }
            }
        }
        let mut fresh: Vec<Option<Arc<str>>> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| resolved[i].is_none().then(|| Arc::from(compute(x, y))))
            .collect();
        for (s, _) in touched.iter().enumerate().filter(|(_, t)| **t) {
            let mut map = relock(self.shards[s].lock());
            for (i, &(x, y)) in pairs.iter().enumerate() {
                // `fresh[i]` is populated exactly for the pairs the
                // probe pass left unresolved, so taking it doubles as
                // the "still a miss" check.
                if shard_of[i] as usize == s {
                    if let Some(computed) = fresh[i].take() {
                        let value = map
                            .entry(QueryKey::Route(x, y))
                            .or_insert_with(|| computed)
                            .clone();
                        resolved[i] = Some((value, false));
                    }
                }
            }
        }
        for (i, entry) in resolved.into_iter().enumerate() {
            // Both passes together resolve every index; if that ever
            // breaks, answer the pair with an ERR instead of panicking
            // the shard that asked.
            let (v, hit) =
                entry.unwrap_or_else(|| (Arc::from("ERR internal: unresolved batch pair"), false));
            sink(i, v, hit);
        }
    }

    /// Number of cached entries (for stats).
    pub fn len(&self) -> usize {
        let flat = self
            .routes
            .as_ref()
            .map_or(0, |f| f.slots.iter().filter(|s| s.get().is_some()).count());
        flat + self
            .shards
            .iter()
            .map(|s| relock(s.lock()).len())
            .sum::<usize>()
    }

    /// Returns `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct Shared {
    /// The currently published epoch. Writers swap the `Arc` under the
    /// write lock; readers only take the read lock to re-clone after
    /// observing an id change.
    current: RwLock<Arc<Epoch>>,
    /// The published epoch id, stored *after* the swap with `Release`
    /// ordering; a reader that `Acquire`-loads a stale id keeps using
    /// its cached (fully formed) epoch.
    id: AtomicU64,
}

/// The epoch-versioned snapshot store: one writer publishes, any number
/// of [`EpochReader`]s consume without locking in the steady state.
#[derive(Clone)]
pub struct EpochStore {
    shared: Arc<Shared>,
}

impl EpochStore {
    /// A store whose genesis epoch (id 0) snapshots `state` — normally a
    /// fresh [`ftr_core::CompiledRoutes::epoch_state`], but a restarted
    /// server may seed it with faults already applied.
    pub fn new(state: &EpochState) -> Self {
        let genesis = Arc::new(Epoch::new(0, state.faults().clone(), state.live().clone()));
        EpochStore {
            shared: Arc::new(Shared {
                current: RwLock::new(genesis),
                id: AtomicU64::new(0),
            }),
        }
    }

    /// Publishes the next epoch from the ingestor's advanced `state`,
    /// returning its id. The snapshot (two clones) and the pointer swap
    /// happen here; nothing about the epoch is observable until the
    /// swap completes.
    pub fn publish(&self, state: &EpochState) -> u64 {
        let faults = state.faults().clone();
        let live = state.live().clone();
        let mut slot = relock(self.shared.current.write());
        let id = slot.id() + 1;
        *slot = Arc::new(Epoch::new(id, faults, live));
        drop(slot);
        self.shared.id.store(id, Ordering::Release);
        id
    }

    /// The currently published epoch id.
    pub fn current_id(&self) -> u64 {
        self.shared.id.load(Ordering::Acquire)
    }

    /// Clones the current epoch (takes the read lock; use an
    /// [`EpochReader`] on hot paths).
    pub fn load(&self) -> Arc<Epoch> {
        relock(self.shared.current.read()).clone()
    }

    /// A reader handle for one worker thread.
    pub fn reader(&self) -> EpochReader {
        EpochReader {
            cached: self.load(),
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A per-thread view of the store: caches the last seen epoch and
/// revalidates it with one atomic load per call.
pub struct EpochReader {
    shared: Arc<Shared>,
    cached: Arc<Epoch>,
}

impl EpochReader {
    /// The current epoch. Lock-free unless an epoch was published since
    /// this reader's last call.
    pub fn current(&mut self) -> &Arc<Epoch> {
        if self.shared.id.load(Ordering::Acquire) != self.cached.id {
            self.cached = relock(self.shared.current.read()).clone();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{Compile, KernelRouting};
    use ftr_graph::gen;

    fn petersen_store() -> (ftr_core::CompiledRoutes, EpochStore) {
        let g = gen::petersen();
        let engine = KernelRouting::build(&g).unwrap().routing().compile();
        let store = EpochStore::new(&engine.epoch_state());
        (engine, store)
    }

    #[test]
    fn genesis_epoch_is_fault_free() {
        let (_, store) = petersen_store();
        let epoch = store.load();
        assert_eq!(epoch.id(), 0);
        assert!(epoch.faults().is_empty());
        assert!(epoch.diameter().is_some());
    }

    #[test]
    fn publish_bumps_id_and_snapshots_state() {
        let (engine, store) = petersen_store();
        let mut state = engine.epoch_state();
        state.insert(&engine, 4);
        assert_eq!(store.publish(&state), 1);
        state.insert(&engine, 7);
        assert_eq!(store.publish(&state), 2);
        let epoch = store.load();
        assert_eq!(epoch.id(), 2);
        assert_eq!(epoch.faults().iter().collect::<Vec<_>>(), vec![4, 7]);
        assert_eq!(epoch.diameter(), state.diameter());
        // Publishing did not freeze the state: the earlier epoch kept
        // its own snapshot.
        state.remove(&engine, 4);
        assert_eq!(store.load().faults().len(), 2, "epochs are immutable");
    }

    #[test]
    fn reader_tracks_publishes_without_missing_epochs() {
        let (engine, store) = petersen_store();
        let mut reader = store.reader();
        assert_eq!(reader.current().id(), 0);
        let mut state = engine.epoch_state();
        state.insert(&engine, 0);
        store.publish(&state);
        assert_eq!(reader.current().id(), 1);
        assert!(reader.current().faults().contains(0));
        // No publish in between: the same Arc is returned, lock-free.
        let a = Arc::as_ptr(reader.current());
        let b = Arc::as_ptr(reader.current());
        assert_eq!(a, b);
    }

    #[test]
    fn arc_survival_masks_faulty_endpoints() {
        let (engine, store) = petersen_store();
        let mut state = engine.epoch_state();
        state.insert(&engine, 1);
        store.publish(&state);
        let epoch = store.load();
        for y in 0..10 {
            assert!(!epoch.arc_survives(1, y), "faulty source 1 -> {y}");
            assert!(!epoch.arc_survives(y, 1), "faulty target {y} -> 1");
        }
    }

    #[test]
    fn cache_memoizes_within_one_epoch() {
        let (_, store) = petersen_store();
        let epoch = store.load();
        let (v1, hit1) = epoch
            .cache()
            .get_or_insert_with(QueryKey::Route(0, 5), || "answer".to_string());
        let (v2, hit2) = epoch
            .cache()
            .get_or_insert_with(QueryKey::Route(0, 5), || unreachable!("cached"));
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(&*v1, "answer");
        assert_eq!(v1, v2);
        assert_eq!(epoch.cache().len(), 1);
    }
}

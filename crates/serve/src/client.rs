//! A small blocking client for the wire protocol, used by the load
//! generator, the CI smoke test and anyone scripting the daemon.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ftr_graph::Node;

/// One connection to a routing daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`) to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads one reply line (trailing newline
    /// stripped).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an empty read (server gone) is
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Sends every request line in one write, then reads one reply per
    /// request — the pipelined fast path the load generator uses.
    /// Replies are appended to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn pipeline(&mut self, lines: &[String], out: &mut Vec<String>) -> io::Result<()> {
        for line in lines {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        for _ in lines {
            let reply = self.read_reply()?;
            out.push(reply);
        }
        Ok(())
    }

    /// Writes pre-framed request bytes (newline-terminated lines) in
    /// one syscall and reads exactly `replies` reply lines into `out`
    /// (cleared first) — the allocation-free pipelined path: reply
    /// bytes land in `out`'s reused buffer straight from the socket
    /// buffer, no per-line `String`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a server close before all replies
    /// arrive is [`io::ErrorKind::UnexpectedEof`].
    pub fn pipeline_raw(
        &mut self,
        requests: &[u8],
        replies: usize,
        out: &mut ReplyLines,
    ) -> io::Result<()> {
        out.clear();
        self.writer.write_all(requests)?;
        self.writer.flush()?;
        while out.len() < replies {
            let available = self.reader.fill_buf()?;
            if available.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let mut consumed = 0;
            while consumed < available.len() && out.len() < replies {
                match available[consumed..].iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        out.buf
                            .extend_from_slice(&available[consumed..consumed + pos]);
                        out.end_line();
                        consumed += pos + 1;
                    }
                    None => {
                        // Partial line: buffer it and read more.
                        out.buf.extend_from_slice(&available[consumed..]);
                        consumed = available.len();
                    }
                }
            }
            self.reader.consume(consumed);
        }
        Ok(())
    }

    fn read_reply(&mut self) -> io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// `PING`; returns `true` on `OK PONG`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.request("PING")? == "OK PONG")
    }

    /// `EPOCH`; returns `(epoch id, fault count)`.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an unparseable
    /// reply.
    pub fn epoch(&mut self) -> io::Result<(u64, usize)> {
        let reply = self.request("EPOCH")?;
        let parsed = (|| {
            let rest = reply.strip_prefix("OK EPOCH id=")?;
            let (id, faults) = rest.split_once(" faults=")?;
            let count = if faults == "-" {
                0
            } else {
                faults.split(',').count()
            };
            Some((id.parse().ok()?, count))
        })();
        parsed.ok_or_else(|| bad_reply("EPOCH", &reply))
    }

    /// `DIAM`; `None` means the surviving graph is disconnected.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an unparseable
    /// reply.
    pub fn diam(&mut self) -> io::Result<Option<u32>> {
        let reply = self.request("DIAM")?;
        match reply.strip_prefix("OK DIAM ") {
            Some("disconnected") => Ok(None),
            Some(d) => d.parse().map(Some).map_err(|_| bad_reply("DIAM", &reply)),
            None => Err(bad_reply("DIAM", &reply)),
        }
    }

    /// `ROUTE x y`; returns the reply line verbatim (`OK DIRECT …`,
    /// `OK DETOUR …`, `OK UNREACHABLE` or `ERR …`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn route(&mut self, x: Node, y: Node) -> io::Result<String> {
        self.request(&format!("ROUTE {x} {y}"))
    }

    /// `FAIL v`; returns `true` if the event was queued.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn fail(&mut self, v: Node) -> io::Result<bool> {
        Ok(self.request(&format!("FAIL {v}"))? == "OK QUEUED")
    }

    /// `REPAIR v`; returns `true` if the event was queued.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn repair(&mut self, v: Node) -> io::Result<bool> {
        Ok(self.request(&format!("REPAIR {v}"))? == "OK QUEUED")
    }

    /// `TOLERATE d f`; returns `true` if the daemon answered `yes`.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn tolerate(&mut self, d: u32, f: usize) -> io::Result<bool> {
        let reply = self.request(&format!("TOLERATE {d} {f}"))?;
        match reply.strip_prefix("OK TOLERATE ") {
            Some(rest) if rest.starts_with("yes") => Ok(true),
            Some(rest) if rest.starts_with("no") => Ok(false),
            _ => Err(bad_reply("TOLERATE", &reply)),
        }
    }

    /// `AUDIT d f`; returns `true` if the daemon certified the claim
    /// against the pristine snapshot.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn audit(&mut self, d: u32, f: usize) -> io::Result<bool> {
        let reply = self.request(&format!("AUDIT {d} {f}"))?;
        match reply.strip_prefix("OK AUDIT ") {
            Some(rest) if rest.starts_with("holds") => Ok(true),
            Some(rest) if rest.starts_with("violated") => Ok(false),
            _ => Err(bad_reply("AUDIT", &reply)),
        }
    }

    /// `METRICS`; returns the Prometheus text exposition (the body
    /// lines after the `OK METRICS lines=<k>` header, joined with
    /// newlines).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.multi_line("METRICS", "OK METRICS lines=")
    }

    /// `TRACE n`; returns the last `≤ n` trace-journal lines, oldest
    /// first.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn trace(&mut self, n: usize) -> io::Result<Vec<String>> {
        let body = self.multi_line(&format!("TRACE {n}"), "OK TRACE lines=")?;
        Ok(body.lines().map(str::to_string).collect())
    }

    /// `SPANS n`; returns the flight-recorder span lines of the `≤ n`
    /// most recent request batches, oldest batch first.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn spans(&mut self, n: usize) -> io::Result<Vec<String>> {
        let body = self.multi_line(&format!("SPANS {n}"), "OK SPANS lines=")?;
        Ok(body.lines().map(str::to_string).collect())
    }

    /// `SLOW n`; returns the span lines of the `≤ n` most recent
    /// slower-than-p99 batches (the slow-query log), oldest first.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn slow(&mut self, n: usize) -> io::Result<Vec<String>> {
        let body = self.multi_line(&format!("SLOW {n}"), "OK SLOW lines=")?;
        Ok(body.lines().map(str::to_string).collect())
    }

    /// `LINEAGE n`; returns the `≤ n` most recent epoch-lineage journal
    /// records, oldest first.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on an `ERR` or
    /// unparseable reply.
    pub fn lineage(&mut self, n: usize) -> io::Result<Vec<String>> {
        let body = self.multi_line(&format!("LINEAGE {n}"), "OK LINEAGE lines=")?;
        Ok(body.lines().map(str::to_string).collect())
    }

    /// Sends `request` and reads a `lines=<k>`-framed multi-line reply:
    /// the header names how many body lines follow.
    fn multi_line(&mut self, request: &str, header: &str) -> io::Result<String> {
        let reply = self.request(request)?;
        let count: usize = reply
            .strip_prefix(header)
            .and_then(|k| k.parse().ok())
            .ok_or_else(|| bad_reply(request, &reply))?;
        let mut body = String::new();
        for i in 0..count {
            if i > 0 {
                body.push('\n');
            }
            body.push_str(&self.read_reply()?);
        }
        Ok(body)
    }

    /// `QUIT`, consuming the client.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn quit(mut self) -> io::Result<()> {
        let reply = self.request("QUIT")?;
        if reply == "OK BYE" {
            Ok(())
        } else {
            Err(bad_reply("QUIT", &reply))
        }
    }
}

fn bad_reply(what: &str, reply: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected {what} reply {reply:?}"),
    )
}

/// Reply lines from [`Client::pipeline_raw`], stored back-to-back in
/// one reusable buffer (no per-line allocation; `clear` keeps the
/// capacity for the next burst).
#[derive(Default)]
pub struct ReplyLines {
    /// Line bytes, concatenated without separators.
    buf: Vec<u8>,
    /// End offset of each line in `buf` (its start is the previous
    /// line's end).
    ends: Vec<usize>,
}

impl ReplyLines {
    /// An empty buffer.
    pub fn new() -> Self {
        ReplyLines::default()
    }

    /// Number of complete lines held.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether no complete line is held.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Line `i` as raw bytes (newline and any trailing `\r` stripped).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn line(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.buf[start..self.ends[i]]
    }

    /// Iterates the lines in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.line(i))
    }

    /// Drops all lines, keeping the allocations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.ends.clear();
    }

    /// Seals the bytes pushed since the last seal as one line,
    /// stripping a trailing `\r`.
    fn end_line(&mut self) {
        let start = self.ends.last().copied().unwrap_or(0);
        if self.buf.len() > start && self.buf.last() == Some(&b'\r') {
            self.buf.pop();
        }
        self.ends.push(self.buf.len());
    }
}

#[cfg(test)]
mod tests {
    use super::ReplyLines;

    #[test]
    fn reply_lines_accumulate_and_reset() {
        let mut lines = ReplyLines::new();
        lines.buf.extend_from_slice(b"OK PONG\r");
        lines.end_line();
        lines.buf.extend_from_slice(b"OK DIAM 3");
        lines.end_line();
        lines.buf.extend_from_slice(b"");
        lines.end_line();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines.line(0), b"OK PONG");
        assert_eq!(lines.line(1), b"OK DIAM 3");
        assert_eq!(lines.line(2), b"");
        let collected: Vec<&[u8]> = lines.iter().collect();
        assert_eq!(collected, vec![&b"OK PONG"[..], b"OK DIAM 3", b""]);
        lines.clear();
        assert!(lines.is_empty());
    }
}

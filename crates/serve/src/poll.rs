//! A std-only readiness-polling shim over `poll(2)`.
//!
//! The sharded serve loop multiplexes many nonblocking connections on
//! one thread and needs to sleep until *some* socket has bytes (or
//! drained enough to accept more reply bytes). The libc `poll` symbol
//! is declared by hand — no external crate — behind a [`PollSet`] that
//! hides the raw-fd plumbing. On non-unix targets the set degrades to a
//! short sleep with every connection reported ready; the sockets are
//! nonblocking, so spurious readiness costs a `WouldBlock` read and
//! nothing else.

// The one place in the crate allowed to touch FFI: the `poll(2)`
// declaration and its call site below.
#![allow(unsafe_code)]

use std::net::TcpStream;

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub type NfdsT = std::os::raw::c_uint;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }
}

/// A reusable set of connections to wait on.
#[derive(Default)]
pub struct PollSet {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    #[cfg(not(unix))]
    len: usize,
}

impl PollSet {
    pub fn new() -> Self {
        PollSet::default()
    }

    pub fn clear(&mut self) {
        #[cfg(unix)]
        self.fds.clear();
        #[cfg(not(unix))]
        {
            self.len = 0;
        }
    }

    /// Registers `stream` for read readiness (always) and write
    /// readiness (when `want_write`, i.e. the reply buffer has pending
    /// bytes). Index order follows push order.
    pub fn push(&mut self, stream: &TcpStream, want_write: bool) {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let events = sys::POLLIN | if want_write { sys::POLLOUT } else { 0 };
            self.fds.push(sys::PollFd {
                fd: stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        #[cfg(not(unix))]
        {
            let _ = (stream, want_write);
            self.len += 1;
        }
    }

    /// Blocks until some registered socket is ready or `timeout_ms`
    /// elapses. Returns the number of ready sockets (0 on timeout).
    pub fn wait(&mut self, timeout_ms: i32) -> usize {
        #[cfg(unix)]
        {
            if self.fds.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
                return 0;
            }
            let rc = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as sys::NfdsT,
                    timeout_ms,
                )
            };
            rc.max(0) as usize
        }
        #[cfg(not(unix))]
        {
            // Degraded mode: a short sleep bounds the busy-scan rate and
            // every connection is reported ready.
            std::thread::sleep(std::time::Duration::from_millis(1));
            self.len
        }
    }

    /// Whether socket `i` (push order) has bytes to read — errors and
    /// hangups report as readable so the next read surfaces them.
    pub fn readable(&self, i: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[i].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0
        }
        #[cfg(not(unix))]
        {
            let _ = i;
            true
        }
    }

    /// Whether socket `i` (push order) can accept more reply bytes.
    pub fn writable(&self, i: usize) -> bool {
        #[cfg(unix)]
        {
            self.fds[i].revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0
        }
        #[cfg(not(unix))]
        {
            let _ = i;
            true
        }
    }
}

//! # ftr-serve — the online fault-tolerant routing query service
//!
//! The constructions and verifier in `ftr-core` answer *offline*
//! questions: is this routing `(d, f)`-tolerant? This crate is the
//! *online* counterpart the paper's model implies — a fixed routing
//! artifact consulted at query time while faults arrive around it:
//!
//! * [`RoutingSnapshot`] — the immutable serving artifact: network,
//!   route table and compiled engine, loadable from a text format
//!   (graph6 topology + route lines);
//! * [`EpochStore`] / [`Epoch`] — epoch-versioned snapshots of the
//!   surviving route graph, published by one writer with an atomic
//!   swap and read lock-free in the steady state; each epoch carries
//!   its own query cache, so invalidation is structural;
//! * [`EventQueue`] / [`Ingestor`] — batched `FAIL`/`REPAIR` ingestion
//!   applied incrementally through [`ftr_core::EpochState`] (cost
//!   proportional to the routes through the toggled nodes — never a
//!   recompile) with one epoch advance per effective batch;
//! * [`query`] — `ROUTE` (surviving route or shortest detour over
//!   surviving routes), `DIAM`, `TOLERATE` (bound-aware what-if on top
//!   of the current faults, decided by the `ftr-audit` pruned
//!   searcher) and `AUDIT` (fully-accounted pristine-snapshot audit)
//!   as pure functions of one epoch;
//! * [`Server`] / [`Client`] — a line-delimited TCP protocol served by
//!   sharded readiness-polling threads (each shard multiplexes many
//!   nonblocking connections, frame-decodes whole read buffers into
//!   request batches and answers each batch against a single epoch
//!   acquisition), plus the blocking client the `loadgen` bench binary
//!   drives it with;
//! * [`ServeObs`] — the observability surface built on `ftr-obs`:
//!   per-verb counters and latency summaries, per-shard cache and
//!   batch-size series, ingest/epoch timing and a bounded trace
//!   journal, exposed over the `METRICS` (Prometheus text exposition)
//!   and `TRACE n` verbs and recorded shard-locally so the hot path
//!   stays lock-free;
//! * the **flight recorder** — request-scoped span tracing of every
//!   batch (decode → cache → engine → serialize → write, recorded in
//!   the same shard-local accumulators and flushed on the existing
//!   cadence) with tail-based retention of batches slower than the
//!   rolling p99, exposed over `SPANS [n]` and `SLOW [n]`; an epoch
//!   **lineage journal** (parent epoch, applied events, occupancy
//!   delta, apply/publish timing per advance) behind `LINEAGE [n]`;
//!   and a stall **watchdog** ([`SloConfig`]) sampling queue depths
//!   and latency windows into multi-window SLO burn-rate alerts.
//!
//! # Example
//!
//! Serve the kernel routing of the Petersen graph and query it:
//!
//! ```
//! use ftr_core::KernelRouting;
//! use ftr_graph::gen;
//! use ftr_serve::{Client, RoutingSnapshot, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = gen::petersen();
//! let kernel = KernelRouting::build(&g)?;
//! let snapshot = RoutingSnapshot::new(g, kernel.routing().clone())?.into_shared();
//! let server = Server::bind(snapshot, ServerConfig::default())?.spawn();
//!
//! let mut client = Client::connect(server.addr())?;
//! assert!(client.ping()?);
//! assert!(client.route(0, 5)?.starts_with("OK "));
//! client.fail(3)?;                       // enqueue churn
//! client.quit()?;
//! server.shutdown_and_join()?;
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the poll(2) shim in `poll` needs one
// audited `unsafe` block (the syscall FFI); everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod epoch;
pub mod ingest;
pub mod metrics;
mod poll;
pub mod proto;
pub mod query;
mod server;
mod snapshot;
pub mod spec;
mod watchdog;

pub use client::{Client, ReplyLines};
pub use epoch::{Epoch, EpochReader, EpochStore, QueryCache, QueryKey};
pub use ingest::{EventQueue, FaultEvent, IngestReport, Ingestor};
pub use metrics::ServeObs;
pub use query::{EngineWindow, QueryError, RouteReply, ToleranceAnswer};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats, SpawnedServer};
pub use snapshot::{RoutingSnapshot, SnapshotError};
pub use watchdog::SloConfig;

//! The immutable routing artifact a server epoch is built over, plus its
//! on-disk interchange format.
//!
//! The paper's operational model is exactly a snapshot: routes are fixed
//! tables computed ahead of time and *consulted* — never recomputed — at
//! query time while faults arrive around them. [`RoutingSnapshot`]
//! bundles the three read-only pieces every query needs: the network
//! [`Graph`], the [`Routing`] table (for rendering actual node paths),
//! and the bitset-compiled [`CompiledRoutes`] engine (for fault math).
//!
//! The disk format is line-delimited text: a graph6 body for the
//! topology (interchangeable with nauty/geng/NetworkX, parsed by
//! [`ftr_graph::io`]) and one `route` line per stored path. A
//! bidirectional routing writes each path once; loading re-registers
//! both directions.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path as FsPath;
use std::sync::Arc;

use ftr_core::{Compile, CompiledRoutes, Routing, RoutingKind};
use ftr_graph::{io as graph_io, Graph, Node, Path};

/// Magic first line of a snapshot file.
const HEADER: &str = "ftr-snapshot v1";

/// The immutable serving artifact: network, route table and compiled
/// engine. Epochs share one of these through an [`Arc`]; only the fault
/// set changes between epochs.
#[derive(Debug, Clone)]
pub struct RoutingSnapshot {
    graph: Graph,
    routing: Routing,
    engine: CompiledRoutes,
}

impl RoutingSnapshot {
    /// Bundles a validated routing with its network and compiles the
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ftr_core::RoutingError`] if the routing
    /// does not validate against `graph`.
    pub fn new(graph: Graph, routing: Routing) -> Result<Self, ftr_core::RoutingError> {
        routing.validate(&graph)?;
        let engine = routing.compile();
        Ok(RoutingSnapshot {
            graph,
            routing,
            engine,
        })
    }

    /// The network topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The fixed route table (used to render node paths in replies).
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The compiled engine (used for all fault arithmetic).
    pub fn engine(&self) -> &CompiledRoutes {
        &self.engine
    }

    /// Node count of the network.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Writes the snapshot in the `ftr-snapshot v1` text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{HEADER}")?;
        writeln!(w, "graph {}", graph_io::to_graph6(&self.graph))?;
        let kind = match self.routing.kind() {
            RoutingKind::Unidirectional => "unidirectional",
            RoutingKind::Bidirectional => "bidirectional",
        };
        writeln!(w, "kind {kind}")?;
        let mut routes: Vec<Vec<Node>> = self
            .routing
            .routes()
            .filter(|(s, d, _)| self.routing.kind() == RoutingKind::Unidirectional || s < d)
            .map(|(_, _, view)| view.nodes())
            .collect();
        routes.sort_unstable();
        for nodes in routes {
            write!(w, "route")?;
            for v in nodes {
                write!(w, " {v}")?;
            }
            writeln!(w)?;
        }
        writeln!(w, "end")
    }

    /// Parses a snapshot from the `ftr-snapshot v1` text format,
    /// validating every route against the embedded graph.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure or any malformed or
    /// invalid content.
    pub fn read_from(r: impl BufRead) -> Result<Self, SnapshotError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad("empty snapshot"))??;
        if header.trim_end() != HEADER {
            return Err(bad(format!("bad header {header:?}, want {HEADER:?}")));
        }
        let mut graph = None;
        let mut routing: Option<Routing> = None;
        let mut ended = false;
        for line in lines {
            let line = line?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
            match verb {
                "graph" => {
                    let g =
                        graph_io::from_graph6(rest).map_err(|e| bad(format!("graph line: {e}")))?;
                    graph = Some(g);
                }
                "kind" => {
                    let kind = match rest {
                        "unidirectional" => RoutingKind::Unidirectional,
                        "bidirectional" => RoutingKind::Bidirectional,
                        other => return Err(bad(format!("unknown routing kind {other:?}"))),
                    };
                    let g = graph.as_ref().ok_or_else(|| bad("kind before graph"))?;
                    routing = Some(Routing::new(g.node_count(), kind));
                }
                "route" => {
                    let table = routing.as_mut().ok_or_else(|| bad("route before kind"))?;
                    let nodes: Vec<Node> = rest
                        .split_whitespace()
                        .map(|t| t.parse().map_err(|_| bad(format!("bad node {t:?}"))))
                        .collect::<Result<_, _>>()?;
                    let path = Path::new(nodes).map_err(|e| bad(format!("route line: {e}")))?;
                    table
                        .insert(path)
                        .map_err(|e| bad(format!("route line: {e}")))?;
                }
                "end" => {
                    ended = true;
                    break;
                }
                other => return Err(bad(format!("unknown snapshot line {other:?}"))),
            }
        }
        if !ended {
            return Err(bad("snapshot truncated (no `end` line)"));
        }
        let graph = graph.ok_or_else(|| bad("snapshot has no graph"))?;
        let routing = routing.ok_or_else(|| bad("snapshot has no routing"))?;
        RoutingSnapshot::new(graph, routing).map_err(|e| bad(format!("invalid routing: {e}")))
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<FsPath>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure or malformed content.
    pub fn load(path: impl AsRef<FsPath>) -> Result<Self, SnapshotError> {
        let r = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(r)
    }

    /// Wraps the snapshot for sharing across server threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

fn bad(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The content was not a valid `ftr-snapshot v1` document.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::KernelRouting;
    use ftr_graph::gen;

    fn petersen_snapshot() -> RoutingSnapshot {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        RoutingSnapshot::new(g, kernel.routing().clone()).unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let snap = petersen_snapshot();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let loaded = RoutingSnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph(), snap.graph());
        assert_eq!(loaded.routing().route_count(), snap.routing().route_count());
        for (s, d, view) in snap.routing().routes() {
            let other = loaded.routing().route(s, d).expect("pair preserved");
            assert_eq!(other.nodes(), view.nodes(), "route ({s}, {d})");
        }
        // The compiled engines agree arc-for-arc on the fault-free graph.
        assert_eq!(loaded.engine().pair_count(), snap.engine().pair_count());
    }

    #[test]
    fn round_trips_through_file() {
        let snap = petersen_snapshot();
        let path = std::env::temp_dir().join(format!("ftr-snap-test-{}.snap", std::process::id()));
        snap.save(&path).unwrap();
        let loaded = RoutingSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph(), snap.graph());
        assert_eq!(loaded.routing().route_count(), snap.routing().route_count());
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "not a snapshot",
            "ftr-snapshot v1\nkind bidirectional\nend\n", // kind before graph
            "ftr-snapshot v1\ngraph C~\nroute 0 1\nend\n", // route before kind
            "ftr-snapshot v1\ngraph C~\nkind sideways\nend\n",
            "ftr-snapshot v1\ngraph ~~~~~\nkind bidirectional\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\nroute 0 9\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\nroute 0 x\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\n", // truncated
            "ftr-snapshot v1\nmystery line\nend\n",
        ] {
            assert!(
                RoutingSnapshot::read_from(doc.as_bytes()).is_err(),
                "accepted {doc:?}"
            );
        }
    }

    #[test]
    fn validates_routes_against_graph() {
        // "DQc" (the 5-node path 2-0-4-3-1) has no 0-1 edge, so the
        // route line must fail validation against the embedded graph.
        let doc = "ftr-snapshot v1\ngraph DQc\nkind bidirectional\nroute 0 1\nend\n";
        assert!(RoutingSnapshot::read_from(doc.as_bytes()).is_err());
    }
}

//! The immutable routing artifact a server epoch is built over, plus its
//! on-disk interchange format.
//!
//! The paper's operational model is exactly a snapshot: routes are fixed
//! tables computed ahead of time and *consulted* — never recomputed — at
//! query time while faults arrive around them. [`RoutingSnapshot`]
//! bundles the three read-only pieces every query needs: the network
//! [`Graph`], the [`Routing`] table (for rendering actual node paths),
//! and the bitset-compiled [`CompiledRoutes`] engine (for fault math).
//!
//! The disk format is line-delimited text: a graph6 body for the
//! topology (interchangeable with nauty/geng/NetworkX, parsed by
//! [`ftr_graph::io`]) and the route table. Two versions exist:
//!
//! * **v2** (written) — the frozen [`Routing`]'s flat node arena is
//!   serialized in bulk: a `paths` count, the `off` path-offset array
//!   and the `arena` node array, chunked onto fixed-width lines, plus an
//!   optional `scheme` provenance line recording which construction
//!   scheme (and guarantee) built the table. The frozen layout is
//!   canonical, so write → load → write round-trips byte-identically.
//! * **v1** (still read) — one `route` line per stored path; a
//!   bidirectional routing writes each path once and loading
//!   re-registers both directions.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path as FsPath;
use std::sync::Arc;

use ftr_core::{BuiltRouting, Compile, CompiledRoutes, Routing, RoutingKind};
use ftr_graph::{io as graph_io, Graph, Node, Path};

/// Magic first line of a legacy (per-route-line) snapshot file.
const HEADER_V1: &str = "ftr-snapshot v1";

/// Magic first line of a bulk-arena snapshot file.
const HEADER_V2: &str = "ftr-snapshot v2";

/// Values per `off` / `arena` line; fixed so the writer is
/// deterministic and diffs stay reviewable.
const CHUNK: usize = 1024;

/// Which scheme (and guarantee) built a snapshot's routing — recorded
/// by `ftr-served --scheme`, written as the optional `scheme` line of
/// the v2 format and round-tripped verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeTag {
    /// The canonical [`ftr_core::SchemeSpec`] rendering that reproduces
    /// the build (e.g. `circular:k=6`).
    pub spec: String,
    /// The [`ftr_core::TheoremId::token`] backing the guarantee.
    pub theorem: String,
    /// Guaranteed surviving-diameter bound.
    pub diameter: u32,
    /// Guaranteed tolerated fault count.
    pub faults: usize,
}

/// The immutable serving artifact: network, route table and compiled
/// engine. Epochs share one of these through an [`Arc`]; only the fault
/// set changes between epochs.
#[derive(Debug, Clone)]
pub struct RoutingSnapshot {
    graph: Graph,
    routing: Routing,
    engine: CompiledRoutes,
    scheme: Option<SchemeTag>,
}

impl RoutingSnapshot {
    /// Bundles a validated routing with its network and compiles the
    /// engine. The routing is frozen first — a snapshot is by definition
    /// a finished table, and the frozen CSR arena is what the v2 disk
    /// format serializes.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ftr_core::RoutingError`] if the routing
    /// does not validate against `graph`.
    pub fn new(graph: Graph, mut routing: Routing) -> Result<Self, ftr_core::RoutingError> {
        routing.freeze();
        routing.validate(&graph)?;
        let engine = routing.compile();
        Ok(RoutingSnapshot {
            graph,
            routing,
            engine,
            scheme: None,
        })
    }

    /// Builds a snapshot from a scheme-API [`BuiltRouting`], recording
    /// which scheme and guarantee produced it. The snapshot's network is
    /// the routing's network — for the augmentation scheme that is the
    /// *augmented* graph.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] for multiroutings (the snapshot
    /// format stores one route per ordered pair) and invalid routings.
    pub fn from_built(built: BuiltRouting) -> Result<Self, SnapshotError> {
        let (graph, routing, spec, guarantee) = built
            .into_single()
            .map_err(|_| bad("multirouting tables cannot be served as snapshots"))?;
        let mut snapshot = RoutingSnapshot::new(graph, routing)
            .map_err(|e| bad(format!("invalid routing: {e}")))?;
        snapshot.scheme = Some(SchemeTag {
            spec: spec.to_string(),
            theorem: guarantee.theorem.token().to_string(),
            diameter: guarantee.diameter,
            faults: guarantee.faults,
        });
        Ok(snapshot)
    }

    /// The scheme that built this routing, when recorded.
    pub fn scheme(&self) -> Option<&SchemeTag> {
        self.scheme.as_ref()
    }

    /// The network topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The fixed route table (used to render node paths in replies).
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The compiled engine (used for all fault arithmetic).
    pub fn engine(&self) -> &CompiledRoutes {
        &self.engine
    }

    /// Node count of the network.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Writes the snapshot in the `ftr-snapshot v2` bulk-arena format:
    /// the frozen route table's path-offset and node-arena arrays are
    /// emitted directly, in fixed-width chunks. Because the frozen
    /// layout is canonical, the output is byte-identical across write →
    /// load → write round trips.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{HEADER_V2}")?;
        writeln!(w, "graph {}", graph_io::to_graph6(&self.graph))?;
        let kind = match self.routing.kind() {
            RoutingKind::Unidirectional => "unidirectional",
            RoutingKind::Bidirectional => "bidirectional",
        };
        writeln!(w, "kind {kind}")?;
        if let Some(tag) = &self.scheme {
            writeln!(
                w,
                "scheme {} {} {} {}",
                tag.spec, tag.theorem, tag.diameter, tag.faults
            )?;
        }
        // Snapshot routings are frozen by construction; if that ever
        // breaks, fail the write as corrupt data instead of panicking
        // the thread serving the snapshot.
        let (off, arena) = self.routing.arena().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "snapshot routing is not frozen")
        })?;
        writeln!(w, "paths {}", off.len() - 1)?;
        write_chunked(w, "off", off)?;
        write_chunked(w, "arena", arena)?;
        writeln!(w, "end")
    }

    /// Parses a snapshot from either text format (`ftr-snapshot v2`, or
    /// the legacy per-route-line `ftr-snapshot v1`), validating every
    /// route against the embedded graph.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure or any malformed or
    /// invalid content.
    pub fn read_from(r: impl BufRead) -> Result<Self, SnapshotError> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad("empty snapshot"))??;
        match header.trim_end() {
            HEADER_V2 => Self::read_v2(lines),
            HEADER_V1 => Self::read_v1(lines),
            other => Err(bad(format!(
                "bad header {other:?}, want {HEADER_V2:?} or {HEADER_V1:?}"
            ))),
        }
    }

    /// The legacy v1 body: one `route` line per stored path.
    fn read_v1(lines: io::Lines<impl BufRead>) -> Result<Self, SnapshotError> {
        let mut graph = None;
        let mut routing: Option<Routing> = None;
        let mut ended = false;
        for line in lines {
            let line = line?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
            match verb {
                "graph" => {
                    let g =
                        graph_io::from_graph6(rest).map_err(|e| bad(format!("graph line: {e}")))?;
                    graph = Some(g);
                }
                "kind" => {
                    let kind = parse_kind(rest)?;
                    let g = graph.as_ref().ok_or_else(|| bad("kind before graph"))?;
                    routing = Some(Routing::new(g.node_count(), kind));
                }
                "route" => {
                    let table = routing.as_mut().ok_or_else(|| bad("route before kind"))?;
                    let nodes: Vec<Node> = rest
                        .split_whitespace()
                        .map(|t| t.parse().map_err(|_| bad(format!("bad node {t:?}"))))
                        .collect::<Result<_, _>>()?;
                    let path = Path::new(nodes).map_err(|e| bad(format!("route line: {e}")))?;
                    table
                        .insert(path)
                        .map_err(|e| bad(format!("route line: {e}")))?;
                }
                "end" => {
                    ended = true;
                    break;
                }
                other => return Err(bad(format!("unknown snapshot line {other:?}"))),
            }
        }
        if !ended {
            return Err(bad("snapshot truncated (no `end` line)"));
        }
        let graph = graph.ok_or_else(|| bad("snapshot has no graph"))?;
        let routing = routing.ok_or_else(|| bad("snapshot has no routing"))?;
        RoutingSnapshot::new(graph, routing).map_err(|e| bad(format!("invalid routing: {e}")))
    }

    /// The v2 body: `paths` count plus bulk `off` / `arena` arrays and
    /// the optional `scheme` provenance line.
    fn read_v2(lines: io::Lines<impl BufRead>) -> Result<Self, SnapshotError> {
        let mut graph = None;
        let mut kind = None;
        let mut scheme = None;
        let mut paths: Option<usize> = None;
        let mut off: Vec<u32> = Vec::new();
        let mut arena: Vec<Node> = Vec::new();
        let mut ended = false;
        for line in lines {
            let line = line?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
            match verb {
                "graph" => {
                    let g =
                        graph_io::from_graph6(rest).map_err(|e| bad(format!("graph line: {e}")))?;
                    graph = Some(g);
                }
                "kind" => kind = Some(parse_kind(rest)?),
                "scheme" => scheme = Some(parse_scheme_tag(rest)?),
                "paths" => {
                    paths = Some(
                        rest.trim()
                            .parse()
                            .map_err(|_| bad(format!("bad path count {rest:?}")))?,
                    );
                }
                "off" => parse_numbers_into(rest, &mut off)?,
                "arena" => parse_numbers_into(rest, &mut arena)?,
                "end" => {
                    ended = true;
                    break;
                }
                other => return Err(bad(format!("unknown snapshot line {other:?}"))),
            }
        }
        if !ended {
            return Err(bad("snapshot truncated (no `end` line)"));
        }
        let graph = graph.ok_or_else(|| bad("snapshot has no graph"))?;
        let kind = kind.ok_or_else(|| bad("snapshot has no kind"))?;
        let paths = paths.ok_or_else(|| bad("snapshot has no path count"))?;
        if off.len() != paths + 1 {
            return Err(bad(format!(
                "offset array has {} entries, want paths + 1 = {}",
                off.len(),
                paths + 1
            )));
        }
        if off.first() != Some(&0) || off.last().copied() != Some(arena.len() as u32) {
            return Err(bad("offset array does not span the arena"));
        }
        let mut routing = Routing::new(graph.node_count(), kind);
        for p in 0..paths {
            let (a, b) = (off[p] as usize, off[p + 1] as usize);
            if a > b || b > arena.len() {
                return Err(bad(format!("offsets {a}..{b} are not monotone")));
            }
            let path =
                Path::new(arena[a..b].to_vec()).map_err(|e| bad(format!("arena path {p}: {e}")))?;
            routing
                .insert(path)
                .map_err(|e| bad(format!("arena path {p}: {e}")))?;
        }
        let mut snapshot = RoutingSnapshot::new(graph, routing)
            .map_err(|e| bad(format!("invalid routing: {e}")))?;
        snapshot.scheme = scheme;
        Ok(snapshot)
    }

    /// Writes the snapshot to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<FsPath>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on I/O failure or malformed content.
    pub fn load(path: impl AsRef<FsPath>) -> Result<Self, SnapshotError> {
        let r = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(r)
    }

    /// Wraps the snapshot for sharing across server threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

fn bad(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

fn parse_kind(token: &str) -> Result<RoutingKind, SnapshotError> {
    match token {
        "unidirectional" => Ok(RoutingKind::Unidirectional),
        "bidirectional" => Ok(RoutingKind::Bidirectional),
        other => Err(bad(format!("unknown routing kind {other:?}"))),
    }
}

/// Parses the `scheme <spec> <theorem> <d> <f>` provenance line. The
/// spec must re-parse as a [`ftr_core::SchemeSpec`] so a tampered file
/// cannot smuggle an unreproducible provenance claim.
fn parse_scheme_tag(rest: &str) -> Result<SchemeTag, SnapshotError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [spec, theorem, d, f] = parts.as_slice() else {
        return Err(bad(format!("scheme line wants 4 fields, got {rest:?}")));
    };
    spec.parse::<ftr_core::SchemeSpec>()
        .map_err(|e| bad(format!("scheme line: {e}")))?;
    if ftr_core::TheoremId::from_token(theorem).is_none() {
        return Err(bad(format!("scheme line: unknown theorem {theorem:?}")));
    }
    Ok(SchemeTag {
        spec: spec.to_string(),
        theorem: theorem.to_string(),
        diameter: d
            .parse()
            .map_err(|_| bad(format!("bad scheme diameter {d:?}")))?,
        faults: f
            .parse()
            .map_err(|_| bad(format!("bad scheme fault count {f:?}")))?,
    })
}

/// Writes `values` as repeated `<verb> v v v ...` lines of [`CHUNK`]
/// values each.
fn write_chunked(w: &mut impl Write, verb: &str, values: &[u32]) -> io::Result<()> {
    for chunk in values.chunks(CHUNK) {
        write!(w, "{verb}")?;
        for v in chunk {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Appends every whitespace-separated number of `rest` to `out` (the
/// bulk decode path of the v2 loader).
fn parse_numbers_into(rest: &str, out: &mut Vec<u32>) -> Result<(), SnapshotError> {
    for t in rest.split_whitespace() {
        out.push(t.parse().map_err(|_| bad(format!("bad number {t:?}")))?);
    }
    Ok(())
}

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The content was not a valid `ftr-snapshot v1` document.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::KernelRouting;
    use ftr_graph::gen;

    fn petersen_snapshot() -> RoutingSnapshot {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        RoutingSnapshot::new(g, kernel.routing().clone()).unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let snap = petersen_snapshot();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let loaded = RoutingSnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.graph(), snap.graph());
        assert_eq!(loaded.routing().route_count(), snap.routing().route_count());
        for (s, d, view) in snap.routing().routes() {
            let other = loaded.routing().route(s, d).expect("pair preserved");
            assert_eq!(other.nodes(), view.nodes(), "route ({s}, {d})");
        }
        // The compiled engines agree arc-for-arc on the fault-free graph.
        assert_eq!(loaded.engine().pair_count(), snap.engine().pair_count());
    }

    #[test]
    fn round_trips_through_file() {
        let snap = petersen_snapshot();
        let path = std::env::temp_dir().join(format!("ftr-snap-test-{}.snap", std::process::id()));
        snap.save(&path).unwrap();
        let loaded = RoutingSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph(), snap.graph());
        assert_eq!(loaded.routing().route_count(), snap.routing().route_count());
    }

    #[test]
    fn v2_round_trip_is_byte_identical() {
        let snap = petersen_snapshot();
        let mut first = Vec::new();
        snap.write_to(&mut first).unwrap();
        assert!(first.starts_with(b"ftr-snapshot v2\n"));
        let loaded = RoutingSnapshot::read_from(first.as_slice()).unwrap();
        let mut second = Vec::new();
        loaded.write_to(&mut second).unwrap();
        assert_eq!(first, second, "write -> load -> write must not drift");
    }

    #[test]
    fn reads_legacy_v1_documents() {
        // A v1 document equivalent to what the previous writer produced:
        // each stored path once, sorted.
        let snap = petersen_snapshot();
        let mut doc = String::from("ftr-snapshot v1\n");
        doc.push_str(&format!("graph {}\n", graph_io::to_graph6(snap.graph())));
        doc.push_str("kind bidirectional\n");
        let mut routes: Vec<Vec<Node>> = snap
            .routing()
            .routes()
            .filter(|&(s, d, _)| s < d)
            .map(|(_, _, view)| view.nodes())
            .collect();
        routes.sort_unstable();
        for nodes in routes {
            doc.push_str("route");
            for v in nodes {
                doc.push_str(&format!(" {v}"));
            }
            doc.push('\n');
        }
        doc.push_str("end\n");
        let loaded = RoutingSnapshot::read_from(doc.as_bytes()).unwrap();
        assert_eq!(loaded.graph(), snap.graph());
        assert_eq!(loaded.routing().route_count(), snap.routing().route_count());
        for (s, d, view) in snap.routing().routes() {
            let other = loaded.routing().route(s, d).expect("pair preserved");
            assert_eq!(other.nodes(), view.nodes(), "route ({s}, {d})");
        }
        // Re-writing the v1 document upgrades it to the canonical v2
        // form, identical to writing the original snapshot.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        loaded.write_to(&mut a).unwrap();
        snap.write_to(&mut b).unwrap();
        assert_eq!(a, b, "v1 upgrade is canonical");
    }

    #[test]
    fn scheme_tag_round_trips_byte_identically() {
        let g = gen::petersen();
        let built = ftr_core::SchemeRegistry::standard()
            .build_spec(&g, &ftr_core::SchemeSpec::named("kernel"))
            .unwrap();
        let snap = RoutingSnapshot::from_built(built).unwrap();
        let tag = snap.scheme().expect("from_built records the scheme");
        assert_eq!(tag.spec, "kernel");
        assert_eq!(tag.theorem, "thm3");
        let mut first = Vec::new();
        snap.write_to(&mut first).unwrap();
        let text = String::from_utf8(first.clone()).unwrap();
        assert!(
            text.contains("\nscheme kernel thm3 "),
            "scheme line present: {text}"
        );
        let loaded = RoutingSnapshot::read_from(first.as_slice()).unwrap();
        assert_eq!(loaded.scheme(), snap.scheme());
        let mut second = Vec::new();
        loaded.write_to(&mut second).unwrap();
        assert_eq!(first, second, "scheme line survives the round trip");
    }

    #[test]
    fn multirouting_builds_cannot_snapshot() {
        let g = gen::petersen();
        let built = ftr_core::SchemeRegistry::standard()
            .build_spec(&g, &"multi:concentrator".parse().unwrap())
            .unwrap();
        assert!(RoutingSnapshot::from_built(built).is_err());
    }

    #[test]
    fn rejects_malformed_scheme_lines() {
        for line in [
            "scheme kernel thm3 4",         // missing field
            "scheme klein thm3 4 1",        // unknown scheme spec
            "scheme kernel thm99 4 1",      // unknown theorem token
            "scheme kernel thm3 four 1",    // bad diameter
            "scheme kernel thm3 4 -1",      // bad fault count
            "scheme kernel thm3 4 1 extra", // trailing field
        ] {
            let doc = format!(
                "ftr-snapshot v2\ngraph C~\nkind bidirectional\n{line}\n\
                 paths 1\noff 0 2\narena 0 1\nend\n"
            );
            assert!(
                RoutingSnapshot::read_from(doc.as_bytes()).is_err(),
                "accepted {line:?}"
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "not a snapshot",
            "ftr-snapshot v1\nkind bidirectional\nend\n", // kind before graph
            "ftr-snapshot v1\ngraph C~\nroute 0 1\nend\n", // route before kind
            "ftr-snapshot v1\ngraph C~\nkind sideways\nend\n",
            "ftr-snapshot v1\ngraph ~~~~~\nkind bidirectional\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\nroute 0 9\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\nroute 0 x\nend\n",
            "ftr-snapshot v1\ngraph C~\nkind bidirectional\n", // truncated
            "ftr-snapshot v1\nmystery line\nend\n",
            // v2-specific failures:
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\nend\n", // no paths
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 0 2\narena 0 1\n", // truncated
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 2\noff 0 2\narena 0 1\nend\n", // off too short
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 0 3\narena 0 1\nend\n", // off beyond arena
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 1 2\narena 0 1\nend\n", // off not from 0
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 0 2\narena 0 x\nend\n", // bad number
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 0 2\narena 0 9\nend\n", // node out of range
            "ftr-snapshot v2\ngraph C~\nkind bidirectional\npaths 1\noff 0 1\narena 0\nend\n", // single-node path
        ] {
            assert!(
                RoutingSnapshot::read_from(doc.as_bytes()).is_err(),
                "accepted {doc:?}"
            );
        }
    }

    #[test]
    fn validates_routes_against_graph() {
        // "DQc" (the 5-node path 2-0-4-3-1) has no 0-1 edge, so the
        // route must fail validation against the embedded graph in both
        // formats.
        let v1 = "ftr-snapshot v1\ngraph DQc\nkind bidirectional\nroute 0 1\nend\n";
        assert!(RoutingSnapshot::read_from(v1.as_bytes()).is_err());
        let v2 =
            "ftr-snapshot v2\ngraph DQc\nkind bidirectional\npaths 1\noff 0 2\narena 0 1\nend\n";
        assert!(RoutingSnapshot::read_from(v2.as_bytes()).is_err());
    }
}

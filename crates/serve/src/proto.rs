//! The line-delimited wire protocol.
//!
//! One request per line, one reply line per request, UTF-8, tokens
//! separated by spaces. Replies start with `OK` or `ERR`. Verbs are
//! case-insensitive; node ids are decimal.
//!
//! | Request | Reply |
//! |---|---|
//! | `PING` | `OK PONG` |
//! | `EPOCH` | `OK EPOCH id=<e> faults=<v,…|->` |
//! | `DIAM` | `OK DIAM <d>` or `OK DIAM disconnected` |
//! | `ROUTE x y` | `OK DIRECT <v …>` / `OK DETOUR <v …>` / `OK UNREACHABLE` |
//! | `TOLERATE d f` | `OK TOLERATE yes sets=<k> pruned=<p>` or `OK TOLERATE no found=<w|disconnect> witness=<v,…> sets=<k>` |
//! | `AUDIT d f` | `OK AUDIT holds visited=<k> pruned=<p> covered=<c> space=<s>` or `OK AUDIT violated found=<w|disconnect> witness=<v,…> visited=<k>` |
//! | `SCHEMES` | `OK SCHEMES <name>=(d,f)/<thm>|<name>=- …` |
//! | `PLAN d f` | `OK PLAN scheme=<spec> theorem=<thm> d=<d> f=<f> routes=<r>` or `OK PLAN none` |
//! | `FAIL v` | `OK QUEUED` |
//! | `REPAIR v` | `OK QUEUED` |
//! | `STATS` | `OK STATS epoch=… queries=… cache_hits=… …` |
//! | `METRICS` | `OK METRICS lines=<k>` + `k` exposition lines |
//! | `TRACE n` | `OK TRACE lines=<k>` + `k` journal lines (`k ≤ n`) |
//! | `SPANS [n]` | `OK SPANS lines=<k>` + one line per span of the newest `n` batch trees |
//! | `SLOW [n]` | `OK SLOW lines=<k>` + one line per span of the newest `n` tail-retained slow batches |
//! | `LINEAGE [n]` | `OK LINEAGE lines=<k>` + the newest `k ≤ n` epoch-advance records, oldest first |
//! | `QUIT` | `OK BYE` (connection closes) |
//!
//! `SCHEMES` reports each registry scheme's applicability on the served
//! network (the guarantee it would offer, or `-`). `PLAN d f` runs the
//! scheme planner against the served network for a `(d, f)` target and
//! reports which construction it would pick — a dry run; the serving
//! snapshot is never swapped.
//!
//! `TOLERATE d f` asks whether the *current epoch* tolerates `f` more
//! failures within diameter `d`, answered by the `ftr-audit` pruned
//! searcher (a `no` carries the witness). `AUDIT d f` audits the claim
//! against the *pristine* snapshot with full searched-space accounting
//! — the online counterpart of an `ftr-audit` certificate run. Both
//! reject over-budget requests with a structured `ERR` naming the
//! worst-case search size.
//!
//! `METRICS`, `TRACE n` and the flight-recorder verbs (`SPANS`, `SLOW`,
//! `LINEAGE`) are the multi-line replies: the header carries
//! `lines=<k>` so clients know exactly how many body lines follow (the
//! Prometheus text exposition for `METRICS`, the newest `k ≤ n`
//! trace-journal events, oldest first, for `TRACE`). Pipelining stays
//! intact — the header plus body count as the one reply for the request
//! line.
//!
//! `SPANS [n]` returns the span trees of the newest `n` (default
//! [`SPANS_DEFAULT`]) dispatch batches, one line per span
//! (`batch=… shard=… epoch=… reqs=… span=… parent=… stage=…
//! start_ns=… end_ns=… dur_ns=…`), batches oldest first, spans in
//! start order. `SLOW [n]` has the same shape but draws from the
//! tail-retained slow-query log (batches whose total exceeded the
//! rolling p99). `LINEAGE [n]` returns the newest `n` (default
//! [`LINEAGE_DEFAULT`]) epoch-advance records
//! (`epoch=… parent=… events=… applied=… faults=… delta=… apply_ns=…
//! publish_ns=… ts_ns=…`). All three take their count argument
//! optionally; a bare verb uses the default.
//!
//! Anything else gets `ERR <reason>` and the connection stays open.

use ftr_graph::Node;

use crate::query::RouteReply;

/// Batch count a bare `SPANS` (or `SLOW`) requests.
pub const SPANS_DEFAULT: usize = 8;
/// Record count a bare `LINEAGE` requests.
pub const LINEAGE_DEFAULT: usize = 16;

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Current epoch id and fault set.
    Epoch,
    /// Surviving diameter at the current epoch.
    Diam,
    /// Surviving route (or detour) for an ordered pair.
    Route {
        /// Source node.
        x: Node,
        /// Destination node.
        y: Node,
    },
    /// Does the current epoch tolerate `faults` more failures within
    /// diameter `diameter`?
    Tolerate {
        /// Claimed diameter bound.
        diameter: u32,
        /// Extra fault budget.
        faults: usize,
    },
    /// Audit a `(diameter, faults)` claim against the pristine snapshot
    /// (full searched-space accounting, current faults ignored).
    Audit {
        /// Claimed diameter bound.
        diameter: u32,
        /// Fault budget.
        faults: usize,
    },
    /// Per-scheme applicability of the served network.
    Schemes,
    /// Which scheme the planner would pick for a `(diameter, faults)`
    /// target on the served network (a dry run).
    Plan {
        /// Surviving-diameter target.
        diameter: u32,
        /// Fault budget the guarantee must cover.
        faults: usize,
    },
    /// Enqueue a node failure.
    Fail(Node),
    /// Enqueue a node repair.
    Repair(Node),
    /// Server counters.
    Stats,
    /// Prometheus-style text exposition of every registered metric.
    Metrics,
    /// The last `n` trace-journal events, oldest first.
    Trace(usize),
    /// Span trees of the newest `n` dispatch batches, oldest first.
    Spans(usize),
    /// Span trees of the newest `n` tail-retained slow batches.
    Slow(usize),
    /// The newest `n` epoch-advance lineage records, oldest first.
    Lineage(usize),
    /// Close this connection.
    Quit,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable reason, rendered by the server as
/// `ERR <reason>`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    // Fast path for the overwhelmingly common canonical form
    // `ROUTE <x> <y>` (exactly one space, uppercase, decimal) — skips
    // the tokenizer and verb table. Anything else (lowercase, extra
    // whitespace, huge numbers) falls through to the general parser,
    // which accepts or rejects it exactly as before.
    if let Some(route) = parse_route_fast(line.as_bytes()) {
        return Ok(route);
    }
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or("empty request")?;
    // Case-insensitive verb match without allocating an uppercased
    // copy — the parse sits on the per-request hot path.
    let canon = |v: &str| -> &'static str {
        for known in [
            "PING", "EPOCH", "DIAM", "STATS", "QUIT", "ROUTE", "TOLERATE", "AUDIT", "SCHEMES",
            "PLAN", "FAIL", "REPAIR", "METRICS", "TRACE", "SPANS", "SLOW", "LINEAGE",
        ] {
            if v.eq_ignore_ascii_case(known) {
                return known;
            }
        }
        ""
    };
    let verb = match canon(verb) {
        "" => return Err(format!("unknown request {:?}", verb.to_ascii_uppercase())),
        known => known,
    };
    let mut arg = |name: &str| -> Result<&str, String> {
        tokens.next().ok_or(format!("{verb} needs <{name}>"))
    };
    let parsed = match verb {
        "PING" => Request::Ping,
        "EPOCH" => Request::Epoch,
        "DIAM" => Request::Diam,
        "STATS" => Request::Stats,
        "QUIT" => Request::Quit,
        "ROUTE" => Request::Route {
            x: parse_node(arg("x")?)?,
            y: parse_node(arg("y")?)?,
        },
        "TOLERATE" => Request::Tolerate {
            diameter: parse_num(arg("d")?, "diameter")?,
            faults: parse_num(arg("f")?, "fault count")?,
        },
        "AUDIT" => Request::Audit {
            diameter: parse_num(arg("d")?, "diameter")?,
            faults: parse_num(arg("f")?, "fault count")?,
        },
        "SCHEMES" => Request::Schemes,
        "PLAN" => Request::Plan {
            diameter: parse_num(arg("d")?, "diameter")?,
            faults: parse_num(arg("f")?, "fault count")?,
        },
        "FAIL" => Request::Fail(parse_node(arg("v")?)?),
        "REPAIR" => Request::Repair(parse_node(arg("v")?)?),
        "METRICS" => Request::Metrics,
        "TRACE" => Request::Trace(parse_num(arg("n")?, "event count")?),
        // The flight-recorder verbs take their count optionally; a
        // trailing token after a supplied count is still caught below.
        "SPANS" => Request::Spans(match tokens.next() {
            Some(token) => parse_num(token, "batch count")?,
            None => SPANS_DEFAULT,
        }),
        "SLOW" => Request::Slow(match tokens.next() {
            Some(token) => parse_num(token, "batch count")?,
            None => SPANS_DEFAULT,
        }),
        "LINEAGE" => Request::Lineage(match tokens.next() {
            Some(token) => parse_num(token, "record count")?,
            None => LINEAGE_DEFAULT,
        }),
        // The canon table above covers every verb; a future mismatch
        // between the two lists degrades to an ERR reply, not a panic.
        other => return Err(format!("unknown request {other:?}")),
    };
    match tokens.next() {
        Some(extra) => Err(format!("{verb}: unexpected trailing token {extra:?}")),
        None => Ok(parsed),
    }
}

#[inline]
fn parse_route_fast(line: &[u8]) -> Option<Request> {
    let rest = line.strip_prefix(b"ROUTE ")?;
    let sp = rest.iter().position(|&c| c == b' ')?;
    let x = parse_dec(&rest[..sp])?;
    let y = parse_dec(&rest[sp + 1..])?;
    Some(Request::Route { x, y })
}

/// Overflow-free decimal parse of a short digit run; anything longer
/// (or non-digit) defers to the general path.
#[inline]
fn parse_dec(digits: &[u8]) -> Option<Node> {
    if digits.is_empty() || digits.len() > 9 {
        return None;
    }
    let mut v: Node = 0;
    for &c in digits {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v * 10 + Node::from(c - b'0');
    }
    Some(v)
}

fn parse_node(token: &str) -> Result<Node, String> {
    token.parse().map_err(|_| format!("bad node id {token:?}"))
}

fn parse_num<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, String> {
    token.parse().map_err(|_| format!("bad {what} {token:?}"))
}

/// Renders a [`RouteReply`] as its `OK …` line (without newline).
pub fn render_route(reply: &RouteReply) -> String {
    match reply {
        RouteReply::Direct(nodes) => format!("OK DIRECT {}", join(nodes)),
        RouteReply::Detour(nodes) => format!("OK DETOUR {}", join(nodes)),
        RouteReply::Unreachable => "OK UNREACHABLE".to_string(),
    }
}

/// Renders a diameter measurement (`None` = disconnected).
pub fn render_diameter(d: Option<u32>) -> String {
    match d {
        Some(d) => format!("OK DIAM {d}"),
        None => "OK DIAM disconnected".to_string(),
    }
}

fn join(nodes: &[Node]) -> String {
    let rendered: Vec<String> = nodes.iter().map(|v| v.to_string()).collect();
    rendered.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("  epoch "), Ok(Request::Epoch));
        assert_eq!(parse_request("Diam"), Ok(Request::Diam));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
        assert_eq!(
            parse_request("ROUTE 3 17"),
            Ok(Request::Route { x: 3, y: 17 })
        );
        assert_eq!(
            parse_request("tolerate 6 2"),
            Ok(Request::Tolerate {
                diameter: 6,
                faults: 2
            })
        );
        assert_eq!(
            parse_request("audit 4 2"),
            Ok(Request::Audit {
                diameter: 4,
                faults: 2
            })
        );
        assert_eq!(parse_request("FAIL 9"), Ok(Request::Fail(9)));
        assert_eq!(parse_request("metrics"), Ok(Request::Metrics));
        assert_eq!(parse_request("TRACE 32"), Ok(Request::Trace(32)));
        assert_eq!(parse_request("SPANS"), Ok(Request::Spans(SPANS_DEFAULT)));
        assert_eq!(parse_request("spans 3"), Ok(Request::Spans(3)));
        assert_eq!(parse_request("SLOW"), Ok(Request::Slow(SPANS_DEFAULT)));
        assert_eq!(parse_request("Slow 12"), Ok(Request::Slow(12)));
        assert_eq!(
            parse_request("LINEAGE"),
            Ok(Request::Lineage(LINEAGE_DEFAULT))
        );
        assert_eq!(parse_request("lineage 5"), Ok(Request::Lineage(5)));
        assert_eq!(parse_request("repair 0"), Ok(Request::Repair(0)));
        assert_eq!(parse_request("schemes"), Ok(Request::Schemes));
        assert_eq!(
            parse_request("PLAN 4 2"),
            Ok(Request::Plan {
                diameter: 4,
                faults: 2
            })
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "   ",
            "FROB",
            "ROUTE",
            "ROUTE 1",
            "ROUTE 1 2 3",
            "ROUTE one two",
            "ROUTE -1 2",
            "TOLERATE 6",
            "TOLERATE x 2",
            "AUDIT",
            "AUDIT 4",
            "AUDIT 4 2 1",
            "PLAN",
            "PLAN 4",
            "PLAN x 2",
            "PLAN 4 2 9",
            "SCHEMES now",
            "METRICS all",
            "TRACE",
            "TRACE x",
            "TRACE 5 5",
            "SPANS x",
            "SPANS 5 5",
            "SLOW -1",
            "SLOW 2 2",
            "LINEAGE x",
            "LINEAGE 4 4",
            "FAIL",
            "FAIL 1 2",
            "PING PONG",
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn renders_replies() {
        assert_eq!(
            render_route(&RouteReply::Direct(vec![0, 4, 7])),
            "OK DIRECT 0 4 7"
        );
        assert_eq!(
            render_route(&RouteReply::Detour(vec![1, 2])),
            "OK DETOUR 1 2"
        );
        assert_eq!(render_route(&RouteReply::Unreachable), "OK UNREACHABLE");
        assert_eq!(render_diameter(Some(3)), "OK DIAM 3");
        assert_eq!(render_diameter(None), "OK DIAM disconnected");
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates-registry access, so this
//! workspace-local crate implements the subset of the `proptest` API the
//! repository's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_shuffle`, integer-range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`], [`Just`],
//! [`any`], weighted [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from upstream: no shrinking (a failure reports the test
//! name, case index and seed, which reproduce the input exactly since
//! generation is deterministic), and case seeds are derived from the test
//! name rather than an entropy source, so runs are stable by default.
//! Case count defaults to 256 and can be overridden with the
//! `PROPTEST_CASES` environment variable or `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies. Re-exported so generated code and
/// helper functions can name it.
pub type TestRng = SmallRng;

// ------------------------------------------------------------------ errors

/// Why a test case did not pass: a genuine failure or a `prop_assume`
/// rejection.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!`; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

// ------------------------------------------------------------------ config

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------- strategy

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated `Vec`s (only available when `Value = Vec<T>`).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut items = self.inner.generate(rng);
        for i in (1..items.len()).rev() {
            let j = rng.gen_range(0..=i);
            items.swap(i, j);
        }
        items
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Boxes a strategy for [`OneOf`]; lets `prop_oneof!` unify arm types by
/// inference.
pub fn boxed<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

// -------------------------------------------------------------- collection

/// Collection strategies (`prop::collection` in upstream).
pub mod collection {
    use super::*;

    /// A `Vec` of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of `element` values whose size is drawn from `size`
    /// (smaller when the element domain cannot fill it).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut set = BTreeSet::new();
            // Bounded attempts: small element domains cannot reach every
            // target size.
            for _ in 0..(target * 10 + 10) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

// ------------------------------------------------------------------ runner

/// Runs `config.cases` accepted cases of `body`, panicking on the first
/// failure with a reproducible seed. Used by the [`proptest!`] macro.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    let base_seed = hasher.finish();

    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let mut last_reject = String::new();
    let max_attempts = config.cases as u64 * 25 + 100;
    while accepted < config.cases && attempts < max_attempts {
        let seed = base_seed.wrapping_add(attempts.wrapping_mul(0x9e3779b97f4a7c15));
        let mut rng = TestRng::seed_from_u64(seed);
        attempts += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => last_reject = why,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest {name}: case {accepted} (attempt {attempts}, seed {seed:#x}) failed: {msg}"
            ),
        }
    }
    // Mirror upstream's too-many-rejects abort: exhausting the attempt
    // budget must not read as a green test.
    assert!(
        accepted >= config.cases,
        "proptest {name}: only {accepted}/{} cases accepted after {attempts} attempts \
         (last prop_assume rejection: {last_reject:?}); loosen the assumptions or the strategy",
        config.cases
    );
}

// ------------------------------------------------------------------ macros

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                $( let $arg = $crate::Strategy::generate(&($strat), __proptest_rng); )+
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`: {}",
                        __l,
                        __r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors upstream's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn vec_length_obeys_size(items in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_is_deduped(set in prop::collection::btree_set(0u32..100, 0..20)) {
            prop_assert!(set.len() < 20);
        }

        #[test]
        fn shuffle_permutes(nodes in Just(vec![1u32, 2, 3, 4, 5]).prop_shuffle()) {
            let sorted: BTreeSet<u32> = nodes.iter().copied().collect();
            prop_assert_eq!(sorted.len(), 5);
        }

        #[test]
        fn oneof_honors_weights(v in prop_oneof![4 => 0u32..1, 1 => 1u32..2]) {
            prop_assert!(v < 2);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 10u64..20).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 >= 10 && pair.1 < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_and_assume(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0, "even after assume, got {}", v);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates-registry access, so the
//! workspace's benches link against this minimal harness instead of the
//! real `criterion`. It keeps the same source-level API
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! [`BenchmarkId`]) and reports median / min / max wall-clock times per
//! benchmark. There is no statistical analysis, warm-up modeling, or
//! HTML report — just honest, low-overhead timing suitable for
//! before/after comparisons.
//!
//! Sample count defaults to 20 per benchmark (`sample_size` caps it);
//! each sample auto-scales its iteration count so one sample takes at
//! least ~10 ms, bounding timer-resolution error.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n=== group {name} ===");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named benchmark identifier with a parameter, e.g. `diameter/Q6`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (parity with the upstream API).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!("{}/{id}: no samples recorded", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        eprintln!(
            "{}/{id}: median {} (min {}, max {}, {} samples)",
            self.name,
            fmt_duration(median),
            fmt_duration(samples[0]),
            fmt_duration(*samples.last().expect("non-empty")),
            samples.len()
        );
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up plus iteration-count calibration: target >= ~10 ms per
        // sample so short routines are not dominated by timer overhead.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters *= 2;
        };
        // Budget the measurement phase to ~1 s per benchmark.
        let budget = Duration::from_secs(1);
        let mut spent = Duration::ZERO;
        for _ in 0..self.sample_size {
            if spent > budget {
                break;
            }
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            spent += elapsed;
            self.samples.push(elapsed / iters as u32);
        }
        let _ = per_iter;
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a bench harness function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export parity: upstream's `black_box` (benches here import
/// `std::hint::black_box` directly, but keep the symbol available).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0, "routine must actually run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("diameter", "Q6").to_string(),
            "diameter/Q6"
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}

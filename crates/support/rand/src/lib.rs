//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate provides the small, API-compatible subset of
//! `rand` 0.8 that the repository uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same construction `rand`'s `SmallRng` uses on
//! 64-bit platforms — so it is fast, statistically solid for simulation
//! work, and fully deterministic per seed.
//!
//! All experiment seeds recorded before this stand-in was introduced are
//! void: stream values differ from upstream `rand`. Every caller in the
//! workspace derives its data from an explicit seed, so reproducibility
//! within the repository is unaffected.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (the one constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sample drawn uniformly from a range; implemented for the integer
/// range types the workspace samples from.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut rngs::SmallRng) -> T;
}

/// The sampling interface: uniform ranges, Bernoulli draws and full-width
/// integers.
pub trait Rng {
    /// A uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: AsSmallRng,
    {
        range.sample(self.as_small_rng())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Access to the concrete generator; lets the `Rng` trait methods stay
/// object-free while `SampleRange` dispatches on the output type.
pub trait AsSmallRng {
    /// The concrete generator behind this `Rng`.
    fn as_small_rng(&mut self) -> &mut rngs::SmallRng;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_raw() as $t;
                }
                start + (rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{AsSmallRng, Rng, SeedableRng};

    /// xoshiro256++ — the small, fast generator used for all seeded
    /// sampling in the workspace.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw 64-bit output function.
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `0..bound` (Lemire-style rejection keeps the
        /// distribution exact).
        pub(crate) fn bounded_u64(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_raw();
                let hi = ((x as u128 * bound as u128) >> 64) as u64;
                let lo = x.wrapping_mul(bound);
                if lo >= threshold {
                    return hi;
                }
            }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl AsSmallRng for SmallRng {
        fn as_small_rng(&mut self) -> &mut SmallRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn in 1000 tries");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} / 10000");
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates-registry access, so the workspace's
//! optional `serde` feature is wired against this marker crate instead of
//! the real one: [`Serialize`] and [`Deserialize`] are empty marker
//! traits, and the re-exported derives emit empty impls. This keeps the
//! feature compiling and the `serde_feature` trait-bound tests meaningful
//! (they verify which types are annotated), while performing no actual
//! serialization. Swapping in the real `serde = { version = "1",
//! features = ["derive"] }` requires no source changes.

#![forbid(unsafe_code)]

pub use ftr_serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

//! No-op `Serialize` / `Deserialize` derives for the `ftr-serde`
//! stand-in. Each derive emits an empty marker-trait impl for the
//! annotated type, which is exactly what the workspace's
//! `serde_feature` compile-time tests check. Generic types are not
//! supported — the workspace derives only on concrete types.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct` / `enum` / `union` item,
/// skipping attributes and visibility.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip `#[...]` attributes: consume the bracket group after `#`.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        return name.to_string();
                    }
                    panic!("ftr-serde-derive: item has no name");
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("ftr-serde-derive: expected a struct, enum or union");
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

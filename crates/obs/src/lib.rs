//! Workspace-wide observability: metrics, histograms and event tracing.
//!
//! `ftr-obs` is the std-only telemetry layer shared by the serving
//! stack, the audit searcher and the load generator. It provides:
//!
//! - [`Histogram`] — the log-linear latency histogram (~6% relative
//!   error, constant-time record, mergeable across threads) promoted
//!   here from the bench crate so loadgen and the server share one
//!   implementation. Buckets grow lazily, so mostly-empty histograms
//!   stay small and [`Histogram::merge`] accepts ragged bucket arrays.
//! - [`Counter`] / [`Gauge`] / [`AtomicHistogram`] — lock-free shared
//!   metric cells built on relaxed [`std::sync::atomic`] operations.
//!   The intended hot-path discipline is *per-shard local accumulation
//!   with bulk flush*: worker threads record into a plain [`Histogram`]
//!   and plain `u64` counters, then fold them into the shared atomics
//!   every few batches (see `ftr_serve`'s shard loop).
//! - [`Registry`] — a named collection of metric families with
//!   Prometheus-style text exposition ([`Registry::render_prometheus`])
//!   and flat JSON snapshots ([`Registry::render_json`]). Registration
//!   takes a lock; reads and writes of the registered cells do not.
//! - [`TraceRing`] — a bounded ring-buffer journal of structured
//!   [`TraceEvent`]s tagged with epoch ids and monotonic timestamps
//!   (see [`monotonic_nanos`]), drained by the `TRACE n` protocol verb.
//! - [`SpanRecorder`] / [`SpanStore`] — the flight recorder: per-shard
//!   lock-free span buffers capturing each request batch's stage
//!   breakdown (decode → cache → engine → serialize → write), bulk
//!   flushed into a shared store with tail-based retention of any batch
//!   slower than the rolling p99 (the `SPANS`/`SLOW` verbs).
//! - [`LineageJournal`] — a bounded journal of epoch advances (parent
//!   id, applied events, occupancy delta, apply/publish timing) behind
//!   the `LINEAGE` verb.
//! - [`SloAlert`] — multi-window SLO burn-rate tracking for the stall
//!   watchdog: short-window burn detects fast, long-window burn
//!   suppresses blips.
//!
//! Nothing in this crate blocks on the metric hot path: counters and
//! gauges are single relaxed atomic ops, and histogram recording is a
//! handful of them. The registry and trace ring take short mutexes only
//! on registration, exposition and event push — all of which happen at
//! epoch/batch/scrape rate, not query rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod lineage;
mod metrics;
mod registry;
mod slo;
mod span;
mod trace;

pub use hist::Histogram;
pub use lineage::{LineageJournal, LineageRecord};
pub use metrics::{AtomicHistogram, Counter, Gauge};
pub use registry::{Registry, Unit};
pub use slo::{AlertTransition, BurnRate, SloAlert};
pub use span::{BatchSpans, Span, SpanId, SpanRecorder, SpanStore, SLOW_MIN_SAMPLES};
pub use trace::{monotonic_nanos, TraceEvent, TraceRing};

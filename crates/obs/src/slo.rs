//! Multi-window SLO burn-rate tracking for the stall watchdog.
//!
//! A burn rate is `observed badness / allowed badness` over a window:
//! 1.0 means the SLO budget is being consumed exactly at the allowed
//! rate, 2.0 means twice as fast. Following the multi-window pattern,
//! an alert fires only when both the *short* window (the most recent
//! sample) and the *long* window (a trailing average) burn at ≥ 1 —
//! the short window gives fast detection, the long window suppresses
//! one-sample blips.

use std::collections::VecDeque;

/// Burn rates for one SLO at one sampling instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRate {
    /// Burn over the most recent sampling window.
    pub short: f64,
    /// Burn averaged over the trailing long window.
    pub long: f64,
}

impl BurnRate {
    /// Whether this reading is past the multi-window alert threshold.
    pub fn firing(&self) -> bool {
        self.short >= 1.0 && self.long >= 1.0
    }
}

/// Alert state transition reported by [`SloAlert::observe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertTransition {
    /// The alert just became active.
    Fired,
    /// The alert just cleared.
    Cleared,
}

/// Tracks one SLO's burn across short and long windows and holds the
/// alert's active/inactive state.
#[derive(Debug)]
pub struct SloAlert {
    window: VecDeque<f64>,
    long_windows: usize,
    active: bool,
    last: BurnRate,
}

impl SloAlert {
    /// A tracker averaging the long window over `long_windows` samples.
    pub fn new(long_windows: usize) -> Self {
        SloAlert {
            window: VecDeque::new(),
            long_windows: long_windows.max(1),
            active: false,
            last: BurnRate {
                short: 0.0,
                long: 0.0,
            },
        }
    }

    /// Feeds one sampling window's burn rate; returns the multi-window
    /// rates and, when the alert flipped state, the transition.
    pub fn observe(&mut self, burn: f64) -> (BurnRate, Option<AlertTransition>) {
        let burn = if burn.is_finite() { burn.max(0.0) } else { 0.0 };
        if self.window.len() >= self.long_windows {
            self.window.pop_front();
        }
        self.window.push_back(burn);
        let long = self.window.iter().sum::<f64>() / self.window.len() as f64;
        let rate = BurnRate { short: burn, long };
        self.last = rate;
        let transition = match (self.active, rate.firing()) {
            (false, true) => {
                self.active = true;
                Some(AlertTransition::Fired)
            }
            (true, false) => {
                self.active = false;
                Some(AlertTransition::Cleared)
            }
            _ => None,
        };
        (rate, transition)
    }

    /// Whether the alert is currently active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The most recent burn rates.
    pub fn last(&self) -> BurnRate {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_spike_does_not_fire() {
        let mut alert = SloAlert::new(4);
        for _ in 0..4 {
            alert.observe(0.0);
        }
        let (rate, transition) = alert.observe(3.0);
        assert_eq!(rate.short, 3.0);
        assert!(rate.long < 1.0, "one spike diluted by the long window");
        assert_eq!(transition, None);
        assert!(!alert.active());
    }

    #[test]
    fn sustained_burn_fires_then_clears() {
        let mut alert = SloAlert::new(3);
        let mut fired_at = None;
        for i in 0..5 {
            let (_, t) = alert.observe(2.0);
            if t == Some(AlertTransition::Fired) {
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(0), "constant burn 2.0 fires immediately");
        assert!(alert.active());
        assert!(alert.last().firing());
        // Recovery: short drops below 1 on the first good sample.
        let (_, t) = alert.observe(0.0);
        assert_eq!(t, Some(AlertTransition::Cleared));
        assert!(!alert.active());
        // No duplicate transitions while state is steady.
        let (_, t) = alert.observe(0.0);
        assert_eq!(t, None);
    }

    #[test]
    fn pathological_inputs_are_clamped() {
        let mut alert = SloAlert::new(2);
        let (rate, _) = alert.observe(f64::NAN);
        assert_eq!(rate.short, 0.0);
        let (rate, _) = alert.observe(-5.0);
        assert_eq!(rate.short, 0.0);
        assert_eq!(rate.long, 0.0);
    }
}

//! Lock-free shared metric cells: counters, gauges and atomic
//! histograms. All operations are relaxed atomics — there is no
//! ordering contract between metrics, only eventual visibility, which
//! is all an exposition scrape needs.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::hist::{Histogram, BUCKETS};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins instantaneous value (epoch id, fault count, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A shared, concurrently writable [`Histogram`]: the same log-linear
/// bucket layout with every cell an [`AtomicU64`].
///
/// Direct [`AtomicHistogram::record`] is a few relaxed atomic adds; the
/// cheaper pattern for per-shard hot loops is to record into a local
/// [`Histogram`] and periodically [`AtomicHistogram::merge_from`] it in
/// bulk (one atomic add per *non-empty* bucket per flush).
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram (full fixed-size bucket table, ~7.6 KiB).
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` observations of `value`.
    pub fn record_n(&self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.buckets[Histogram::index(value)].fetch_add(count, Relaxed);
        self.count.fetch_add(count, Relaxed);
        self.sum.fetch_add(value.saturating_mul(count), Relaxed);
    }

    /// Folds a local [`Histogram`] into this shared one — the bulk
    /// flush half of the per-shard accumulation pattern. Touches only
    /// the local's non-empty buckets.
    pub fn merge_from(&self, local: &Histogram) {
        if local.count == 0 {
            return;
        }
        for (i, &c) in local.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Relaxed);
            }
        }
        self.count.fetch_add(local.count, Relaxed);
        self.sum.fetch_add(local.sum, Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A point-in-time plain-histogram copy (trailing empty buckets
    /// trimmed, so snapshots of quiet histograms are small). Under
    /// concurrent writers the snapshot is only eventually consistent;
    /// its `count` is recomputed from the bucket reads so the quantile
    /// math stays internally consistent.
    pub fn snapshot(&self) -> Histogram {
        let mut raw: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        while raw.last() == Some(&0) {
            raw.pop();
        }
        let count = raw.iter().sum();
        Histogram {
            buckets: raw,
            count,
            sum: self.sum.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_histogram_round_trips_through_snapshot() {
        let h = AtomicHistogram::new();
        h.record(100);
        h.record_n(1_000, 9);
        let mut local = Histogram::new();
        local.record_n(50, 5);
        h.merge_from(&local);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 15);
        assert_eq!(snap.sum(), 100 + 9 * 1_000 + 5 * 50);
        assert!(snap.quantile(1.0) >= 960); // lower bound of 1000's bucket
                                            // Snapshot is ragged: buckets past the last hit are trimmed.
        assert!(snap.buckets.len() < BUCKETS);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }
}

//! Request-scoped span tracing: the flight-recorder layer.
//!
//! A [`SpanRecorder`] is a per-shard, plain (non-atomic, non-locking)
//! buffer the serve hot path records stage spans into — span id,
//! parent id, a static stage name and start/stop nanos from
//! [`crate::monotonic_nanos`]. Nesting is enforced *by construction*:
//! [`SpanRecorder::start`] parents the new span under the innermost
//! open one and [`SpanRecorder::take`] force-closes anything left open,
//! so every recorded tree is well-nested no matter how the caller
//! interleaved its calls.
//!
//! Completed batch trees ([`BatchSpans`]) accumulate shard-locally and
//! are flushed in bulk into the shared [`SpanStore`], which keeps two
//! bounded rings: the most recent batches (the `SPANS` verb) and a
//! tail-retained slow-query log (the `SLOW` verb) holding the full span
//! tree of any batch whose total duration exceeded the rolling p99 of
//! all batch durations seen so far. The store is mutexed — it sits on
//! the flush/scrape path, never the per-request path.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

use crate::hist::Histogram;
use crate::metrics::Counter;
use crate::trace::monotonic_nanos;

/// Batches only enter the slow ring once this many batch durations have
/// been observed — a rolling p99 over a handful of samples is noise.
pub const SLOW_MIN_SAMPLES: u64 = 32;

/// One completed stage span inside a batch tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based id, unique within the batch (allocation order).
    pub id: u32,
    /// Parent span id; `0` marks the batch root.
    pub parent: u32,
    /// Static stage name (`"batch"`, `"decode"`, `"cache"`, …).
    pub stage: &'static str,
    /// Start timestamp, nanos from [`crate::monotonic_nanos`].
    pub start_nanos: u64,
    /// Stop timestamp, nanos from [`crate::monotonic_nanos`].
    pub end_nanos: u64,
}

impl Span {
    /// The span's duration (saturating; a force-closed span can never
    /// go negative).
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Handle to an open span, returned by [`SpanRecorder::start`] and
/// consumed by [`SpanRecorder::end`].
#[derive(Clone, Copy, Debug)]
pub struct SpanId(u32);

/// A per-shard span buffer: plain `Vec` storage, no atomics, no locks —
/// safe to drive from inside a lock-free hot-path region.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    /// Ids of currently open spans, innermost last.
    stack: Vec<u32>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Opens a span for `stage`, parented under the innermost open span
    /// (or as the root when none is open).
    pub fn start(&mut self, stage: &'static str) -> SpanId {
        let id = self.spans.len() as u32 + 1;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.spans.push(Span {
            id,
            parent,
            stage,
            start_nanos: monotonic_nanos(),
            end_nanos: 0,
        });
        self.stack.push(id);
        SpanId(id)
    }

    /// Closes `span` (and, defensively, any deeper span still open
    /// inside it, so the tree stays well-nested even if a caller skips
    /// an `end`). Closing an already-closed span is a no-op.
    pub fn end(&mut self, span: SpanId) {
        // A span that is no longer open (already ended, directly or as
        // a deeper victim of an earlier end) must not unwind the stack.
        if !self.stack.contains(&span.0) {
            return;
        }
        let now = monotonic_nanos();
        while let Some(&open) = self.stack.last() {
            self.stack.pop();
            if let Some(s) = self.spans.get_mut(open as usize - 1) {
                if s.end_nanos == 0 {
                    s.end_nanos = now;
                }
            }
            if open == span.0 {
                break;
            }
        }
    }

    /// Records an already-measured child span with explicit timestamps
    /// under the innermost open span — used for stages timed inside a
    /// callee (the engine window inside the cache pass) where a
    /// start/end pair cannot straddle the call.
    pub fn record_window(&mut self, stage: &'static str, start_nanos: u64, end_nanos: u64) {
        let id = self.spans.len() as u32 + 1;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.spans.push(Span {
            id,
            parent,
            stage,
            start_nanos,
            end_nanos: end_nanos.max(start_nanos),
        });
    }

    /// Whether no span has been recorded since the last take/reset.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of currently open spans.
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Discards everything recorded since the last take (an abandoned
    /// batch: no requests decoded).
    pub fn reset(&mut self) {
        self.spans.clear();
        self.stack.clear();
    }

    /// Seals the recorded spans as one batch tree, force-closing any
    /// span still open, and resets the recorder. The batch's total
    /// duration is its root span's.
    pub fn take(&mut self, shard: u32, batch: u64, epoch: u64, requests: u32) -> BatchSpans {
        let now = monotonic_nanos();
        for &open in &self.stack {
            if let Some(s) = self.spans.get_mut(open as usize - 1) {
                if s.end_nanos == 0 {
                    s.end_nanos = now;
                }
            }
        }
        self.stack.clear();
        let spans = std::mem::take(&mut self.spans);
        let total_nanos = spans
            .iter()
            .find(|s| s.parent == 0)
            .map(Span::duration_nanos)
            .unwrap_or(0);
        BatchSpans {
            shard,
            batch,
            epoch,
            requests,
            total_nanos,
            spans,
        }
    }
}

/// The complete, well-nested span tree of one dispatch batch.
#[derive(Clone, Debug)]
pub struct BatchSpans {
    /// Connection shard that dispatched the batch.
    pub shard: u32,
    /// Per-shard monotone batch sequence number.
    pub batch: u64,
    /// Epoch the batch answered at.
    pub epoch: u64,
    /// Requests in the batch.
    pub requests: u32,
    /// Root-span duration.
    pub total_nanos: u64,
    /// The spans, in allocation (start) order; parents precede
    /// children.
    pub spans: Vec<Span>,
}

impl BatchSpans {
    /// Whether the tree is well-nested: exactly one root, every parent
    /// id points at an earlier span, and every child's window lies
    /// within its parent's.
    pub fn is_well_nested(&self) -> bool {
        let roots = self.spans.iter().filter(|s| s.parent == 0).count();
        if roots != 1 {
            return false;
        }
        self.spans.iter().all(|s| {
            if s.end_nanos < s.start_nanos {
                return false;
            }
            if s.parent == 0 {
                return true;
            }
            match self.spans.get(s.parent as usize - 1) {
                Some(p) => {
                    p.id < s.id && p.start_nanos <= s.start_nanos && s.end_nanos <= p.end_nanos
                }
                None => false,
            }
        })
    }

    /// Renders each span as one wire line
    /// (`batch=… shard=… epoch=… reqs=… span=… parent=… stage=… …`).
    pub fn lines(&self) -> impl Iterator<Item = String> + '_ {
        self.spans.iter().map(move |s| {
            format!(
                "batch={} shard={} epoch={} reqs={} span={} parent={} stage={} \
                 start_ns={} end_ns={} dur_ns={}",
                self.batch,
                self.shard,
                self.epoch,
                self.requests,
                s.id,
                s.parent,
                s.stage,
                s.start_nanos,
                s.end_nanos,
                s.duration_nanos()
            )
        })
    }
}

fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

struct StoreInner {
    recent: VecDeque<BatchSpans>,
    slow: VecDeque<BatchSpans>,
    /// Every batch total ever ingested — the rolling-p99 source.
    durations: Histogram,
}

/// The shared span sink: a bounded ring of recent batch trees plus the
/// tail-retained slow-query log.
pub struct SpanStore {
    recent_cap: usize,
    slow_cap: usize,
    inner: Mutex<StoreInner>,
    batches: Counter,
    spans_dropped: Counter,
    slow_retained: Counter,
}

impl SpanStore {
    /// A store keeping the last `recent_cap` batches and up to
    /// `slow_cap` tail-retained slow batches.
    pub fn new(recent_cap: usize, slow_cap: usize) -> Self {
        SpanStore {
            recent_cap: recent_cap.max(1),
            slow_cap: slow_cap.max(1),
            inner: Mutex::new(StoreInner {
                recent: VecDeque::new(),
                slow: VecDeque::new(),
                durations: Histogram::new(),
            }),
            batches: Counter::new(),
            spans_dropped: Counter::new(),
            slow_retained: Counter::new(),
        }
    }

    /// Bulk-ingests a shard's accumulated batch trees (draining
    /// `batches`): one lock acquisition per flush, never per request.
    /// Each batch lands in the recent ring; a batch whose total exceeds
    /// the rolling p99 (once [`SLOW_MIN_SAMPLES`] batches have been
    /// seen) is also retained in the slow ring. Evicted batches count
    /// their spans into the dropped total.
    pub fn ingest(&self, batches: &mut Vec<BatchSpans>) {
        if batches.is_empty() {
            return;
        }
        let mut inner = relock(self.inner.lock());
        for batch in batches.drain(..) {
            self.batches.inc();
            let seen = inner.durations.count();
            let p99 = inner.durations.quantile(0.99);
            inner.durations.record(batch.total_nanos);
            if seen >= SLOW_MIN_SAMPLES && batch.total_nanos > p99 {
                if inner.slow.len() >= self.slow_cap {
                    if let Some(evicted) = inner.slow.pop_front() {
                        self.spans_dropped.add(evicted.spans.len() as u64);
                    }
                }
                self.slow_retained.inc();
                inner.slow.push_back(batch.clone());
            }
            if inner.recent.len() >= self.recent_cap {
                if let Some(evicted) = inner.recent.pop_front() {
                    self.spans_dropped.add(evicted.spans.len() as u64);
                }
            }
            inner.recent.push_back(batch);
        }
    }

    /// The newest `n` batches, oldest first.
    pub fn recent(&self, n: usize) -> Vec<BatchSpans> {
        let inner = relock(self.inner.lock());
        let skip = inner.recent.len().saturating_sub(n);
        inner.recent.iter().skip(skip).cloned().collect()
    }

    /// The newest `n` tail-retained slow batches, oldest first.
    pub fn slow(&self, n: usize) -> Vec<BatchSpans> {
        let inner = relock(self.inner.lock());
        let skip = inner.slow.len().saturating_sub(n);
        inner.slow.iter().skip(skip).cloned().collect()
    }

    /// The rolling p99 of batch total durations (0 before any batch).
    pub fn p99_nanos(&self) -> u64 {
        relock(self.inner.lock()).durations.quantile(0.99)
    }

    /// Batches ingested since start.
    pub fn batches_total(&self) -> u64 {
        self.batches.get()
    }

    /// Spans evicted from the recent/slow rings since start.
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped.get()
    }

    /// Batches retained in the slow ring since start (including later
    /// evicted ones).
    pub fn slow_total(&self) -> u64 {
        self.slow_retained.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_with_total(total: u64, spans: usize) -> BatchSpans {
        let mut rec = SpanRecorder::new();
        let root = rec.start("batch");
        for _ in 0..spans.saturating_sub(1) {
            let s = rec.start("decode");
            rec.end(s);
        }
        rec.end(root);
        let mut b = rec.take(0, 0, 0, 1);
        b.total_nanos = total; // override for deterministic retention
        b
    }

    #[test]
    fn recorder_builds_well_nested_trees() {
        let mut rec = SpanRecorder::new();
        let root = rec.start("batch");
        let d = rec.start("decode");
        rec.end(d);
        let c = rec.start("cache");
        rec.record_window("engine", monotonic_nanos(), monotonic_nanos());
        rec.end(c);
        rec.end(root);
        let batch = rec.take(3, 7, 2, 5);
        assert!(rec.is_empty());
        assert_eq!(batch.shard, 3);
        assert_eq!(batch.spans.len(), 4);
        assert!(batch.is_well_nested(), "{batch:?}");
        assert_eq!(batch.spans[0].stage, "batch");
        assert_eq!(batch.spans[0].parent, 0);
        assert_eq!(batch.spans[1].parent, 1);
        let engine = &batch.spans[3];
        assert_eq!(engine.stage, "engine");
        assert_eq!(engine.parent, 3, "window child parents under cache");
        let line = batch.lines().next().unwrap();
        assert!(line.starts_with("batch=7 shard=3 epoch=2 reqs=5 span=1 parent=0 stage=batch"));
    }

    #[test]
    fn unbalanced_ends_are_force_closed() {
        let mut rec = SpanRecorder::new();
        let root = rec.start("batch");
        let _leak = rec.start("decode");
        let deeper = rec.start("cache");
        // Ending the root closes everything still open inside it.
        let _ = deeper;
        rec.end(root);
        assert_eq!(rec.open_depth(), 0);
        let batch = rec.take(0, 0, 0, 0);
        assert!(batch.is_well_nested(), "{batch:?}");
        // A take with spans still open closes them too.
        let _open = rec.start("batch");
        let taken = rec.take(0, 1, 0, 0);
        assert!(taken.is_well_nested());
        assert!(taken.spans[0].end_nanos >= taken.spans[0].start_nanos);
    }

    #[test]
    fn store_retains_slow_tail_and_evicts_bounded() {
        let store = SpanStore::new(4, 2);
        // Warm up past SLOW_MIN_SAMPLES with fast batches.
        let mut warm: Vec<BatchSpans> = (0..SLOW_MIN_SAMPLES)
            .map(|_| batch_with_total(1_000, 2))
            .collect();
        store.ingest(&mut warm);
        assert!(warm.is_empty());
        assert_eq!(store.batches_total(), SLOW_MIN_SAMPLES);
        assert!(store.slow(10).is_empty(), "fast batches are not retained");
        // Three slow outliers: the 2-cap slow ring keeps the newest two.
        let mut slow: Vec<BatchSpans> = (0..3)
            .map(|i| {
                let mut b = batch_with_total(1_000_000 * (i + 1), 3);
                b.batch = 100 + i;
                b
            })
            .collect();
        store.ingest(&mut slow);
        let kept = store.slow(10);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].batch, 101);
        assert_eq!(kept[1].batch, 102);
        assert_eq!(store.slow_total(), 3);
        // One batch of 3 spans evicted from the slow ring, plus the
        // recent-ring evictions (cap 4, 35 ingested).
        assert!(store.spans_dropped() >= 3);
        // The recent ring holds only the newest four.
        assert_eq!(store.recent(100).len(), 4);
        assert!(store.p99_nanos() >= 1_000);
    }

    #[test]
    fn recent_returns_newest_oldest_first() {
        let store = SpanStore::new(8, 2);
        let mut batches: Vec<BatchSpans> = (0..5)
            .map(|i| {
                let mut b = batch_with_total(10, 1);
                b.batch = i;
                b
            })
            .collect();
        store.ingest(&mut batches);
        let last3: Vec<u64> = store.recent(3).iter().map(|b| b.batch).collect();
        assert_eq!(last3, vec![2, 3, 4]);
    }
}

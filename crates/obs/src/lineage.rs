//! Epoch lineage journal: bounded provenance for epoch advances.
//!
//! Every published epoch records which parent it derived from, how many
//! fault events were batched and actually applied, the occupancy delta
//! (net change in live fault count), and the apply/publish timings.
//! The journal answers the `LINEAGE [n]` verb: which fault sets
//! produced which surviving graph — the paper's fault model, made
//! queryable.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, PoisonError};

use crate::metrics::Counter;

/// One epoch advance, as recorded at publish time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineageRecord {
    /// The epoch id that became current.
    pub epoch: u64,
    /// The epoch it was derived from.
    pub parent: u64,
    /// Fault events in the ingested batch.
    pub events: u64,
    /// Events that actually toggled state (idempotent ones skipped).
    pub applied: u64,
    /// Live fault count after the advance.
    pub faults: u64,
    /// Net change in live fault count across the advance.
    pub delta: i64,
    /// Nanoseconds spent applying the batch to engine state.
    pub apply_nanos: u64,
    /// Nanoseconds spent building and publishing the new snapshot.
    pub publish_nanos: u64,
    /// Publish timestamp, nanos from [`crate::monotonic_nanos`].
    pub at_nanos: u64,
}

impl fmt::Display for LineageRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch={} parent={} events={} applied={} faults={} delta={} \
             apply_ns={} publish_ns={} ts_ns={}",
            self.epoch,
            self.parent,
            self.events,
            self.applied,
            self.faults,
            self.delta,
            self.apply_nanos,
            self.publish_nanos,
            self.at_nanos
        )
    }
}

fn relock<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// A bounded ring of [`LineageRecord`]s, oldest evicted first.
///
/// Pushes happen once per epoch advance (ingest cadence, not request
/// cadence), so a mutexed ring is fine.
pub struct LineageJournal {
    cap: usize,
    inner: Mutex<VecDeque<LineageRecord>>,
    total: Counter,
    dropped: Counter,
}

impl LineageJournal {
    /// A journal retaining at most `cap` records.
    pub fn new(cap: usize) -> Self {
        LineageJournal {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
            total: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: LineageRecord) {
        let mut inner = relock(self.inner.lock());
        if inner.len() >= self.cap {
            inner.pop_front();
            self.dropped.inc();
        }
        inner.push_back(record);
        self.total.inc();
    }

    /// The newest `n` records, oldest first.
    pub fn last(&self, n: usize) -> Vec<LineageRecord> {
        let inner = relock(self.inner.lock());
        let skip = inner.len().saturating_sub(n);
        inner.iter().skip(skip).cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        relock(self.inner.lock()).len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records ever pushed.
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Records evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64) -> LineageRecord {
        LineageRecord {
            epoch,
            parent: epoch.saturating_sub(1),
            events: 4,
            applied: 3,
            faults: epoch,
            delta: 1,
            apply_nanos: 100,
            publish_nanos: 200,
            at_nanos: 1_000 * epoch,
        }
    }

    #[test]
    fn journal_is_bounded_and_keeps_newest() {
        let journal = LineageJournal::new(3);
        assert!(journal.is_empty());
        for epoch in 1..=5 {
            journal.push(record(epoch));
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.total(), 5);
        assert_eq!(journal.dropped(), 2);
        let kept: Vec<u64> = journal.last(10).iter().map(|r| r.epoch).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        let last_one: Vec<u64> = journal.last(1).iter().map(|r| r.epoch).collect();
        assert_eq!(last_one, vec![5]);
        // Parent chain is contiguous across the retained window.
        let records = journal.last(10);
        for pair in records.windows(2) {
            assert_eq!(pair[1].parent, pair[0].epoch);
        }
    }

    #[test]
    fn record_renders_every_field() {
        let line = record(7).to_string();
        assert_eq!(
            line,
            "epoch=7 parent=6 events=4 applied=3 faults=7 delta=1 \
             apply_ns=100 publish_ns=200 ts_ns=7000"
        );
    }
}

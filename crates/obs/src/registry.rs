//! A named collection of metric families with Prometheus-style text
//! exposition and flat JSON snapshots.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{AtomicHistogram, Counter, Gauge};

/// Rendering unit for histogram-backed summaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Raw values (batch sizes, visited counts, …) rendered as integers.
    None,
    /// Observations are nanoseconds; quantiles and sums are rendered as
    /// seconds (Prometheus base-unit convention).
    Seconds,
}

enum SeriesValue {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Summary(Arc<AtomicHistogram>, Unit),
    FuncCounter(Box<dyn Fn() -> u64 + Send + Sync>),
    FuncGauge(Box<dyn Fn() -> u64 + Send + Sync>),
}

impl SeriesValue {
    fn kind(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) | SeriesValue::FuncCounter(_) => "counter",
            SeriesValue::Gauge(_) | SeriesValue::FuncGauge(_) => "gauge",
            SeriesValue::Summary(..) => "summary",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

struct Family {
    name: String,
    help: String,
    kind: &'static str,
    series: Vec<Series>,
}

/// A registry of metric families. Registration takes a short mutex;
/// the returned [`Counter`]/[`Gauge`]/[`AtomicHistogram`] handles are
/// lock-free to update. Families are grouped by metric name, so
/// registering the same name with different labels yields one family
/// with several label sets (the kinds must agree).
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], value: SeriesValue) {
        let kind = value.kind();
        let series = Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        };
        let mut families = self.families.lock().unwrap();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.kind, kind,
                "metric {name} registered with conflicting kinds"
            );
            family.series.push(series);
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: vec![series],
            });
        }
    }

    /// Registers (and returns) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, labels, SeriesValue::Counter(c.clone()));
        c
    }

    /// Registers (and returns) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, labels, SeriesValue::Gauge(g.clone()));
        g
    }

    /// Registers (and returns) a histogram series, exposed as a
    /// Prometheus summary with `quantile="0.5" / "0.95" / "0.99"`
    /// sub-series plus `_count` and `_sum`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        unit: Unit,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicHistogram> {
        let h = Arc::new(AtomicHistogram::new());
        self.push(name, help, labels, SeriesValue::Summary(h.clone(), unit));
        h
    }

    /// Registers a counter whose value is read from elsewhere at scrape
    /// time (pre-existing atomic stats, feature-gated engine counters).
    /// The reader must be monotonic for the exposition to be honest.
    pub fn func_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, SeriesValue::FuncCounter(Box::new(read)));
    }

    /// Registers a gauge whose value is computed at scrape time (uptime,
    /// queue depths, …).
    pub fn func_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, SeriesValue::FuncGauge(Box::new(read)));
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format: `# HELP` / `# TYPE` lines per family, then one
    /// `name{labels} value` line per series (summaries expand to their
    /// quantile, `_count` and `_sum` sub-series).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind);
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(c) => {
                        let labels = prom_labels(&series.labels, None);
                        let _ = writeln!(out, "{}{} {}", family.name, labels, c.get());
                    }
                    SeriesValue::Gauge(g) => {
                        let labels = prom_labels(&series.labels, None);
                        let _ = writeln!(out, "{}{} {}", family.name, labels, g.get());
                    }
                    SeriesValue::FuncCounter(f) | SeriesValue::FuncGauge(f) => {
                        let labels = prom_labels(&series.labels, None);
                        let _ = writeln!(out, "{}{} {}", family.name, labels, f());
                    }
                    SeriesValue::Summary(h, unit) => {
                        let snap = h.snapshot();
                        for q in ["0.5", "0.95", "0.99"] {
                            let labels = prom_labels(&series.labels, Some(q));
                            let v = snap.quantile(q.parse().unwrap());
                            let _ = writeln!(out, "{}{} {}", family.name, labels, scaled(v, *unit));
                        }
                        let labels = prom_labels(&series.labels, None);
                        let _ = writeln!(out, "{}_count{} {}", family.name, labels, snap.count());
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            labels,
                            scaled(snap.sum(), *unit)
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a flat JSON object: one key per series (labels folded
    /// into the key as `name{k=v,…}`), scalar values for counters and
    /// gauges, `{count, sum, p50, p95, p99}` objects for histograms.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            for series in &family.series {
                if !first {
                    out.push(',');
                }
                first = false;
                let key = json_key(&family.name, &series.labels);
                match &series.value {
                    SeriesValue::Counter(c) => {
                        let _ = write!(out, "\"{key}\":{}", c.get());
                    }
                    SeriesValue::Gauge(g) => {
                        let _ = write!(out, "\"{key}\":{}", g.get());
                    }
                    SeriesValue::FuncCounter(f) | SeriesValue::FuncGauge(f) => {
                        let _ = write!(out, "\"{key}\":{}", f());
                    }
                    SeriesValue::Summary(h, unit) => {
                        let snap = h.snapshot();
                        let _ = write!(
                            out,
                            "\"{key}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            snap.count(),
                            scaled(snap.sum(), *unit),
                            scaled(snap.quantile(0.50), *unit),
                            scaled(snap.quantile(0.95), *unit),
                            scaled(snap.quantile(0.99), *unit),
                        );
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

/// Renders a value under its unit: integers stay integers, nanosecond
/// observations become fractional seconds.
fn scaled(v: u64, unit: Unit) -> String {
    match unit {
        Unit::None => v.to_string(),
        Unit::Seconds => format!("{:.9}", v as f64 / 1e9),
    }
}

fn prom_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn json_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_covers_all_kinds() {
        let reg = Registry::new();
        let c = reg.counter(
            "ftr_requests_total",
            "Requests served.",
            &[("verb", "route")],
        );
        let g = reg.gauge("ftr_epoch_id", "Current epoch.", &[]);
        let h = reg.histogram(
            "ftr_route_latency_seconds",
            "Server-side route latency.",
            Unit::Seconds,
            &[],
        );
        reg.func_gauge("ftr_uptime_seconds", "Process uptime.", &[], || 12);
        c.add(5);
        g.set(3);
        h.record_n(1_000_000, 4); // 1ms
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP ftr_requests_total Requests served."));
        assert!(text.contains("# TYPE ftr_requests_total counter"));
        assert!(text.contains("ftr_requests_total{verb=\"route\"} 5"));
        assert!(text.contains("ftr_epoch_id 3"));
        assert!(text.contains("# TYPE ftr_route_latency_seconds summary"));
        assert!(text.contains("ftr_route_latency_seconds{quantile=\"0.95\"} 0.000"));
        assert!(text.contains("ftr_route_latency_seconds_count 4"));
        assert!(text.contains("ftr_uptime_seconds 12"));
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ftr_requests_total{verb=route}\":5"));
        assert!(json.contains("\"count\":4"));
    }

    #[test]
    fn same_name_groups_under_one_family() {
        let reg = Registry::new();
        let a = reg.counter("ftr_cache_hits_total", "Cache hits.", &[("shard", "0")]);
        let b = reg.counter("ftr_cache_hits_total", "Cache hits.", &[("shard", "1")]);
        a.inc();
        b.add(2);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE ftr_cache_hits_total").count(), 1);
        assert!(text.contains("ftr_cache_hits_total{shard=\"0\"} 1"));
        assert!(text.contains("ftr_cache_hits_total{shard=\"1\"} 2"));
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn kind_conflicts_are_programming_errors() {
        let reg = Registry::new();
        let _ = reg.counter("ftr_thing", "x", &[]);
        let _ = reg.gauge("ftr_thing", "x", &[]);
    }
}

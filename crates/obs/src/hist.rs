//! The log-linear histogram shared by loadgen and the server.

/// Sub-buckets per octave: resolution is ~1/16 ≈ 6%, plenty for
/// p50/p95/p99 reporting without HDR-histogram-sized tables.
pub(crate) const SUB: usize = 16;
/// Bucket count covering the full `u64` range.
pub(crate) const BUCKETS: usize = 61 * SUB;

/// A log-linear histogram of `u64` observations (fixed ~6% relative
/// error, constant-time record, mergeable across threads).
///
/// Buckets are allocated lazily up to the highest index touched, so an
/// empty histogram holds no bucket storage and per-shard locals stay
/// small. [`Histogram::merge`] accepts histograms with a different
/// (ragged) bucket-array length — shorter arrays are treated as
/// trailing zeros.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    pub(crate) buckets: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    pub(crate) fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        ((msb - 3) * SUB + sub).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i`'s value range.
    pub(crate) fn lower_bound(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let octave = i / SUB;
        let sub = i % SUB;
        ((SUB + sub) as u64) << (octave - 1)
    }

    /// Records `count` observations of `value` (e.g. a pipelined burst
    /// round trip attributed to each query in the burst).
    pub fn record_n(&mut self, value: u64, count: u64) {
        let i = Self::index(value);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += count;
        self.count += count;
        self.sum = self.sum.saturating_add(value.saturating_mul(count));
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drops all observations, keeping the bucket allocation.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
    }

    /// Folds another histogram (typically a per-thread or per-shard
    /// local) into this one. The two bucket arrays may have different
    /// lengths; `self` grows as needed.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Rebuilds a histogram from a raw bucket array (any length up to
    /// [`BUCKETS`] indices is meaningful; longer arrays are truncated
    /// into the overflow bucket's range). `sum` is recomputed from
    /// bucket lower bounds, so it carries the same ~6% error as the
    /// quantiles.
    pub fn from_buckets(raw: &[u64]) -> Self {
        let mut h = Histogram::new();
        for (i, &c) in raw.iter().enumerate() {
            if c > 0 {
                h.record_n(Self::lower_bound(i.min(BUCKETS - 1)), c);
            }
        }
        h
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) — the lower edge of the bucket
    /// where the cumulative count crosses `q`. Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::lower_bound(i);
            }
        }
        Self::lower_bound(BUCKETS - 1)
    }

    /// The `q`-quantile in microseconds (observations in nanoseconds).
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1_000.0
    }

    /// The per-bucket difference `self - earlier` (saturating), turning
    /// two snapshots of a cumulative histogram into a windowed view of
    /// the observations recorded between them. The watchdog uses this
    /// to compute burn rates over its sampling interval.
    pub fn diff_from(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = self.buckets.clone();
        for (a, b) in buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Fraction of observations recorded in buckets strictly above the
    /// bucket containing `value` (0.0 on an empty histogram). Together
    /// with an SLO target quantile this yields a burn rate: fraction
    /// above the threshold divided by the allowed tail fraction.
    pub fn fraction_above(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let cut = Self::index(value);
        let above: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| i > cut)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        // Every value lands in a bucket whose range contains it, with
        // lower bound within ~6% below.
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = Histogram::index(v);
            let lo = Histogram::lower_bound(i);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            if v >= 16 {
                assert!((v - lo) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9);
            }
            if i + 1 < BUCKETS {
                assert!(Histogram::lower_bound(i + 1) > v);
            }
        }
    }

    #[test]
    fn quantiles_order_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v * 1_000);
            } else {
                b.record(v * 1_000);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let (p50, p95, p99) = (a.quantile(0.50), a.quantile(0.95), a.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        // ~6% relative accuracy around the true values.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.07);
        assert!((p95 as f64 - 950_000.0).abs() / 950_000.0 < 0.07);
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.07);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn diff_from_windows_a_cumulative_histogram() {
        let mut early = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            early.record(v);
        }
        let mut late = early.clone();
        for v in [8_000u64, 8_000, 16_000, 1_000_000] {
            late.record(v);
        }
        let window = late.diff_from(&early);
        assert_eq!(window.count(), 4);
        assert!(window.quantile(0.01) >= 8_000 * 15 / 16);
        // Empty window when nothing happened between snapshots.
        let idle = late.diff_from(&late);
        assert!(idle.is_empty());
        assert_eq!(idle.fraction_above(0), 0.0);
        // Tail fraction: one of four observations sits above 16_000.
        let frac = window.fraction_above(16_000);
        assert!((frac - 0.25).abs() < 1e-9, "{frac}");
        assert_eq!(window.fraction_above(u64::MAX), 0.0);
    }
}

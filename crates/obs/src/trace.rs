//! A bounded ring-buffer journal of structured events.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Nanoseconds on a process-wide monotonic clock. The origin is the
/// first call in the process (so the first reading is 0); call once at
/// startup to anchor the origin at process start.
pub fn monotonic_nanos() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_nanos() as u64
}

/// One journal entry: a monotonic timestamp, the epoch it happened
/// under, a static event kind and a short free-form detail string.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// [`monotonic_nanos`] at push time.
    pub nanos: u64,
    /// Epoch id the event is tagged with.
    pub epoch: u64,
    /// Event kind (`epoch_publish`, `ingest_batch`, `audit_search`, …).
    pub kind: &'static str,
    /// Free-form `key=value` detail tokens.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ts_ns={} epoch={} kind={}{}{}",
            self.nanos,
            self.epoch,
            self.kind,
            if self.detail.is_empty() { "" } else { " " },
            self.detail
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s. Pushes beyond the capacity
/// evict the oldest entry and bump the drop counter, so the journal is
/// always the *last* `cap` events. Pushing takes a short mutex — trace
/// events fire at epoch/batch/search rate, never per query, so this is
/// off the serving hot path by construction.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<VecDeque<TraceEvent>>,
    total: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap == 0` keeps nothing).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            inner: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends an event stamped with [`monotonic_nanos`] now.
    pub fn push(&self, epoch: u64, kind: &'static str, detail: String) {
        self.total.fetch_add(1, Relaxed);
        let event = TraceEvent {
            nanos: monotonic_nanos(),
            epoch,
            kind,
            detail,
        };
        let mut ring = self.inner.lock().unwrap();
        if self.cap == 0 {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(event);
    }

    /// The last `n` events, oldest first.
    pub fn last(&self, n: usize) -> Vec<TraceEvent> {
        let ring = self.inner.lock().unwrap();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events pushed over the ring's lifetime.
    pub fn total(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Events evicted (or refused at `cap == 0`).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_events_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(i, "tick", format!("i={i}"));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.dropped(), 2);
        let last = ring.last(10);
        assert_eq!(last.len(), 3);
        assert_eq!(last[0].epoch, 2);
        assert_eq!(last[2].epoch, 4);
        assert!(last[0].nanos <= last[2].nanos);
        let two = ring.last(2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].epoch, 3);
        let line = two[0].to_string();
        assert!(line.starts_with("ts_ns="));
        assert!(line.contains("kind=tick i=3"));
    }
}

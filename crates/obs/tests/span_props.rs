//! Property test: flight-recorder span trees stay well-nested no
//! matter how unbalanced the recording sequence was, including under
//! concurrent multi-shard flushes into one shared [`SpanStore`].

use std::sync::Arc;

use ftr_obs::{SpanRecorder, SpanStore};
use proptest::prelude::*;

/// Stage names a recorder may open (must be `&'static str`).
const STAGES: [&str; 5] = ["batch", "decode", "cache", "engine", "write"];

/// Drives one recorder through a seeded pseudo-random op stream under
/// the server's discipline (a root span opened first and closed only
/// by `take`) but with adversarial ordering inside it: out-of-order
/// ends, double ends of already-closed spans, dangling opens and
/// explicit windows. Returns the sealed batch.
fn record_chaotic(seed: u64, ops: usize, shard: u32, batch: u64) -> ftr_obs::BatchSpans {
    let mut recorder = SpanRecorder::new();
    recorder.start("batch"); // root: closed only by take()
    let mut open = Vec::new();
    let mut closed = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64: deterministic per-seed op stream.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..ops {
        match next() % 5 {
            0 | 1 => {
                let stage = STAGES[1 + (next() % (STAGES.len() as u64 - 1)) as usize];
                open.push(recorder.start(stage));
            }
            2 if !open.is_empty() => {
                // End a *random* open span, not necessarily the
                // innermost — the recorder must close intervening
                // spans itself to stay balanced.
                let pick = (next() % open.len() as u64) as usize;
                let span = open.swap_remove(pick);
                recorder.end(span);
                closed.push(span);
            }
            3 if !closed.is_empty() => {
                // Ending an already-closed span must be a no-op (it
                // must NOT unwind the still-open stack above it).
                let pick = (next() % closed.len() as u64) as usize;
                recorder.end(closed[pick]);
            }
            _ => {
                let start = ftr_obs::monotonic_nanos();
                let end = ftr_obs::monotonic_nanos();
                recorder.record_window("engine", start, end);
            }
        }
    }
    // Some spans in `open` are deliberately never ended: take() must
    // force-close them.
    recorder.take(shard, batch, 1, ops as u32)
}

proptest! {
    #[test]
    fn chaotic_recording_always_seals_well_nested(
        seed in 1u64..u64::MAX,
        ops in 1usize..120,
    ) {
        let batch = record_chaotic(seed, ops, 0, 1);
        prop_assert!(
            batch.is_well_nested(),
            "seed {} ops {} produced a malformed tree",
            seed,
            ops
        );
    }

    #[test]
    fn concurrent_shard_flushes_keep_every_retained_tree_well_nested(
        seeds in prop::collection::vec(1u64..u64::MAX, 2..5),
        batches_per_shard in 1u64..12,
    ) {
        let store = Arc::new(SpanStore::new(16, 8));
        std::thread::scope(|scope| {
            for (shard, &seed) in seeds.iter().enumerate() {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut pending = Vec::new();
                    for b in 1..=batches_per_shard {
                        let ops = 1 + ((seed ^ b) % 60) as usize;
                        pending.push(record_chaotic(seed ^ b, ops, shard as u32, b));
                        // Flush in irregular chunks to interleave with
                        // the other shards.
                        if b % 3 == 0 {
                            store.ingest(&mut pending);
                        }
                    }
                    store.ingest(&mut pending);
                });
            }
        });
        let total = seeds.len() as u64 * batches_per_shard;
        prop_assert_eq!(store.batches_total(), total);
        for batch in store.recent(usize::MAX).iter().chain(store.slow(usize::MAX).iter()) {
            prop_assert!(
                batch.is_well_nested(),
                "shard {} batch {} malformed after concurrent flushes",
                batch.shard,
                batch.batch
            );
            prop_assert!(batch.spans.iter().all(|s| s.end_nanos >= s.start_nanos));
        }
    }
}

//! Histogram edge cases and a quantile-vs-sorted-reference property
//! test (satellite coverage for the shared `ftr-obs` histogram).

use ftr_obs::Histogram;
use proptest::prelude::*;

#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::new();
    assert!(h.is_empty());
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0);
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
}

#[test]
fn single_sample_dominates_every_quantile() {
    // Below 16 the buckets are exact: every quantile is the sample.
    let mut h = Histogram::new();
    h.record(7);
    for q in [0.0, 0.01, 0.5, 1.0] {
        assert_eq!(h.quantile(q), 7);
    }
    assert_eq!((h.count(), h.sum()), (1, 7));
    // Above 16 the quantile is the sample's bucket lower bound, within
    // ~6% below the sample itself.
    let mut h = Histogram::new();
    h.record(1_000_003);
    let q = h.quantile(0.5);
    assert!(q <= 1_000_003);
    assert!((1_000_003 - q) as f64 / 1_000_003.0 <= 1.0 / 16.0 + 1e-9);
}

#[test]
fn overflow_bucket_absorbs_the_top_of_the_range() {
    let mut h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    assert_eq!(h.count(), 2);
    // Both collapse into the final (overflow) bucket: one shared lower
    // bound, no panic, quantiles stay <= the recorded values.
    let top = h.quantile(1.0);
    assert_eq!(h.quantile(0.1), top);
    assert!(top < u64::MAX);
    assert!(top > 1 << 60);
    // Sum saturates rather than wrapping.
    assert_eq!(h.sum(), u64::MAX);
}

#[test]
fn ragged_merge_grows_the_shorter_side() {
    // A histogram of small values holds a short bucket array; merging a
    // long (large-value) histogram into it must extend it, and the
    // merge must commute on counts, sums and quantiles.
    let mut small = Histogram::new();
    for v in 1..=10u64 {
        small.record(v);
    }
    let mut large = Histogram::new();
    large.record(1_000_000_000);

    let mut ab = small.clone();
    ab.merge(&large);
    let mut ba = large.clone();
    ba.merge(&small);

    assert_eq!(ab.count(), 11);
    assert_eq!(ba.count(), 11);
    assert_eq!(ab.sum(), ba.sum());
    for q in [0.1, 0.5, 0.9, 1.0] {
        assert_eq!(ab.quantile(q), ba.quantile(q));
    }
    assert_eq!(ab.quantile(0.5), 6);
    assert!(ab.quantile(1.0) > 900_000_000);

    // Raw ragged bucket arrays round-trip through from_buckets too.
    let short = Histogram::from_buckets(&[0, 3, 1]);
    let mut long = Histogram::from_buckets(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2]);
    long.merge(&short);
    assert_eq!(long.count(), 7);
    assert_eq!(long.quantile(0.5), 1);
}

#[test]
fn from_buckets_truncates_past_the_table() {
    // An index beyond the bucket table folds into the overflow bucket
    // instead of panicking.
    let mut raw = vec![0u64; 2000];
    raw[1999] = 4;
    raw[3] = 1;
    let h = Histogram::from_buckets(&raw);
    assert_eq!(h.count(), 5);
    assert_eq!(h.quantile(0.1), 3);
    assert!(h.quantile(1.0) > 1 << 59);
}

proptest! {
    #[test]
    fn quantiles_agree_with_sorted_reference(
        values in prop::collection::vec(0u64..1_000_000_000_000, 1..300),
        qs_permille in prop::collection::vec(0u64..1001, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        for q in qs_permille.into_iter().map(|p| p as f64 / 1000.0) {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let reference = sorted[rank - 1];
            let got = h.quantile(q);
            // The histogram answers with the lower bound of the bucket
            // holding the reference element: never above it, and within
            // 1/16 relative error (exact below 16).
            prop_assert!(got <= reference);
            if reference < 16 {
                prop_assert_eq!(got, reference);
            } else {
                prop_assert!(
                    (reference - got) as f64 / reference as f64 <= 1.0 / 16.0 + 1e-9,
                    "q={} reference={} got={}", q, reference, got
                );
            }
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut all = Histogram::new();
        for &v in &a {
            ha.record(v);
            all.record(v);
        }
        for &v in &b {
            hb.record(v);
            all.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), all.count());
        prop_assert_eq!(ha.sum(), all.sum());
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(ha.quantile(q), all.quantile(q));
        }
    }
}

//! Cross-validation and certificate property tests.
//!
//! * On small graphs (`n <= 12`, `f <= 2`) the pruned searcher's verdict
//!   and worst witness must match the exhaustive verifier exactly, for
//!   every applicable scheme in the registry: same verdict, identical
//!   worst surviving diameter, and a witness that independently
//!   reproduces that diameter through the route-walk reference
//!   implementation (the witness *set* may legally differ between equal
//!   worst cases — the searcher enumerates in impact order, the
//!   exhaustive verifier in node order — so equality is asserted on the
//!   measured badness both sets achieve).
//! * Certificates round-trip (serialize → parse → re-check) and detect
//!   tampering: a flipped hash fails the hash check, a flipped witness
//!   (hash re-fixed) fails the witness re-measurement.

use ftr_audit::{
    audit, check, CertVerdict, Certificate, CheckError, SearchConfig, SearchMode, Verdict,
};
use ftr_core::{
    verify_tolerance, BuiltTable, Compile, FaultStrategy, RouteTable, SchemeRegistry, SchemeSpec,
    ToleranceClaim,
};
use ftr_graph::{gen, Graph, NodeSet};
use proptest::prelude::*;

/// The small-graph suite: one representative per applicability regime,
/// all with `n <= 12` so exhaustive enumeration stays instant.
fn small_suite() -> Vec<(&'static str, Graph)> {
    vec![
        ("petersen", gen::petersen()),
        ("c12", gen::cycle(12).expect("valid")),
        ("q3", gen::hypercube(3).expect("valid")),
        ("torus3x4", gen::torus(3, 4).expect("valid")),
        ("harary3x12", gen::harary(3, 12).expect("valid")),
    ]
}

/// Audits `claim` in worst mode and cross-checks against the exhaustive
/// verifier on the same engine.
fn cross_validate(
    label: &str,
    built: &ftr_core::BuiltRouting,
    claim: ToleranceClaim,
    threads: usize,
) -> Result<(), TestCaseError> {
    let engine = match built.table() {
        BuiltTable::Single(r) => r.compile(),
        BuiltTable::Multi(m) => m.compile(),
    };
    let n = engine.node_count();
    let base = NodeSet::new(n);
    let report = audit(
        &engine,
        claim,
        built.core_nodes(),
        &base,
        &SearchConfig {
            mode: SearchMode::Worst,
            threads,
            ..SearchConfig::default()
        },
    );
    let exhaustive = verify_tolerance(&engine, claim.faults, FaultStrategy::Exhaustive, threads);

    // Exact worst diameter agreement.
    prop_assert_eq!(
        report.worst,
        Some(exhaustive.worst_diameter),
        "{}: worst diameter disagrees",
        label
    );
    // Verdict agreement.
    let exhaustive_holds = exhaustive.satisfies(&claim);
    prop_assert_eq!(
        report.holds(),
        exhaustive_holds,
        "{}: verdicts disagree",
        label
    );
    // Both worst witnesses reproduce the same badness through the
    // route-walk reference (not the engine the search ran on).
    for witness in [&report.worst_witness, &exhaustive.worst_faults] {
        let faults = NodeSet::from_nodes(n, witness.iter().copied());
        let measured = match built.table() {
            BuiltTable::Single(r) => r.surviving_diameter(&faults),
            BuiltTable::Multi(m) => m.surviving_diameter(&faults),
        };
        prop_assert_eq!(
            measured,
            exhaustive.worst_diameter,
            "{}: witness {:?} does not reproduce the worst case",
            label,
            witness
        );
    }
    // A holds verdict must account for the whole space.
    if report.holds() {
        prop_assert_eq!(report.covered(), report.space, "{}: coverage gap", label);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Every applicable registry scheme, on every small suite graph,
    // with fault budgets up to 2 and claims both at and one below the
    // advertised bound: pruned (worst mode) == exhaustive, exactly.
    #[test]
    fn pruned_search_matches_exhaustive_for_every_scheme(
        threads in 1usize..4,
        tighten in 0u32..2,
    ) {
        let registry = SchemeRegistry::standard();
        for (name, graph) in small_suite() {
            for scheme in registry.iter() {
                let spec = SchemeSpec::named(scheme.name());
                let Ok(built) = scheme.build(&graph, &spec.params) else {
                    continue; // inapplicable on this graph
                };
                let g = built.guarantee();
                let f = g.faults.min(2);
                let claim = ToleranceClaim {
                    diameter: g.diameter.saturating_sub(tighten),
                    faults: f,
                };
                let label = format!("{name}/{}", scheme.name());
                cross_validate(&label, &built, claim, threads)?;
            }
        }
    }

    // Certificates round-trip bytewise and re-check; tampered hashes
    // and fabricated witnesses are rejected.
    #[test]
    fn certificates_round_trip_and_detect_tampering(
        graph_idx in 0usize..5,
        tighten in 0u32..2,
    ) {
        let (_, graph) = small_suite().swap_remove(graph_idx);
        let built = SchemeRegistry::standard()
            .build_spec(&graph, &SchemeSpec::named("kernel"))
            .expect("kernel applies everywhere connected");
        let engine = built.routing().expect("kernel is single-route").compile();
        let n = engine.node_count();
        let base = NodeSet::new(n);
        let g = built.guarantee();
        let claim = ToleranceClaim {
            diameter: g.diameter.saturating_sub(tighten),
            faults: g.faults.min(2),
        };
        let report = audit(&engine, claim, built.core_nodes(), &base, &SearchConfig {
            mode: SearchMode::Certify,
            threads: 1,
            ..SearchConfig::default()
        });
        prop_assert!(!matches!(report.verdict, Verdict::Exhausted));
        let cert = Certificate::for_scheme(
            &graph,
            built.spec(),
            g.theorem,
            &engine,
            &base,
            SearchMode::Certify,
            &report,
        );

        // Round trip: serialize → parse → identical → re-serialize
        // byte-identically → re-check passes.
        let text = cert.serialize();
        let (parsed, _) = Certificate::parse(&text).expect("parses");
        prop_assert_eq!(&parsed, &cert);
        prop_assert_eq!(parsed.serialize(), text.clone());
        let checked = check(&text).expect("fresh certificate re-checks");
        prop_assert_eq!(checked.holds, report.holds());

        // Tamper 1: flip the final hash digit — hash check fails.
        let trimmed = text.trim_end();
        let last = trimmed.chars().last().unwrap();
        let flipped = if last == '0' { '1' } else { '0' };
        let bad_hash = format!("{}{flipped}\n", &trimmed[..trimmed.len() - 1]);
        prop_assert!(matches!(check(&bad_hash), Err(CheckError::HashMismatch { .. })));

        // Tamper 2: flip the verdict content but re-fix the hash — the
        // semantic re-check fails instead.
        let mut forged = cert.clone();
        forged.verdict = match forged.verdict {
            CertVerdict::Holds => CertVerdict::Violated {
                diameter: Some(claim.diameter + 1),
                witness: vec![0],
            },
            CertVerdict::Violated { .. } => CertVerdict::Holds,
        };
        let forged_text = forged.serialize(); // hash matches the forgery
        match check(&forged_text) {
            Err(CheckError::WitnessMismatch(_)) | Err(CheckError::CoverageGap { .. }) => {}
            other => prop_assert!(false, "forged verdict accepted: {:?}", other),
        }
    }
}

//! `ftr-audit` — audit routings, emit and check tolerance certificates.
//!
//! ```text
//! ftr-audit audit   --graph SPEC (--scheme SCHEME | --routes FILE [--kind uni|bi])
//!                   [--claim-d D] [--claim-f F] [--mode certify|worst]
//!                   [--threads N] [--cap N] [--out FILE]
//! ftr-audit check   FILE
//! ftr-audit compare --graph SPEC --scheme SCHEME [--claim-d D] [--claim-f F] [--threads N]
//!
//! Graph specs:  petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C
//! Scheme specs: the shared SchemeSpec grammar (kernel, circular:k=6, …)
//! Routes file:  one route per line, whitespace-separated node ids; `#` comments
//! ```
//!
//! `audit` builds the routing (through the registry, or from literal
//! route lines), runs the branch-and-bound search against the claim
//! (default: the scheme's advertised guarantee) and writes the
//! certificate to stdout or `--out`. `check` independently re-validates
//! a certificate (hash, rebuild, accounting, witness re-measurement) and
//! exits non-zero on any failure. `compare` runs the pruned search *and*
//! the exhaustive verifier, reports both evaluation counts and fails if
//! the verdicts disagree.

use std::process::ExitCode;

use ftr_audit::{audit, check, Certificate, SearchConfig, SearchMode, Verdict};
use ftr_core::{check_claim, BuiltTable, Compile, SchemeRegistry, SchemeSpec, ToleranceClaim};
use ftr_graph::{spec::parse_graph_spec, Graph, NodeSet, Path};

fn main() -> ExitCode {
    // Anchor the shared monotonic clock at process start so any wall
    // timing recorded below is relative to launch.
    ftr_obs::monotonic_nanos();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("audit") => run_audit(&args[1..]),
        Some("check") => run_check(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ftr-audit: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "usage:\n  ftr-audit audit   --graph SPEC (--scheme SCHEME | --routes FILE [--kind uni|bi])\n\
         \x20                   [--claim-d D] [--claim-f F] [--mode certify|worst]\n\
         \x20                   [--threads N] [--cap N] [--out FILE]\n\
         \x20 ftr-audit check   FILE\n\
         \x20 ftr-audit compare --graph SPEC --scheme SCHEME [--claim-d D] [--claim-f F] [--threads N]"
    );
}

/// Flags shared by `audit` and `compare`.
struct Options {
    graph: Option<String>,
    scheme: Option<String>,
    routes: Option<String>,
    kind: ftr_core::RoutingKind,
    claim_d: Option<u32>,
    claim_f: Option<usize>,
    mode: SearchMode,
    threads: usize,
    cap: Option<u64>,
    out: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        graph: None,
        scheme: None,
        routes: None,
        kind: ftr_core::RoutingKind::Bidirectional,
        claim_d: None,
        claim_f: None,
        mode: SearchMode::Certify,
        threads: ftr_core::par::default_threads(),
        cap: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--graph" => opts.graph = Some(value("--graph")?),
            "--scheme" => opts.scheme = Some(value("--scheme")?),
            "--routes" => opts.routes = Some(value("--routes")?),
            "--kind" => {
                opts.kind = match value("--kind")?.as_str() {
                    "uni" => ftr_core::RoutingKind::Unidirectional,
                    "bi" => ftr_core::RoutingKind::Bidirectional,
                    other => return Err(format!("--kind wants uni|bi, got {other:?}")),
                }
            }
            "--claim-d" => {
                opts.claim_d = Some(
                    value("--claim-d")?
                        .parse()
                        .map_err(|e| format!("--claim-d: {e}"))?,
                )
            }
            "--claim-f" => {
                opts.claim_f = Some(
                    value("--claim-f")?
                        .parse()
                        .map_err(|e| format!("--claim-f: {e}"))?,
                )
            }
            "--mode" => {
                opts.mode =
                    SearchMode::from_token(&value("--mode")?).ok_or("--mode wants certify|worst")?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--cap" => opts.cap = Some(value("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?),
            "--out" => opts.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

impl Options {
    fn config(&self) -> SearchConfig {
        SearchConfig {
            mode: self.mode,
            threads: self.threads.max(1),
            max_visits: self.cap,
            min_prune_subtree: 8,
        }
    }

    fn graph(&self) -> Result<(Graph, String), String> {
        let spec = self.graph.as_deref().ok_or("--graph is required")?;
        parse_graph_spec(spec)
    }
}

/// The audited subject: a certificate-ready table plus its metadata.
enum Subject {
    Scheme(Box<ftr_core::BuiltRouting>),
    Routing(ftr_core::Routing),
}

impl Subject {
    fn build(opts: &Options, graph: &Graph) -> Result<Subject, String> {
        match (&opts.scheme, &opts.routes) {
            (Some(scheme), None) => {
                let spec: SchemeSpec = scheme.parse()?;
                let built = SchemeRegistry::standard()
                    .build_spec(graph, &spec)
                    .map_err(|e| e.to_string())?;
                Ok(Subject::Scheme(Box::new(built)))
            }
            (None, Some(path)) => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("--routes {path}: {e}"))?;
                let mut routing = ftr_core::Routing::new(graph.node_count(), opts.kind);
                for (lineno, line) in text.lines().enumerate() {
                    let line = line.split('#').next().unwrap_or("").trim();
                    if line.is_empty() {
                        continue;
                    }
                    let nodes: Vec<u32> = line
                        .split_whitespace()
                        .map(|t| {
                            t.parse()
                                .map_err(|_| format!("line {}: bad node {t:?}", lineno + 1))
                        })
                        .collect::<Result<_, _>>()?;
                    let path = Path::new(nodes).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                    routing
                        .insert(path)
                        .map_err(|e| format!("line {}: {e}", lineno + 1))?;
                }
                routing
                    .validate(graph)
                    .map_err(|e| format!("routes not valid in the graph: {e}"))?;
                routing.freeze();
                Ok(Subject::Routing(routing))
            }
            _ => Err("exactly one of --scheme / --routes is required".to_string()),
        }
    }

    fn claim(&self, opts: &Options) -> Result<ToleranceClaim, String> {
        match self {
            Subject::Scheme(built) => {
                let g = built.guarantee();
                Ok(ToleranceClaim {
                    diameter: opts.claim_d.unwrap_or(g.diameter),
                    faults: opts.claim_f.unwrap_or(g.faults),
                })
            }
            Subject::Routing(_) => Ok(ToleranceClaim {
                diameter: opts.claim_d.ok_or("--claim-d is required with --routes")?,
                faults: opts.claim_f.ok_or("--claim-f is required with --routes")?,
            }),
        }
    }

    fn engine(&self) -> ftr_core::CompiledRoutes {
        match self {
            Subject::Scheme(built) => match built.table() {
                BuiltTable::Single(r) => r.compile(),
                BuiltTable::Multi(m) => m.compile(),
            },
            Subject::Routing(r) => r.compile(),
        }
    }

    fn core_nodes(&self) -> &[u32] {
        match self {
            Subject::Scheme(built) => built.core_nodes(),
            Subject::Routing(_) => &[],
        }
    }

    fn certificate(
        &self,
        graph: &Graph,
        engine: &ftr_core::CompiledRoutes,
        base: &NodeSet,
        mode: SearchMode,
        report: &ftr_audit::AuditReport,
    ) -> Certificate {
        match self {
            Subject::Scheme(built) => Certificate::for_scheme(
                graph,
                built.spec(),
                built.guarantee().theorem,
                engine,
                base,
                mode,
                report,
            ),
            Subject::Routing(r) => Certificate::for_routing(graph, r, engine, base, mode, report),
        }
    }
}

fn run_audit(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let (graph, label) = opts.graph()?;
    let subject = Subject::build(&opts, &graph)?;
    let claim = subject.claim(&opts)?;
    let engine = subject.engine();
    let base = NodeSet::new(graph.node_count());
    let report = audit(&engine, claim, subject.core_nodes(), &base, &opts.config());
    match &report.verdict {
        Verdict::Holds => eprintln!(
            "{label}: {claim} HOLDS — {} visited + {} pruned = {} sets ({} subtrees cut) \
             in {:.3}s",
            report.visited,
            report.pruned_sets,
            report.space,
            report.pruned_subtrees,
            report.wall_nanos as f64 / 1e9
        ),
        Verdict::Violated { witness, diameter } => eprintln!(
            "{label}: {claim} VIOLATED by {witness:?} (diameter {}) after {} of {} sets \
             in {:.3}s",
            diameter.map_or("disconnect".to_string(), |d| d.to_string()),
            report.visited,
            report.space,
            report.wall_nanos as f64 / 1e9
        ),
        Verdict::Exhausted => {
            return Err(format!(
                "visit cap reached after {} evaluations — no verdict, no certificate",
                report.visited
            ))
        }
    }
    let cert = subject
        .certificate(&graph, &engine, &base, opts.mode, &report)
        .serialize();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &cert).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("wrote certificate to {path}");
        }
        None => print!("{cert}"),
    }
    Ok(())
}

fn run_check(args: &[String]) -> Result<(), String> {
    let path = match args {
        [path] => path,
        _ => return Err("check wants exactly one certificate file".to_string()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let checked = check(&text).map_err(|e| format!("{path}: INVALID — {e}"))?;
    println!(
        "{path}: VALID — {} {} {}",
        checked.source,
        checked.claim,
        if checked.holds {
            "holds (full accounting verified)".to_string()
        } else {
            format!(
                "violated (witness re-measured: {})",
                match checked.witness_diameter {
                    Some(Some(d)) => format!("diameter {d}"),
                    Some(None) => "disconnected".to_string(),
                    None => "-".to_string(),
                }
            )
        }
    );
    Ok(())
}

fn run_compare(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let (graph, label) = opts.graph()?;
    let subject = Subject::build(&opts, &graph)?;
    let claim = subject.claim(&opts)?;
    let engine = subject.engine();
    let base = NodeSet::new(graph.node_count());
    let report = audit(&engine, claim, subject.core_nodes(), &base, &opts.config());
    if matches!(report.verdict, Verdict::Exhausted) {
        return Err("pruned search hit its cap; raise --cap".to_string());
    }
    let (exhaustive_ok, exhaustive) = check_claim(&engine, &claim, opts.threads.max(1));
    let pruned_ok = report.holds();
    println!(
        "{label} {claim}: pruned {} in {} evaluations, exhaustive {} in {} — {:.1}x fewer",
        if pruned_ok { "holds" } else { "violated" },
        report.visited,
        if exhaustive_ok { "holds" } else { "violated" },
        exhaustive.sets_checked,
        exhaustive.sets_checked as f64 / report.visited.max(1) as f64
    );
    if pruned_ok != exhaustive_ok {
        return Err(format!(
            "VERDICT MISMATCH: pruned says {}, exhaustive says {} (worst {:?})",
            pruned_ok, exhaustive_ok, exhaustive.worst_diameter
        ));
    }
    Ok(())
}

//! The branch-and-bound adversarial fault-set searcher.
//!
//! The paper's theorems are universally quantified — *every* fault set
//! `F` with `|F| <= f` leaves surviving diameter `D(R/F) <= d` — and the
//! exhaustive verifier checks that by enumerating all `C(n, <=f)` sets.
//! This module decides the same question while visiting far fewer sets:
//!
//! * **Adversarial seeding.** Candidates are ordered by the
//!   construction's core nodes (separator / concentrator / poles) first,
//!   then by *route-coverage impact* — the number of route slots through
//!   each node, read off [`CompiledRoutes`]' inverted node→routes index.
//!   Likely-worst sets are tried first, so violations surface early.
//! * **Monotone pruning.** Killing more nodes only kills more routes.
//!   At a partial set `S` with remaining candidate suffix `C` and
//!   remaining budget `r`, the searcher builds the *unkillable graph*
//!   `H`: the arcs of the live route graph under `S` that **no**
//!   extension `T ⊆ C` can sever (some live slot's interior is disjoint
//!   from `C` — endpoints never sit on their own interior masks). If
//!   every ordered pair of non-`S` nodes is connected in `H` within the
//!   bound **without relaying through any node of `C`** (a relay might
//!   be faulted by `T`; an endpoint that survives `T` may still
//!   originate or terminate), then *no* extension can push the diameter
//!   past the bound and the whole subtree is cut. The test is sound: for
//!   any `T ⊆ C` and any pair alive under `S ∪ T`, the witnessing `H`
//!   path uses only unkillable arcs and relays outside `S ∪ C ⊇ S ∪ T`,
//!   so it survives verbatim.
//! * **Data-parallel subtrees.** Top-level subtrees (one per first
//!   fault) are explored by `ftr_core::par` workers through owned
//!   [`EpochState`] cursors; merges are ordered by enumeration key, so
//!   [`SearchMode::Worst`] results (verdict, worst diameter, witness
//!   *and* visit counts) are identical for every thread count.
//!
//! Every searched set is accounted for: `visited + pruned_sets` must
//! equal the whole space `Σ_{k<=f} C(m, k)` for a holds verdict — the
//! invariant the certificate checker re-verifies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ftr_core::{par, CompiledRoutes, EpochState, RouteTable, ToleranceClaim};
use ftr_graph::{BitMatrix, Node, NodeSet};

/// What the searcher is asked to establish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Decide the claim: stop at the first violating fault set (the
    /// fastest way to a verdict). The verdict is deterministic; with
    /// more than one thread the particular witness and the visit counts
    /// may vary between runs.
    Certify,
    /// Find the exact worst surviving diameter and a witness achieving
    /// it (prunes only subtrees that provably cannot beat the incumbent
    /// found earlier in enumeration order). Deterministic in verdict,
    /// worst value, witness and counts for every thread count.
    Worst,
}

impl SearchMode {
    /// The certificate token (`certify` / `worst`).
    pub fn token(self) -> &'static str {
        match self {
            SearchMode::Certify => "certify",
            SearchMode::Worst => "worst",
        }
    }

    /// Parses a [`SearchMode::token`] back.
    pub fn from_token(token: &str) -> Option<SearchMode> {
        match token {
            "certify" => Some(SearchMode::Certify),
            "worst" => Some(SearchMode::Worst),
            _ => None,
        }
    }
}

/// Searcher tuning knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Certify (first witness) or exact worst. Default: certify.
    pub mode: SearchMode,
    /// Worker threads for the top-level subtree fan-out.
    pub threads: usize,
    /// Hard cap on diameter evaluations; exceeding it aborts the search
    /// with [`Verdict::Exhausted`] instead of running away on a space
    /// the pruning cannot tame.
    pub max_visits: Option<u64>,
    /// Only run the prune test on subtrees at least this large (the test
    /// costs about two diameter evaluations, so tiny subtrees are
    /// cheaper to enumerate).
    pub min_prune_subtree: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            mode: SearchMode::Certify,
            threads: par::default_threads(),
            max_visits: None,
            min_prune_subtree: 8,
        }
    }
}

/// The searcher's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every fault set within budget keeps the surviving diameter within
    /// the bound — certified by full accounting (visited + pruned =
    /// space).
    Holds,
    /// A counterexample: `witness` (the full fault set, base included)
    /// drives the surviving diameter to `diameter` (`None` =
    /// disconnection), which exceeds the claim.
    Violated {
        /// The violating fault set, ascending.
        witness: Vec<Node>,
        /// Its surviving diameter (`None` = disconnected).
        diameter: Option<u32>,
    },
    /// The visit cap was reached before a verdict.
    Exhausted,
}

/// Result of one audit search, with full searched-space accounting.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The `(d, f)` claim that was searched.
    pub claim: ToleranceClaim,
    /// The verdict.
    pub verdict: Verdict,
    /// Exact worst surviving diameter over the space — filled only in
    /// [`SearchMode::Worst`] (`Some(None)` means disconnection).
    pub worst: Option<Option<u32>>,
    /// A fault set achieving [`AuditReport::worst`] (empty unless worst
    /// mode ran).
    pub worst_witness: Vec<Node>,
    /// Diameter evaluations performed (the "fault sets visited" count
    /// compared against exhaustive enumeration).
    pub visited: u64,
    /// Prune tests attempted.
    pub prune_tests: u64,
    /// Subtrees cut by the monotone prune.
    pub pruned_subtrees: u64,
    /// Fault sets covered by pruning instead of evaluation.
    pub pruned_sets: u64,
    /// Total space `Σ_{k<=f} C(m, k)` over the `m` candidate nodes.
    pub space: u64,
    /// Candidate count `m` (nodes not already in the base fault set).
    pub candidates: usize,
    /// How many candidates were seeded from the construction's core
    /// nodes (ordered ahead of the impact ranking).
    pub core_seeds: usize,
    /// Wall-clock duration of the search in nanoseconds (measured
    /// inside [`audit`], covering seeding, prune precomputation and the
    /// parallel exploration).
    pub wall_nanos: u64,
}

impl AuditReport {
    /// Sets accounted for: evaluated plus provably-covered-by-pruning.
    /// Equals [`AuditReport::space`] whenever the verdict is
    /// [`Verdict::Holds`].
    pub fn covered(&self) -> u64 {
        self.visited.saturating_add(self.pruned_sets)
    }

    /// `true` iff the verdict is [`Verdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self.verdict, Verdict::Holds)
    }
}

/// `C(n, k)` with saturation at `u64::MAX`.
fn binom(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = match acc.checked_mul(n - i) {
            Some(x) => x / (i + 1),
            None => return u64::MAX,
        };
    }
    acc
}

/// `Σ_{j=1..=k} C(n, j)` with saturation — the size of the extension
/// subtree below a node with `n` remaining candidates and `k` remaining
/// budget.
fn sets_below(n: u64, k: u64) -> u64 {
    let mut total: u64 = 0;
    for j in 1..=k.min(n) {
        total = total.saturating_add(binom(n, j));
    }
    total
}

/// The whole space `Σ_{k=0..=f} C(m, k)` of fault sets an audit over `m`
/// candidates and budget `f` quantifies over (the exhaustive verifier's
/// `sets_checked`).
pub fn search_space(candidates: usize, faults: usize) -> u64 {
    1u64.saturating_add(sets_below(candidates as u64, faults as u64))
}

/// A measured fault set: its badness and the enumeration key that broke
/// ties when it was found.
#[derive(Debug, Clone)]
struct Found {
    /// `None` = disconnected (worse than any finite diameter).
    diameter: Option<u32>,
    key: u64,
    faults: Vec<Node>,
}

impl Found {
    /// Strictly-better-than ordering for merges: worse diameter wins;
    /// ties go to the smaller enumeration key.
    fn beats(&self, other: &Found) -> bool {
        match (self.diameter, other.diameter) {
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => self.key < other.key,
            (Some(a), Some(b)) => a > b || (a == b && self.key < other.key),
        }
    }

    fn violates(&self, claim: &ToleranceClaim) -> bool {
        match self.diameter {
            None => true,
            Some(d) => d > claim.diameter,
        }
    }
}

/// Shared read-only search context.
struct Ctx<'a> {
    engine: &'a CompiledRoutes,
    claim: ToleranceClaim,
    mode: SearchMode,
    min_prune_subtree: u64,
    /// Impact-ordered candidate nodes.
    order: Vec<Node>,
    /// Per slot: the smallest suffix index `j` at which the slot is
    /// unkillable (no interior node sits at position `>= j`); `u32::MAX`
    /// for slots through base faults (never live).
    unkillable_from: Vec<u32>,
    /// Suffix candidate masks, `(m + 1) * stride` words: row `j` holds
    /// the word mask of `order[j..]`.
    suffix: Vec<u64>,
    stride: usize,
    /// Word mask of all `n` nodes.
    full: Vec<u64>,
    /// Global eval counter (visit-cap enforcement).
    evals: AtomicU64,
    cap: u64,
    /// Cooperative abort: first witness found (certify) or cap hit.
    stop: AtomicBool,
}

/// Per-worker mutable search state.
struct Local {
    state: EpochState,
    /// Scratch for the unkillable graph `H`.
    h: BitMatrix,
    /// All-zero matrix used to reset `h` without reallocating.
    zeros: BitMatrix,
    visited: u64,
    prune_tests: u64,
    pruned_subtrees: u64,
    pruned_sets: u64,
    best: Option<Found>,
    exhausted: bool,
}

impl Local {
    /// Records a measurement; in worst mode keeps the global maximum, in
    /// certify mode only a violation (and trips the stop flag).
    fn record(&mut self, ctx: &Ctx<'_>, diameter: Option<u32>, key: u64) {
        let found = || Found {
            diameter,
            key,
            faults: {
                let mut f: Vec<Node> = self.state.faults().iter().collect();
                f.sort_unstable();
                f
            },
        };
        match ctx.mode {
            SearchMode::Worst => {
                let cand = found();
                if self.best.as_ref().is_none_or(|b| cand.beats(b)) {
                    self.best = Some(cand);
                }
            }
            SearchMode::Certify => {
                if self.best.is_none() {
                    let cand = found();
                    if cand.violates(&ctx.claim) {
                        self.best = Some(cand);
                        ctx.stop.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// One diameter evaluation, with cap enforcement.
    fn eval(&mut self, ctx: &Ctx<'_>, key: u64) -> Option<u32> {
        self.visited += 1;
        if ctx.evals.fetch_add(1, Ordering::Relaxed) + 1 > ctx.cap {
            self.exhausted = true;
            ctx.stop.store(true, Ordering::Relaxed);
        }
        let d = self.state.diameter();
        self.record(ctx, d, key);
        d
    }
}

/// Audits the claim "every extension of `base` by at most `claim.faults`
/// of the remaining nodes keeps `D(R/F) <= claim.diameter`" against the
/// compiled engine, by seeded branch-and-bound (see the module docs).
///
/// `core_nodes` (the construction's separator / concentrator / poles,
/// from `BuiltRouting::core_nodes`; may be empty) are tried first;
/// remaining candidates follow in descending route-coverage impact.
/// `base` is a pre-existing fault set the claim quantifies *on top of*
/// (the online `TOLERATE` case) — pass an empty set to audit the pristine
/// routing.
///
/// # Panics
///
/// Panics if `base` is sized for a different node count, a core node is
/// out of range, or `config.threads == 0`.
pub fn audit(
    engine: &CompiledRoutes,
    claim: ToleranceClaim,
    core_nodes: &[Node],
    base: &NodeSet,
    config: &SearchConfig,
) -> AuditReport {
    assert!(config.threads > 0, "at least one search thread is required");
    let wall_start = std::time::Instant::now();
    let n = engine.node_count();
    assert_eq!(
        base.capacity(),
        n,
        "base fault set capacity must equal the routing's node count"
    );
    let stride = n.div_ceil(64);

    // ---- adversarial seeding: core nodes first, then impact ----------
    let mut is_core = vec![false; n];
    for &v in core_nodes {
        assert!((v as usize) < n, "core node {v} out of range");
        is_core[v as usize] = true;
    }
    let mut order: Vec<Node> = (0..n as Node).filter(|&v| !base.contains(v)).collect();
    let core_seeds = order.iter().filter(|&&v| is_core[v as usize]).count();
    order.sort_by_key(|&v| {
        (
            !is_core[v as usize],
            std::cmp::Reverse(engine.routes_through(v)),
            v,
        )
    });
    let m = order.len();
    let f = claim.faults.min(m);
    let space = search_space(m, f);

    // ---- prune-test precomputation -----------------------------------
    let mut pos = vec![u32::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    let mut unkillable_from = vec![0u32; engine.slot_count()];
    for (slot, from) in unkillable_from.iter_mut().enumerate() {
        for v in engine.slot_interior(slot) {
            let p = pos[v as usize];
            *from = (*from).max(if p == u32::MAX {
                u32::MAX // interior touches a base fault: never live
            } else {
                p + 1
            });
        }
    }
    let mut suffix = vec![0u64; (m + 1) * stride];
    for j in (0..m).rev() {
        let (head, tail) = suffix.split_at_mut((j + 1) * stride);
        head[j * stride..].copy_from_slice(&tail[..stride]);
        let v = order[j] as usize;
        head[j * stride + v / 64] |= 1u64 << (v % 64);
    }
    let mut full = vec![!0u64; stride];
    if stride > 0 && !n.is_multiple_of(64) {
        full[stride - 1] = (1u64 << (n % 64)) - 1;
    }

    let ctx = Ctx {
        engine,
        claim,
        mode: config.mode,
        min_prune_subtree: config.min_prune_subtree.max(1),
        order,
        unkillable_from,
        suffix,
        stride,
        full,
        evals: AtomicU64::new(0),
        cap: config.max_visits.unwrap_or(u64::MAX),
        stop: AtomicBool::new(false),
    };

    // ---- the base set itself (enumeration key 0) ---------------------
    let mut root = Local::new(&ctx, base);
    let base_diam = root.eval(&ctx, 0);
    let base_found = Found {
        diameter: base_diam,
        key: 0,
        faults: {
            let mut b: Vec<Node> = base.iter().collect();
            b.sort_unstable();
            b
        },
    };

    // ---- parallel top-level subtrees ---------------------------------
    // Nothing to explore when the base itself settles the question: a
    // certify violation, a worst-mode disconnection (maximal badness at
    // the smallest key), a spent cap, or a zero budget.
    let settled = f == 0
        || root.exhausted
        || (ctx.mode == SearchMode::Certify && root.best.is_some())
        || (ctx.mode == SearchMode::Worst && base_diam.is_none());
    let locals = if settled {
        Vec::new()
    } else {
        par::map_workers(m, config.threads, |next| {
            let mut local = Local::new(&ctx, base);
            while let Some(i) = next() {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
                local.explore_subtree(&ctx, i, f, base_diam);
            }
            local
        })
    };

    // ---- merge --------------------------------------------------------
    let mut visited = root.visited;
    let mut prune_tests = root.prune_tests;
    let mut pruned_subtrees = root.pruned_subtrees;
    let mut pruned_sets = root.pruned_sets;
    let mut exhausted = root.exhausted;
    let mut best = match ctx.mode {
        SearchMode::Worst => Some(base_found.clone()),
        SearchMode::Certify => root.best.clone(),
    };
    for local in locals {
        visited = visited.saturating_add(local.visited);
        prune_tests += local.prune_tests;
        pruned_subtrees += local.pruned_subtrees;
        pruned_sets = pruned_sets.saturating_add(local.pruned_sets);
        exhausted |= local.exhausted;
        if let Some(cand) = local.best {
            let better = match (&best, ctx.mode) {
                (None, _) => true,
                (Some(b), SearchMode::Worst) => cand.beats(b),
                // Certify: keep the smallest-key violation seen.
                (Some(b), SearchMode::Certify) => cand.key < b.key,
            };
            if better {
                best = Some(cand);
            }
        }
    }

    let (verdict, worst, worst_witness) = if exhausted {
        // A found violation is sound whatever the coverage — the witness
        // stands on its own — so it takes precedence over Exhausted.
        // Exactness claims (`worst`) are dropped: the cap may have cut
        // the search before the true maximum.
        match best {
            Some(b) if b.violates(&claim) => (
                Verdict::Violated {
                    witness: b.faults,
                    diameter: b.diameter,
                },
                None,
                Vec::new(),
            ),
            _ => (Verdict::Exhausted, None, Vec::new()),
        }
    } else {
        match ctx.mode {
            SearchMode::Worst => {
                let b = best.expect("worst mode always measures the base set");
                let verdict = if b.violates(&claim) {
                    Verdict::Violated {
                        witness: b.faults.clone(),
                        diameter: b.diameter,
                    }
                } else {
                    Verdict::Holds
                };
                (verdict, Some(b.diameter), b.faults)
            }
            SearchMode::Certify => match best {
                Some(b) => (
                    Verdict::Violated {
                        witness: b.faults,
                        diameter: b.diameter,
                    },
                    None,
                    Vec::new(),
                ),
                None => (Verdict::Holds, None, Vec::new()),
            },
        }
    };
    if matches!(verdict, Verdict::Holds) && ctx.mode == SearchMode::Certify {
        debug_assert_eq!(
            visited.saturating_add(pruned_sets),
            space,
            "a holds verdict must account for the whole space"
        );
    }

    AuditReport {
        claim,
        verdict,
        worst,
        worst_witness,
        visited,
        prune_tests,
        pruned_subtrees,
        pruned_sets,
        space,
        candidates: m,
        core_seeds,
        wall_nanos: wall_start.elapsed().as_nanos() as u64,
    }
}

impl Local {
    fn new(ctx: &Ctx<'_>, base: &NodeSet) -> Self {
        let mut state = ctx.engine.epoch_state();
        for v in base.iter() {
            state.insert(ctx.engine, v);
        }
        let n = ctx.engine.node_count();
        Local {
            state,
            h: BitMatrix::new(n),
            zeros: BitMatrix::new(n),
            visited: 0,
            prune_tests: 0,
            pruned_subtrees: 0,
            pruned_sets: 0,
            best: None,
            exhausted: false,
        }
    }

    /// Explores the top-level subtree whose first fault is `order[i]`
    /// (extensions drawn from `order[i + 1..]`). Each subtree carries
    /// its own worst-mode incumbent seeded from the base diameter, so
    /// exploration is identical however subtrees land on workers.
    fn explore_subtree(&mut self, ctx: &Ctx<'_>, i: usize, f: usize, base_diam: Option<u32>) {
        let m = ctx.order.len();
        // Whole-subtree prune: if no fault set drawn from `order[i..]`
        // can beat the limit, every set whose *first* (highest-impact)
        // member is `order[i]` is covered without a single evaluation —
        // with impact ordering this wipes out the low-impact tail.
        // (`sets_below` saturates, so everything downstream of it must
        // too — a wrapped count would silently disable the prune.)
        let subtree = sets_below((m - i - 1) as u64, f as u64 - 1).saturating_add(1);
        let limit = match ctx.mode {
            SearchMode::Certify => Some(ctx.claim.diameter),
            SearchMode::Worst => base_diam,
        };
        if subtree >= ctx.min_prune_subtree {
            if let Some(limit) = limit {
                self.prune_tests += 1;
                if self.extensions_stay_within(ctx, i, limit) {
                    self.pruned_subtrees += 1;
                    self.pruned_sets = self.pruned_sets.saturating_add(subtree);
                    return;
                }
            }
        }
        let first = ctx.order[i];
        let mut key = (i as u64 + 1) << 40;
        self.state.insert(ctx.engine, first);
        let d = self.eval(ctx, key);
        let mut incumbent = match (base_diam, d) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let disconnected = d.is_none();
        if f >= 2 && !disconnected && !(ctx.mode == SearchMode::Certify && self.best.is_some()) {
            self.descend(ctx, i + 1, f - 1, &mut key, &mut incumbent);
        }
        self.state.remove(ctx.engine, first);
    }

    /// Depth-first extension with budget `budget` over `order[from..]`,
    /// entered only below an evaluated set. The monotone prune test runs
    /// at *entry*: if no extension of the current set drawn from
    /// `order[from..]` can beat the limit, the whole level (and
    /// everything below it) is covered at the cost of roughly one
    /// evaluation. `key` tracks the sequential enumeration position
    /// (pruned subtrees advance it by their size, so keys are identical
    /// with and without pruning). Returns `true` if a disconnection was
    /// found (nothing can be worse: the caller's subtree stops).
    fn descend(
        &mut self,
        ctx: &Ctx<'_>,
        from: usize,
        budget: usize,
        key: &mut u64,
        incumbent: &mut Option<u32>,
    ) -> bool {
        let m = ctx.order.len();
        let subtree = sets_below((m - from) as u64, budget as u64);
        if subtree == 0 {
            return false;
        }
        if subtree >= ctx.min_prune_subtree {
            let limit = match ctx.mode {
                SearchMode::Certify => Some(ctx.claim.diameter),
                SearchMode::Worst => *incumbent,
            };
            if let Some(limit) = limit {
                self.prune_tests += 1;
                if self.extensions_stay_within(ctx, from, limit) {
                    self.pruned_subtrees += 1;
                    self.pruned_sets = self.pruned_sets.saturating_add(subtree);
                    *key = key.saturating_add(subtree);
                    return false;
                }
            }
        }
        for i in from..m {
            if ctx.stop.load(Ordering::Relaxed) {
                return false;
            }
            let v = ctx.order[i];
            self.state.insert(ctx.engine, v);
            *key += 1;
            let d = self.eval(ctx, *key);
            if ctx.mode == SearchMode::Certify && self.best.is_some() {
                self.state.remove(ctx.engine, v);
                return false;
            }
            if d.is_none() {
                // Disconnected: maximal badness, and DFS order means the
                // first one found carries the subtree's smallest key.
                self.state.remove(ctx.engine, v);
                return true;
            }
            if let (Some(cur), Some(inc)) = (d, incumbent.as_mut()) {
                *inc = (*inc).max(cur);
            }
            if budget >= 2 && self.descend(ctx, i + 1, budget - 1, key, incumbent) {
                self.state.remove(ctx.engine, v);
                return true;
            }
            self.state.remove(ctx.engine, v);
        }
        false
    }

    /// The monotone prune test: with the current fault set `S` and the
    /// candidate suffix `C = order[j..]`, can *every* extension `T ⊆ C`
    /// keep every surviving pair within `limit` hops?
    ///
    /// Sound because it only uses structure no extension can destroy:
    /// arcs with a live slot whose interior avoids `C` entirely, relayed
    /// through nodes outside `S ∪ C`. Endpoints may come from `C` (a
    /// candidate that stays healthy still queries), which is why the
    /// BFS lets every non-`S` node originate and terminate but only
    /// lets non-candidates relay.
    fn extensions_stay_within(&mut self, ctx: &Ctx<'_>, j: usize, limit: u32) -> bool {
        let engine = ctx.engine;
        let stride = ctx.stride;
        // H: arcs unkillable by any subset of the suffix.
        self.h.copy_from(&self.zeros);
        for (p, &(s, d)) in engine.pairs().iter().enumerate() {
            let unkillable = engine
                .pair_slot_range(p)
                .any(|slot| self.state.slot_live(slot) && ctx.unkillable_from[slot] as usize <= j);
            if unkillable {
                self.h.set(s, d);
            }
        }
        // Endpoints: everything outside S. Relays: endpoints minus C.
        let s_words = self.state.faults().words();
        let suffix = &ctx.suffix[j * stride..(j + 1) * stride];
        let mut endpoints = vec![0u64; stride];
        let mut relays = vec![0u64; stride];
        for w in 0..stride {
            endpoints[w] = ctx.full[w] & !s_words[w];
            relays[w] = endpoints[w] & !suffix[w];
        }
        // Every endpoint must reach every other endpoint within `limit`
        // hops, relaying only through `relays`.
        let mut visited = vec![0u64; stride];
        let mut frontier = vec![0u64; stride];
        let mut next = vec![0u64; stride];
        for wi in 0..stride {
            let mut bits = endpoints[wi];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let src = wi * 64 + b;
                visited.fill(0);
                frontier.fill(0);
                visited[wi] |= 1u64 << b;
                frontier[wi] |= 1u64 << b;
                let mut covered = covers(&visited, &endpoints);
                let mut depth = 0;
                // The source expands unconditionally (it is an endpoint);
                // later levels expand only through allowed relays.
                let mut first = true;
                while !covered && depth < limit {
                    next.fill(0);
                    let mut any = false;
                    for fw in 0..stride {
                        // The source itself may be a candidate; its own
                        // arcs still originate from it (level one), but
                        // later levels expand only through safe relays.
                        let mut fbits = if first {
                            frontier[fw]
                        } else {
                            frontier[fw] & relays[fw]
                        };
                        while fbits != 0 {
                            let fb = fbits.trailing_zeros() as usize;
                            fbits &= fbits - 1;
                            let row = self.h.row((fw * 64 + fb) as Node);
                            for (nw, &rw) in next.iter_mut().zip(row) {
                                *nw |= rw;
                            }
                        }
                    }
                    for w in 0..stride {
                        next[w] &= endpoints[w] & !visited[w];
                        visited[w] |= next[w];
                        any |= next[w] != 0;
                    }
                    if !any {
                        break;
                    }
                    depth += 1;
                    first = false;
                    std::mem::swap(&mut frontier, &mut next);
                    covered = covers(&visited, &endpoints);
                }
                if !covered {
                    return false;
                }
                debug_assert!(visited[src / 64] & (1u64 << (src % 64)) != 0);
            }
        }
        true
    }
}

/// `visited ⊇ targets`, word-wise.
fn covers(visited: &[u64], targets: &[u64]) -> bool {
    visited.iter().zip(targets).all(|(v, t)| v & t == *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{verify_tolerance, Compile, FaultStrategy, KernelRouting, Routing, RoutingKind};
    use ftr_graph::{gen, Path};

    fn ring_routing(n: usize) -> Routing {
        let mut r = Routing::new(n, RoutingKind::Bidirectional);
        for u in 0..n as Node {
            r.insert(Path::edge(u, (u + 1) % n as Node).unwrap())
                .unwrap();
        }
        r
    }

    fn cfg(mode: SearchMode, threads: usize) -> SearchConfig {
        SearchConfig {
            mode,
            threads,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn binomials_and_space() {
        assert_eq!(binom(10, 2), 45);
        assert_eq!(binom(5, 0), 1);
        assert_eq!(binom(3, 5), 0);
        assert_eq!(search_space(10, 2), 56);
        assert_eq!(search_space(3, 9), 8);
        assert_eq!(search_space(u64::MAX as usize >> 1, 3), u64::MAX);
    }

    #[test]
    fn petersen_kernel_claim_holds_with_full_accounting() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let claim = kernel.guarantee_theorem_3().claim();
        for threads in [1, 4] {
            let report = audit(
                &engine,
                claim,
                kernel.separator(),
                &NodeSet::new(10),
                &cfg(SearchMode::Certify, threads),
            );
            assert_eq!(report.verdict, Verdict::Holds, "threads {threads}");
            assert_eq!(report.covered(), report.space, "threads {threads}");
            assert_eq!(report.space, 56);
            assert_eq!(report.core_seeds, 3);
        }
    }

    #[test]
    fn ring_disconnection_is_found_fast() {
        // C16 edge routes: fault-free route-graph diameter is 8 (the
        // claim holds at the base), but any single fault already blows
        // past it and fault pairs disconnect — a violation sits right
        // at the front of the enumeration.
        let engine = ring_routing(16).compile();
        let claim = ToleranceClaim {
            diameter: 8,
            faults: 2,
        };
        let report = audit(
            &engine,
            claim,
            &[],
            &NodeSet::new(16),
            &cfg(SearchMode::Certify, 1),
        );
        match &report.verdict {
            Verdict::Violated { witness, diameter } => {
                assert!(diameter.is_none() || diameter.unwrap() > 8);
                assert!(!witness.is_empty());
            }
            other => panic!("expected a violation, got {other:?}"),
        }
        assert!(
            report.visited < report.space / 5,
            "seeding should find the witness early: {} of {}",
            report.visited,
            report.space
        );
    }

    #[test]
    fn worst_mode_matches_exhaustive_verifier() {
        for (graph, f) in [(gen::petersen(), 2), (gen::torus(3, 4).unwrap(), 2)] {
            let kernel = KernelRouting::build(&graph).unwrap();
            let engine = kernel.routing().compile();
            let exhaustive = verify_tolerance(&engine, f, FaultStrategy::Exhaustive, 2);
            let claim = ToleranceClaim {
                diameter: 0, // forces worst mode to classify as violated
                faults: f,
            };
            let report = audit(
                &engine,
                claim,
                kernel.separator(),
                &NodeSet::new(graph.node_count()),
                &cfg(SearchMode::Worst, 2),
            );
            assert_eq!(report.worst, Some(exhaustive.worst_diameter));
            // The witness reproduces the worst diameter independently.
            let witness = NodeSet::from_nodes(graph.node_count(), report.worst_witness.clone());
            use ftr_core::RouteTable;
            assert_eq!(
                kernel.routing().surviving_diameter(&witness),
                exhaustive.worst_diameter
            );
        }
    }

    #[test]
    fn worst_mode_is_thread_count_invariant() {
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let claim = kernel.guarantee_theorem_3().claim();
        let solo = audit(
            &engine,
            claim,
            kernel.separator(),
            &NodeSet::new(12),
            &cfg(SearchMode::Worst, 1),
        );
        for threads in [2, 4] {
            let multi = audit(
                &engine,
                claim,
                kernel.separator(),
                &NodeSet::new(12),
                &cfg(SearchMode::Worst, threads),
            );
            assert_eq!(solo.verdict, multi.verdict, "threads {threads}");
            assert_eq!(solo.worst, multi.worst);
            assert_eq!(solo.worst_witness, multi.worst_witness);
            assert_eq!(solo.visited, multi.visited);
            assert_eq!(solo.pruned_sets, multi.pruned_sets);
        }
    }

    #[test]
    fn base_faults_shift_the_quantifier() {
        // TOLERATE semantics: extensions of an existing fault set.
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let base = NodeSet::from_nodes(10, [1, 6]);
        let claim = ToleranceClaim {
            diameter: 8,
            faults: 1,
        };
        let report = audit(&engine, claim, &[], &base, &cfg(SearchMode::Worst, 1));
        assert_eq!(report.candidates, 8);
        assert_eq!(report.space, 9); // base + 8 single extensions
                                     // Brute force over the same space.
        use ftr_core::RouteTable;
        let mut brute: Option<Option<u32>> = None;
        for extra in [
            None,
            Some(0u32),
            Some(2),
            Some(3),
            Some(4),
            Some(5),
            Some(7),
            Some(8),
            Some(9),
        ] {
            let mut faults = base.clone();
            if let Some(v) = extra {
                faults.insert(v);
            }
            let d = engine.surviving_diameter(&faults);
            brute = Some(match brute {
                None => d,
                Some(None) => None,
                Some(Some(w)) => d.map(|x| w.max(x)),
            });
        }
        assert_eq!(report.worst, brute);
    }

    #[test]
    fn visit_cap_reports_exhausted() {
        // The Petersen kernel claim holds everywhere, so a certify run
        // must cover the whole space — a tiny cap stops it mid-search.
        let g = gen::petersen();
        let engine = KernelRouting::build(&g).unwrap().routing().compile();
        let claim = ToleranceClaim {
            diameter: 4,
            faults: 2,
        };
        let report = audit(
            &engine,
            claim,
            &[],
            &NodeSet::new(10),
            &SearchConfig {
                mode: SearchMode::Certify,
                threads: 1,
                max_visits: Some(3),
                min_prune_subtree: u64::MAX, // no pruning: force the cap
            },
        );
        assert_eq!(report.verdict, Verdict::Exhausted);
    }

    #[test]
    fn found_violation_beats_the_visit_cap() {
        // C16 ring with a bound the base already satisfies but single
        // faults break: the cap trips on (or right after) the very
        // evaluation that finds the witness — the sound Violated
        // verdict must win over Exhausted.
        let engine = ring_routing(16).compile();
        let claim = ToleranceClaim {
            diameter: 8,
            faults: 2,
        };
        let report = audit(
            &engine,
            claim,
            &[],
            &NodeSet::new(16),
            &SearchConfig {
                mode: SearchMode::Certify,
                threads: 1,
                max_visits: Some(2),
                min_prune_subtree: u64::MAX,
            },
        );
        match report.verdict {
            Verdict::Violated { ref witness, .. } => assert!(!witness.is_empty()),
            ref other => panic!("expected the found witness to survive the cap, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_checks_only_the_base() {
        let engine = ring_routing(8).compile();
        let claim = ToleranceClaim {
            diameter: 4,
            faults: 0,
        };
        let report = audit(
            &engine,
            claim,
            &[],
            &NodeSet::new(8),
            &cfg(SearchMode::Certify, 2),
        );
        assert_eq!(report.visited, 1);
        assert_eq!(report.verdict, Verdict::Holds); // C8 diameter 4
    }
}

//! `ftr-audit` — adversarial fault-set search with machine-checkable
//! tolerance certificates.
//!
//! The paper's bounds are universally quantified; the exhaustive
//! verifier establishes them by brute force over `C(n, <=f)` fault
//! sets. This crate decides the same question orders of magnitude
//! faster and leaves a durable, independently re-checkable artifact:
//!
//! * [`audit`] — the branch-and-bound searcher (adversarial seeding
//!   from core nodes + route-coverage impact, monotone pruning over the
//!   compiled engine's incremental cursor, data-parallel subtrees);
//!   see the [`search`] module docs for the soundness argument.
//! * [`Certificate`] / [`check`] — a deterministic text format carrying
//!   the rebuildable source, the claim, searched-space accounting, the
//!   verdict (holds, or a witness) and a content hash, plus the
//!   independent re-checker that re-measures witnesses through the
//!   route-walk reference implementation.
//! * [`audit_built`] / [`plan_audited`] — the stack wiring: audit a
//!   [`BuiltRouting`]'s advertised [`ftr_core::Guarantee`] and, on a
//!   holds verdict, upgrade it from *advertised* to *audited*
//!   (`Guarantee::audited`); `plan_audited` does the same to a
//!   [`Planner`] winner.
//!
//! The `ftr-audit` CLI exposes all of it (`audit`, `check`,
//! `compare --exhaustive`); `ftr-serve` delegates its `TOLERATE` sweep
//! and new `AUDIT` verb here; experiment E19 and the `e19_audit` bench
//! measure pruned-vs-exhaustive evaluation counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod search;

pub use certificate::{check, CertVerdict, Certificate, CheckError, Checked, Source};
pub use search::{audit, search_space, AuditReport, SearchConfig, SearchMode, Verdict};

use ftr_core::{
    BuiltRouting, BuiltTable, Compile, Plan, PlanError, Planner, PlannerRequest, ToleranceClaim,
};
use ftr_graph::{Graph, NodeSet};

/// Audits a [`BuiltRouting`]'s guarantee (or a caller-tightened `claim`
/// override) and assembles the matching certificate.
///
/// On a holds verdict the routing's guarantee is upgraded from
/// advertised to audited ([`ftr_core::Guarantee::audited`]) — but only
/// when the audited claim covers the guarantee (same fault budget, a
/// diameter at most the guaranteed one).
///
/// `input_graph` is the graph the scheme was built on — for every
/// scheme except augmentation that equals [`BuiltRouting::graph`], and
/// the certificate records it so the checker can rebuild the scheme.
///
/// # Panics
///
/// Panics if the search exhausts its visit cap (pass `None` for
/// unbounded) — an exhausted search certifies nothing.
pub fn audit_built(
    built: &mut BuiltRouting,
    input_graph: &Graph,
    claim: Option<ToleranceClaim>,
    config: &SearchConfig,
) -> (AuditReport, Certificate) {
    let engine = match built.table() {
        BuiltTable::Single(r) => r.compile(),
        BuiltTable::Multi(m) => m.compile(),
    };
    let claim = claim.unwrap_or_else(|| built.guarantee().claim());
    let base = NodeSet::new(engine_nodes(&engine));
    let report = audit(&engine, claim, built.core_nodes(), &base, config);
    assert!(
        !matches!(report.verdict, Verdict::Exhausted),
        "audit hit its visit cap; nothing to certify"
    );
    let guarantee = *built.guarantee();
    if report.holds() && claim.faults >= guarantee.faults && claim.diameter <= guarantee.diameter {
        built.upgrade_audited();
    }
    let cert = Certificate::for_scheme(
        input_graph,
        built.spec(),
        guarantee.theorem,
        &engine,
        &base,
        config.mode,
        &report,
    );
    (report, cert)
}

fn engine_nodes(engine: &ftr_core::CompiledRoutes) -> usize {
    use ftr_core::RouteTable;
    engine.node_count()
}

/// Plans a routing and audits the winner's guarantee in one step: the
/// planner surveys and ranks as usual, then the winner's advertised
/// bound is searched; a holds verdict upgrades it to audited.
///
/// # Errors
///
/// The planner's own [`PlanError`] when nothing applicable builds. A
/// winner whose audit finds a witness is **not** an error — the plan is
/// returned with the guarantee left advertised and the violating
/// certificate attached (a construction bug worth surfacing loudly, but
/// the caller decides).
pub fn plan_audited(
    planner: &Planner,
    graph: &Graph,
    request: &PlannerRequest,
    config: &SearchConfig,
) -> Result<(Plan, AuditReport, Certificate), PlanError> {
    let mut plan = planner.plan(graph, request)?;
    let (report, cert) = audit_built(&mut plan.winner, graph, None, config);
    Ok((plan, report, cert))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_graph::gen;

    #[test]
    fn audit_built_upgrades_to_audited() {
        let g = gen::petersen();
        let mut built = ftr_core::SchemeRegistry::standard()
            .build_spec(&g, &ftr_core::SchemeSpec::named("kernel"))
            .unwrap();
        assert!(!built.guarantee().audited);
        let (report, cert) = audit_built(&mut built, &g, None, &SearchConfig::default());
        assert!(report.holds(), "{:?}", report.verdict);
        assert!(built.guarantee().audited);
        assert!(built.guarantee().to_string().contains("[audited]"));
        check(&cert.serialize()).expect("certificate re-checks");
    }

    #[test]
    fn tightened_violation_does_not_upgrade() {
        let g = gen::petersen();
        let mut built = ftr_core::SchemeRegistry::standard()
            .build_spec(&g, &ftr_core::SchemeSpec::named("kernel"))
            .unwrap();
        // The kernel's worst diameter on Petersen under 2 faults is 3;
        // a (2, 2) claim is tightened past the truth.
        let claim = ToleranceClaim {
            diameter: 2,
            faults: 2,
        };
        let (report, cert) = audit_built(&mut built, &g, Some(claim), &SearchConfig::default());
        assert!(matches!(report.verdict, Verdict::Violated { .. }));
        assert!(!built.guarantee().audited);
        let checked = check(&cert.serialize()).expect("witness certificate re-checks");
        assert!(!checked.holds);
    }

    #[test]
    fn plan_audited_upgrades_the_winner() {
        let g = gen::petersen();
        let request = PlannerRequest::tolerate(2).single_routes();
        let (plan, report, cert) =
            plan_audited(&Planner::new(), &g, &request, &SearchConfig::default()).unwrap();
        assert!(report.holds());
        assert!(plan.winner.guarantee().audited);
        check(&cert.serialize()).expect("winner certificate re-checks");
    }
}

//! Machine-checkable tolerance certificates.
//!
//! A certificate is the durable artifact of one audit: what was audited
//! (the graph as graph6 plus either a scheme spec — rebuildable through
//! the deterministic `SchemeRegistry` — or the literal route lines of a
//! hand-built routing), the `(d, f)` claim, the searched-space
//! accounting, the verdict, and a content hash. The text format is
//! line-oriented and fully deterministic, so equal audits serialize
//! byte-identically.
//!
//! [`check`] re-validates a certificate *independently* of the searcher:
//! it recomputes the hash, rebuilds the routing from the recorded
//! source, compares the engine shape, re-verifies the accounting
//! arithmetic (`visited + pruned = space` for a holds verdict, with
//! `space` recomputed from `n`, the base and `f`), and — for a violated
//! verdict — re-measures the witness through the **route-walk reference
//! implementation**, never the compiled engine the searcher ran on.

use std::fmt;

use ftr_core::{BuiltTable, Routing, RoutingKind, SchemeRegistry, SchemeSpec, ToleranceClaim};
use ftr_graph::{io, Graph, Node, NodeSet, Path};

use crate::search::{search_space, AuditReport, SearchMode, Verdict};

/// Where the audited routing came from — enough to rebuild it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Built through the registry: the canonical spec plus the theorem
    /// token of the guarantee under audit.
    Scheme {
        /// Canonical [`SchemeSpec`] rendering.
        spec: String,
        /// [`ftr_core::TheoremId::token`] of the audited guarantee.
        theorem: String,
    },
    /// A hand-built routing, embedded route by route.
    Routing {
        /// Routing kind.
        kind: RoutingKind,
        /// Every stored route as its node path, in the table's sorted
        /// `(src, dst)` iteration order.
        routes: Vec<Vec<Node>>,
    },
}

/// The verdict a certificate records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertVerdict {
    /// The claim held over the whole accounted space.
    Holds,
    /// A witness fault set violating the claim.
    Violated {
        /// Surviving diameter under the witness (`None` = disconnected).
        diameter: Option<u32>,
        /// The witness fault set, ascending.
        witness: Vec<Node>,
    },
}

/// One audit, serialized: see the module docs for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The audited network in graph6 (the *input* graph for schemes —
    /// the augmentation scheme re-derives its augmented network).
    pub graph6: String,
    /// How to rebuild the routing.
    pub source: Source,
    /// Pre-existing faults the claim quantifies on top of (usually
    /// empty).
    pub base: Vec<Node>,
    /// The audited claim.
    pub claim: ToleranceClaim,
    /// Search mode that produced the verdict.
    pub mode: SearchMode,
    /// Engine shape at audit time (node count, routed pairs, slots).
    pub engine: (usize, usize, usize),
    /// Diameter evaluations performed.
    pub visited: u64,
    /// Subtrees cut by the monotone prune.
    pub pruned_subtrees: u64,
    /// Fault sets covered by pruning.
    pub pruned_sets: u64,
    /// The whole space `Σ_{k<=f} C(m, k)`.
    pub space: u64,
    /// The verdict.
    pub verdict: CertVerdict,
}

/// FNV-1a 64 over the certificate body — cheap, dependency-free, and
/// plenty to catch tampering and transcription damage (this is an
/// integrity check, not a cryptographic signature).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn join_nodes(nodes: &[Node]) -> String {
    if nodes.is_empty() {
        return "-".to_string();
    }
    let parts: Vec<String> = nodes.iter().map(|v| v.to_string()).collect();
    parts.join(",")
}

fn parse_nodes(text: &str) -> Result<Vec<Node>, CheckError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| CheckError::Malformed(format!("bad node id {t:?}")))
        })
        .collect()
}

impl Certificate {
    /// Assembles a certificate from an audit of a scheme-built routing.
    ///
    /// `input_graph` is the graph the scheme was built *on* (for the
    /// augmentation scheme that differs from the routed network);
    /// rebuilding `spec` on it reproduces the audited table exactly.
    pub fn for_scheme(
        input_graph: &Graph,
        spec: &SchemeSpec,
        theorem: ftr_core::TheoremId,
        engine: &ftr_core::CompiledRoutes,
        base: &NodeSet,
        mode: SearchMode,
        report: &AuditReport,
    ) -> Certificate {
        Certificate::assemble(
            input_graph,
            Source::Scheme {
                spec: spec.to_string(),
                theorem: theorem.token().to_string(),
            },
            engine,
            base,
            mode,
            report,
        )
    }

    /// Assembles a certificate from an audit of a hand-built routing,
    /// embedding every route.
    pub fn for_routing(
        graph: &Graph,
        routing: &Routing,
        engine: &ftr_core::CompiledRoutes,
        base: &NodeSet,
        mode: SearchMode,
        report: &AuditReport,
    ) -> Certificate {
        let routes = routing
            .routes()
            // A bidirectional table registers each stored path under both
            // orientations; keep the forward one only, so re-inserting
            // reproduces the table exactly.
            .filter(|(_, _, view)| view.is_forward())
            .map(|(_, _, view)| view.nodes())
            .collect();
        Certificate::assemble(
            graph,
            Source::Routing {
                kind: routing.kind(),
                routes,
            },
            engine,
            base,
            mode,
            report,
        )
    }

    fn assemble(
        graph: &Graph,
        source: Source,
        engine: &ftr_core::CompiledRoutes,
        base: &NodeSet,
        mode: SearchMode,
        report: &AuditReport,
    ) -> Certificate {
        use ftr_core::RouteTable;
        let verdict = match &report.verdict {
            Verdict::Holds => CertVerdict::Holds,
            Verdict::Violated { witness, diameter } => CertVerdict::Violated {
                diameter: *diameter,
                witness: witness.clone(),
            },
            Verdict::Exhausted => {
                panic!("an exhausted search has no verdict to certify")
            }
        };
        Certificate {
            graph6: io::to_graph6(graph),
            source,
            base: base.iter().collect(),
            claim: report.claim,
            mode,
            engine: (
                engine.node_count(),
                engine.pair_count(),
                engine.slot_count(),
            ),
            visited: report.visited,
            pruned_subtrees: report.pruned_subtrees,
            pruned_sets: report.pruned_sets,
            space: report.space,
            verdict,
        }
    }

    /// The canonical text form, hash line included.
    pub fn serialize(&self) -> String {
        let mut body = String::new();
        body.push_str("ftr-certificate v1\n");
        body.push_str(&format!("graph {}\n", self.graph6));
        match &self.source {
            Source::Scheme { spec, theorem } => {
                body.push_str(&format!("scheme {spec} theorem={theorem}\n"));
            }
            Source::Routing { kind, routes } => {
                let kind = match kind {
                    RoutingKind::Unidirectional => "uni",
                    RoutingKind::Bidirectional => "bi",
                };
                body.push_str(&format!("routing kind={kind} count={}\n", routes.len()));
                for route in routes {
                    let parts: Vec<String> = route.iter().map(|v| v.to_string()).collect();
                    body.push_str(&format!("route {}\n", parts.join(" ")));
                }
            }
        }
        body.push_str(&format!("base {}\n", join_nodes(&self.base)));
        body.push_str(&format!(
            "claim d={} f={}\n",
            self.claim.diameter, self.claim.faults
        ));
        body.push_str(&format!("mode {}\n", self.mode.token()));
        body.push_str(&format!(
            "engine n={} pairs={} slots={}\n",
            self.engine.0, self.engine.1, self.engine.2
        ));
        body.push_str(&format!(
            "search visited={} pruned-subtrees={} pruned-sets={} space={}\n",
            self.visited, self.pruned_subtrees, self.pruned_sets, self.space
        ));
        match &self.verdict {
            CertVerdict::Holds => body.push_str("verdict holds\n"),
            CertVerdict::Violated { diameter, witness } => {
                let d = match diameter {
                    Some(d) => d.to_string(),
                    None => "disconnect".to_string(),
                };
                body.push_str(&format!(
                    "verdict violated d={d} witness={}\n",
                    join_nodes(witness)
                ));
            }
        }
        let hash = fnv1a64(body.as_bytes());
        body.push_str(&format!("hash {hash:016x}\n"));
        body
    }

    /// Parses the text form (syntax only — [`check`] validates content).
    ///
    /// # Errors
    ///
    /// [`CheckError::Malformed`] describing the first offending line.
    pub fn parse(text: &str) -> Result<(Certificate, u64), CheckError> {
        let bad = |msg: &str| CheckError::Malformed(msg.to_string());
        let mut lines = text.lines();
        if lines.next() != Some("ftr-certificate v1") {
            return Err(bad("missing `ftr-certificate v1` header"));
        }
        let graph6 = lines
            .next()
            .and_then(|l| l.strip_prefix("graph "))
            .ok_or_else(|| bad("missing `graph` line"))?
            .to_string();
        let source_line = lines.next().ok_or_else(|| bad("missing source line"))?;
        let source = if let Some(rest) = source_line.strip_prefix("scheme ") {
            let (spec, theorem) = rest
                .split_once(" theorem=")
                .ok_or_else(|| bad("scheme line wants `scheme <spec> theorem=<token>`"))?;
            Source::Scheme {
                spec: spec.to_string(),
                theorem: theorem.to_string(),
            }
        } else if let Some(rest) = source_line.strip_prefix("routing ") {
            let (kind, count) = rest
                .strip_prefix("kind=")
                .and_then(|r| r.split_once(" count="))
                .ok_or_else(|| bad("routing line wants `routing kind=<k> count=<n>`"))?;
            let kind = match kind {
                "uni" => RoutingKind::Unidirectional,
                "bi" => RoutingKind::Bidirectional,
                other => return Err(CheckError::Malformed(format!("bad routing kind {other:?}"))),
            };
            let count: usize = count.parse().map_err(|_| bad("bad routing count"))?;
            let mut routes = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines.next().ok_or_else(|| bad("truncated route lines"))?;
                let nodes = line
                    .strip_prefix("route ")
                    .ok_or_else(|| bad("expected a `route` line"))?
                    .split_whitespace()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| CheckError::Malformed(format!("bad route node {t:?}")))
                    })
                    .collect::<Result<Vec<Node>, _>>()?;
                routes.push(nodes);
            }
            Source::Routing { kind, routes }
        } else {
            return Err(bad("expected a `scheme` or `routing` source line"));
        };
        let mut next_field = |prefix: &str| -> Result<String, CheckError> {
            let line = lines
                .next()
                .ok_or_else(|| CheckError::Malformed(format!("missing `{prefix}` line")))?;
            line.strip_prefix(prefix)
                .map(|s| s.to_string())
                .ok_or_else(|| CheckError::Malformed(format!("expected `{prefix}…`, got {line:?}")))
        };
        let base = parse_nodes(&next_field("base ")?)?;
        let claim_text = next_field("claim d=")?;
        let (d, f) = claim_text
            .split_once(" f=")
            .ok_or_else(|| bad("claim line wants `claim d=<d> f=<f>`"))?;
        let claim = ToleranceClaim {
            diameter: d.parse().map_err(|_| bad("bad claim diameter"))?,
            faults: f.parse().map_err(|_| bad("bad claim fault count"))?,
        };
        let mode =
            SearchMode::from_token(&next_field("mode ")?).ok_or_else(|| bad("bad mode token"))?;
        let engine_text = next_field("engine n=")?;
        let engine = {
            let (n, rest) = engine_text
                .split_once(" pairs=")
                .ok_or_else(|| bad("engine line wants n/pairs/slots"))?;
            let (pairs, slots) = rest
                .split_once(" slots=")
                .ok_or_else(|| bad("engine line wants n/pairs/slots"))?;
            (
                n.parse().map_err(|_| bad("bad engine n"))?,
                pairs.parse().map_err(|_| bad("bad engine pairs"))?,
                slots.parse().map_err(|_| bad("bad engine slots"))?,
            )
        };
        let search_text = next_field("search visited=")?;
        let (visited, pruned_subtrees, pruned_sets, space) = {
            let (v, rest) = search_text
                .split_once(" pruned-subtrees=")
                .ok_or_else(|| bad("search line wants visited/pruned/space"))?;
            let (ps, rest) = rest
                .split_once(" pruned-sets=")
                .ok_or_else(|| bad("search line wants visited/pruned/space"))?;
            let (pk, space) = rest
                .split_once(" space=")
                .ok_or_else(|| bad("search line wants visited/pruned/space"))?;
            (
                v.parse().map_err(|_| bad("bad visited"))?,
                ps.parse().map_err(|_| bad("bad pruned-subtrees"))?,
                pk.parse().map_err(|_| bad("bad pruned-sets"))?,
                space.parse().map_err(|_| bad("bad space"))?,
            )
        };
        let verdict_line = next_field("verdict ")?;
        let verdict = if verdict_line == "holds" {
            CertVerdict::Holds
        } else if let Some(rest) = verdict_line.strip_prefix("violated d=") {
            let (d, witness) = rest
                .split_once(" witness=")
                .ok_or_else(|| bad("violated verdict wants d= and witness="))?;
            let diameter = match d {
                "disconnect" => None,
                num => Some(num.parse().map_err(|_| bad("bad witness diameter"))?),
            };
            CertVerdict::Violated {
                diameter,
                witness: parse_nodes(witness)?,
            }
        } else {
            return Err(bad("verdict must be `holds` or `violated …`"));
        };
        let hash_text = next_field("hash ")?;
        let stored_hash = u64::from_str_radix(&hash_text, 16).map_err(|_| bad("bad hash hex"))?;
        if lines.next().is_some_and(|l| !l.trim().is_empty()) {
            return Err(bad("trailing content after the hash line"));
        }
        Ok((
            Certificate {
                graph6,
                source,
                base,
                claim,
                mode,
                engine,
                visited,
                pruned_subtrees,
                pruned_sets,
                space,
                verdict,
            },
            stored_hash,
        ))
    }
}

/// Why a certificate failed [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The text does not parse as a certificate.
    Malformed(String),
    /// The content hash does not match the body (tampering or damage).
    HashMismatch {
        /// Hash recorded in the certificate.
        stored: u64,
        /// Hash of the body as received.
        computed: u64,
    },
    /// The graph6 payload does not decode.
    BadGraph(String),
    /// The recorded source could not be rebuilt.
    RebuildFailed(String),
    /// The rebuilt engine's shape differs from the recorded one.
    EngineMismatch {
        /// `(n, pairs, slots)` recorded.
        stored: (usize, usize, usize),
        /// `(n, pairs, slots)` rebuilt.
        rebuilt: (usize, usize, usize),
    },
    /// The recorded space is not `Σ_{k<=f} C(m, k)`.
    SpaceMismatch {
        /// Space recorded.
        stored: u64,
        /// Space recomputed from `n`, base and `f`.
        computed: u64,
    },
    /// A holds verdict whose accounting does not cover the space.
    CoverageGap {
        /// `visited + pruned_sets`.
        covered: u64,
        /// The full space.
        space: u64,
    },
    /// The witness does not reproduce the recorded violation.
    WitnessMismatch(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Malformed(msg) => write!(f, "malformed certificate: {msg}"),
            CheckError::HashMismatch { stored, computed } => write!(
                f,
                "content hash mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            CheckError::BadGraph(msg) => write!(f, "graph6 payload rejected: {msg}"),
            CheckError::RebuildFailed(msg) => write!(f, "could not rebuild the routing: {msg}"),
            CheckError::EngineMismatch { stored, rebuilt } => write!(
                f,
                "engine shape mismatch: recorded {stored:?}, rebuilt {rebuilt:?}"
            ),
            CheckError::SpaceMismatch { stored, computed } => write!(
                f,
                "space mismatch: recorded {stored}, recomputed {computed}"
            ),
            CheckError::CoverageGap { covered, space } => {
                write!(f, "holds verdict covers {covered} of {space} fault sets")
            }
            CheckError::WitnessMismatch(msg) => write!(f, "witness does not reproduce: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What an accepted certificate established.
#[derive(Debug, Clone)]
pub struct Checked {
    /// Human label of the rebuilt source.
    pub source: String,
    /// The claim the certificate is about.
    pub claim: ToleranceClaim,
    /// `true` for a holds certificate, `false` for a witness
    /// certificate (whose witness was re-measured successfully).
    pub holds: bool,
    /// The witness diameter re-measured by the route-walk reference
    /// (`Some(None)` = disconnection; `None` for holds certificates).
    pub witness_diameter: Option<Option<u32>>,
}

/// Independently re-checks a serialized certificate: hash, rebuild,
/// engine shape, accounting arithmetic, and (for violations) the
/// witness via the route-walk reference implementation.
///
/// # Errors
///
/// The first [`CheckError`] encountered, in the order listed there.
pub fn check(text: &str) -> Result<Checked, CheckError> {
    use ftr_core::{Compile, RouteTable};

    let (cert, stored_hash) = Certificate::parse(text)?;
    let body_end = text
        .rfind("\nhash ")
        .map(|i| i + 1)
        .expect("parse accepted a hash line");
    let computed = fnv1a64(&text.as_bytes()[..body_end]);
    if computed != stored_hash {
        return Err(CheckError::HashMismatch {
            stored: stored_hash,
            computed,
        });
    }

    let graph = io::from_graph6(&cert.graph6).map_err(|e| CheckError::BadGraph(e.to_string()))?;

    // The base list comes from an untrusted artifact: every node must
    // be in range and distinct, or the accounting arithmetic below
    // would be computed on garbage (a checker must reject, not panic).
    {
        let mut seen = NodeSet::new(graph.node_count());
        for &b in &cert.base {
            if (b as usize) >= graph.node_count() || !seen.insert(b) {
                return Err(CheckError::Malformed(format!(
                    "base node {b} out of range or duplicated"
                )));
            }
        }
    }

    // Rebuild the routing from the recorded source.
    enum Table {
        Single(Routing),
        Multi(ftr_core::MultiRouting),
    }
    let (label, table) = match &cert.source {
        Source::Scheme { spec, theorem } => {
            let spec: SchemeSpec = spec
                .parse()
                .map_err(|e| CheckError::RebuildFailed(format!("bad spec: {e}")))?;
            let built = SchemeRegistry::standard()
                .build_spec(&graph, &spec)
                .map_err(|e| CheckError::RebuildFailed(e.to_string()))?;
            if built.guarantee().theorem.token() != theorem {
                return Err(CheckError::RebuildFailed(format!(
                    "rebuilt guarantee cites {}, certificate cites {theorem}",
                    built.guarantee().theorem.token()
                )));
            }
            let label = format!("scheme {spec}");
            let table = match built.into_single() {
                Ok((_, routing, _, _)) => Table::Single(routing),
                Err(built) => match built.table() {
                    BuiltTable::Multi(m) => Table::Multi(m.clone()),
                    BuiltTable::Single(_) => unreachable!("into_single only fails for multi"),
                },
            };
            (label, table)
        }
        Source::Routing { kind, routes } => {
            let mut routing = Routing::new(graph.node_count(), *kind);
            for nodes in routes {
                let path = Path::new(nodes.clone())
                    .map_err(|e| CheckError::RebuildFailed(format!("bad route: {e}")))?;
                routing
                    .insert(path)
                    .map_err(|e| CheckError::RebuildFailed(format!("bad route: {e}")))?;
            }
            routing
                .validate(&graph)
                .map_err(|e| CheckError::RebuildFailed(format!("routes not in graph: {e}")))?;
            routing.freeze();
            (
                format!("routing ({} routes)", routing.route_count()),
                Table::Single(routing),
            )
        }
    };

    // The engine compiled from the rebuilt table must have the recorded
    // shape (same table ⇒ same masks ⇒ the audit ran on what we hold).
    let engine = match &table {
        Table::Single(r) => r.compile(),
        Table::Multi(m) => m.compile(),
    };
    let rebuilt = (
        engine.node_count(),
        engine.pair_count(),
        engine.slot_count(),
    );
    if rebuilt != cert.engine {
        return Err(CheckError::EngineMismatch {
            stored: cert.engine,
            rebuilt,
        });
    }

    // Accounting arithmetic.
    let n = graph.node_count();
    let candidates = n - cert.base.len();
    let space = search_space(candidates, cert.claim.faults.min(candidates));
    if space != cert.space {
        return Err(CheckError::SpaceMismatch {
            stored: cert.space,
            computed: space,
        });
    }

    match &cert.verdict {
        CertVerdict::Holds => {
            let covered = cert.visited.saturating_add(cert.pruned_sets);
            if covered != space {
                return Err(CheckError::CoverageGap { covered, space });
            }
            Ok(Checked {
                source: label,
                claim: cert.claim,
                holds: true,
                witness_diameter: None,
            })
        }
        CertVerdict::Violated { diameter, witness } => {
            let mut faults = NodeSet::new(n);
            for &v in witness {
                if (v as usize) >= n || !faults.insert(v) {
                    return Err(CheckError::WitnessMismatch(format!(
                        "witness node {v} out of range or duplicated"
                    )));
                }
            }
            for &b in &cert.base {
                if !faults.contains(b) {
                    return Err(CheckError::WitnessMismatch(format!(
                        "witness does not include base fault {b}"
                    )));
                }
            }
            if witness.len() - cert.base.len() > cert.claim.faults {
                return Err(CheckError::WitnessMismatch(format!(
                    "witness adds {} faults, budget is {}",
                    witness.len() - cert.base.len(),
                    cert.claim.faults
                )));
            }
            // Route-walk reference measurement — independent of the
            // engine the searcher evaluated on.
            let measured = match &table {
                Table::Single(r) => r.surviving_diameter(&faults),
                Table::Multi(m) => m.surviving_diameter(&faults),
            };
            if measured != *diameter {
                return Err(CheckError::WitnessMismatch(format!(
                    "recorded diameter {diameter:?}, measured {measured:?}"
                )));
            }
            let violates = match measured {
                None => true,
                Some(d) => d > cert.claim.diameter,
            };
            if !violates {
                return Err(CheckError::WitnessMismatch(format!(
                    "measured diameter {measured:?} does not violate {}",
                    cert.claim
                )));
            }
            Ok(Checked {
                source: label,
                claim: cert.claim,
                holds: false,
                witness_diameter: Some(measured),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{audit, SearchConfig};
    use ftr_core::{Compile, KernelRouting};
    use ftr_graph::gen;

    fn petersen_cert() -> Certificate {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let claim = kernel.guarantee_theorem_3().claim();
        let base = NodeSet::new(10);
        let report = audit(
            &engine,
            claim,
            kernel.separator(),
            &base,
            &SearchConfig::default(),
        );
        Certificate::for_scheme(
            &g,
            &ftr_core::SchemeSpec::named("kernel"),
            ftr_core::TheoremId::Theorem3,
            &engine,
            &base,
            SearchMode::Certify,
            &report,
        )
    }

    #[test]
    fn round_trip_and_check() {
        let cert = petersen_cert();
        let text = cert.serialize();
        let (parsed, _) = Certificate::parse(&text).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(parsed.serialize(), text, "canonical form is stable");
        let checked = check(&text).unwrap();
        assert!(checked.holds);
        assert!(checked.source.contains("kernel"));
    }

    #[test]
    fn flipped_hash_is_rejected() {
        let text = petersen_cert().serialize();
        // Flip the final hex digit of the hash line.
        let trimmed = text.trim_end();
        let last = trimmed.chars().last().unwrap();
        let flipped = if last == '0' { '1' } else { '0' };
        let tampered = format!("{}{flipped}\n", &trimmed[..trimmed.len() - 1]);
        assert!(matches!(
            check(&tampered),
            Err(CheckError::HashMismatch { .. })
        ));
        // Flip a byte of the body instead, leaving the hash alone.
        let tampered = text.replace("claim d=", "claim d=1");
        assert!(matches!(
            check(&tampered),
            Err(CheckError::HashMismatch { .. })
        ));
    }

    #[test]
    fn tampered_accounting_with_fixed_hash_is_rejected() {
        let cert = petersen_cert();
        let mut tampered = cert.clone();
        tampered.visited -= 1; // claim a smaller search than happened
        let text = tampered.serialize(); // hash recomputed: consistent text
        assert!(matches!(check(&text), Err(CheckError::CoverageGap { .. })));
    }

    #[test]
    fn hostile_base_list_is_rejected_not_panicked() {
        // A crafted certificate whose base has more (duplicated) entries
        // than the graph has nodes used to underflow the accounting
        // arithmetic; the checker must answer Malformed instead.
        let cert = petersen_cert();
        for base in [vec![0; 11], vec![99], vec![3, 3]] {
            let mut hostile = cert.clone();
            hostile.base = base.clone();
            let text = hostile.serialize(); // hash self-consistent
            assert!(
                matches!(check(&text), Err(CheckError::Malformed(_))),
                "base {base:?} accepted"
            );
        }
    }

    #[test]
    fn fabricated_witness_with_fixed_hash_is_rejected() {
        let cert = petersen_cert();
        let mut tampered = cert.clone();
        tampered.verdict = CertVerdict::Violated {
            diameter: Some(99),
            witness: vec![0, 1],
        };
        let text = tampered.serialize();
        assert!(matches!(check(&text), Err(CheckError::WitnessMismatch(_))));
    }
}

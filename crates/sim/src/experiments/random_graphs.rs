//! E10 — Lemma 24 / Theorem 25: almost every not-too-dense random graph
//! has the two-trees property.
//!
//! For `G(n, p)` with `p = n^ε / n` and `ε < 1/4`, the probability that
//! the two-trees property fails is `O(n^(-δ))`. The experiment sweeps
//! `ε` across the threshold and reports the empirical fraction of
//! samples with the property: below `1/4` it should rise toward 1 with
//! `n`, above it should collapse.

use ftr_graph::{analysis, gen};

use super::Scale;
use crate::report::Table;

/// E10 — empirical `Pr[G(n, n^(ε-1)) has the two-trees property]`.
pub fn e10_two_trees_probability(scale: Scale) -> Table {
    let (sizes, trials): (&[usize], usize) = match scale {
        Scale::Quick => (&[40, 80], 20),
        Scale::Full => (&[50, 100, 200, 400], 100),
    };
    let epsilons = [0.10, 0.20, 0.25, 0.30, 0.40];
    let mut table = Table::new(
        "E10",
        "Lemma 24: empirical probability of the two-trees property in G(n, n^(eps-1))",
        ["n", "eps", "p", "trials", "fraction with property"],
    );
    for &n in sizes {
        for &eps in &epsilons {
            let p = (n as f64).powf(eps) / n as f64;
            let mut hits = 0usize;
            for trial in 0..trials {
                let seed =
                    0xE10_0000 + (n as u64) * 1_000 + (eps * 100.0) as u64 * 10 + trial as u64;
                let g = gen::gnp(n, p, seed).expect("p in range");
                if analysis::find_two_trees_roots(&g).is_some() {
                    hits += 1;
                }
            }
            table.push_row([
                n.to_string(),
                format!("{eps:.2}"),
                format!("{p:.4}"),
                trials.to_string(),
                format!("{:.2}", hits as f64 / trials as f64),
            ]);
        }
    }
    table.push_note(
        "Theorem 25's regime is eps < 1/4: the fraction should approach 1 with n there and \
         degrade beyond the threshold (short cycles and shrinking diameter kill the property).",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_has_a_row_per_cell_and_sane_fractions() {
        let t = e10_two_trees_probability(Scale::Quick);
        assert_eq!(t.rows().len(), 2 * 5);
        for row in t.rows() {
            let frac: f64 = row[4].parse().unwrap();
            assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn e10_sparse_beats_dense_at_same_n() {
        // At n = 80, eps = 0.10 must do at least as well as eps = 0.40.
        let t = e10_two_trees_probability(Scale::Quick);
        let frac = |n: &str, eps: &str| -> f64 {
            t.rows()
                .iter()
                .find(|r| r[0] == n && r[1] == eps)
                .expect("row exists")[4]
                .parse()
                .unwrap()
        };
        assert!(frac("80", "0.10") >= frac("80", "0.40"));
    }
}

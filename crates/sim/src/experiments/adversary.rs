//! A2 and A3: ablations of the machinery itself.
//!
//! * A2 removes the direct-edge shortcut rule from tree routings and
//!   counts the route conflicts this causes against the kernel's edge
//!   routes — the paper's "additional requirement" is exactly what
//!   keeps the constructions single-route.
//! * A3 compares fault-search strategies: how close do random sampling
//!   and adversarial hill-climbing get to the exhaustive worst case,
//!   and at what cost.

use ftr_core::{
    verify_tolerance, Compile, FaultStrategy, KernelRouting, Routing, RoutingError, RoutingKind,
};
use ftr_graph::{connectivity, flow, gen, Graph, Path};

use super::{threads, NamedGraph, Scale};
use crate::report::{fmt_diameter, Table};

/// Builds the kernel routing *without* the shortcut rule, counting
/// conflicting inserts (which are skipped, keeping the first route).
fn kernel_without_shortcut(g: &Graph) -> Result<(Routing, usize), RoutingError> {
    let kappa = connectivity::vertex_connectivity(g);
    let sep = connectivity::min_separator(g).ok_or_else(|| RoutingError::PropertyNotSatisfied {
        what: "complete graph".into(),
    })?;
    let mut routing = Routing::new(g.node_count(), RoutingKind::Bidirectional);
    for (u, v) in g.edges() {
        routing.insert(Path::edge(u, v).expect("valid edge"))?;
    }
    let mut conflicts = 0usize;
    for x in g.nodes() {
        if sep.contains(x) {
            continue;
        }
        // Raw disjoint paths, deliberately skipping the shortcut rule.
        let paths = flow::vertex_disjoint_paths_to_set(g, x, &sep, Some(kappa))?;
        for p in paths {
            match routing.insert(p) {
                Ok(()) => {}
                Err(RoutingError::RouteConflict { .. }) => conflicts += 1,
                Err(e) => return Err(e),
            }
        }
    }
    Ok((routing, conflicts))
}

/// A2 — tree routings without the direct-edge shortcut rule: count the
/// conflicts against KERNEL 2's edge routes and measure the resulting
/// (conflict-dropped) routing.
pub fn ablation_a2_shortcut_rule(scale: Scale) -> Table {
    let mut graphs = vec![
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(4,16)",
            gen::harary(4, 16).expect("valid"),
        ));
        graphs.push(NamedGraph::new("Q4", gen::hypercube(4).expect("valid")));
    }
    let mut table = Table::new(
        "A2",
        "kernel tree routings without the shortcut rule: conflicts and impact",
        [
            "graph",
            "conflicting inserts",
            "worst diameter without rule (faults <= t)",
            "worst diameter with rule",
        ],
    );
    for NamedGraph { name, graph } in graphs {
        let (raw, conflicts) = kernel_without_shortcut(&graph).expect("suite graphs qualify");
        let kernel = KernelRouting::build(&graph).expect("connected");
        let t = kernel.tolerated_faults();
        let raw_report = verify_tolerance(&raw.compile(), t, FaultStrategy::Exhaustive, threads());
        let good_report = verify_tolerance(
            &kernel.routing().compile(),
            t,
            FaultStrategy::Exhaustive,
            threads(),
        );
        table.push_row([
            name,
            conflicts.to_string(),
            fmt_diameter(raw_report.worst_diameter),
            fmt_diameter(good_report.worst_diameter),
        ]);
    }
    table.push_note(
        "Measured: zero conflicts — with shortest-augmenting-path max flow the direct edge \
         x—m is always the first path saturated toward an adjacent target, and no later \
         augmentation can cancel flow out of the source, so this implementation satisfies \
         the shortcut rule by construction. The rule remains load-bearing in the model: a \
         different disjoint-path oracle could legally return a long route to an adjacent \
         separator member and collide with the KERNEL 2 edge route.",
    );
    table
}

/// A3 — fault-search strategies compared on one mid-size construction.
pub fn ablation_a3_strategies(scale: Scale) -> Table {
    let graph = match scale {
        Scale::Quick => gen::harary(3, 16).expect("valid"),
        Scale::Full => gen::harary(4, 28).expect("valid"),
    };
    let kernel = KernelRouting::build(&graph).expect("connected");
    let t = kernel.tolerated_faults();
    let mut table = Table::new(
        "A3",
        format!(
            "fault-search strategies on the kernel routing of H({},{}), |F| <= {t}",
            t + 1,
            graph.node_count()
        ),
        ["strategy", "worst diameter found", "fault sets evaluated"],
    );
    let strategies = [
        FaultStrategy::Exhaustive,
        FaultStrategy::RandomSample {
            trials: 50,
            seed: 3,
        },
        FaultStrategy::RandomSample {
            trials: 500,
            seed: 3,
        },
        FaultStrategy::Adversarial {
            restarts: 1,
            seed: 3,
        },
        FaultStrategy::Adversarial {
            restarts: 4,
            seed: 3,
        },
    ];
    let engine = kernel.routing().compile();
    for strategy in strategies {
        let report = verify_tolerance(&engine, t, strategy, threads());
        table.push_row([
            strategy.to_string(),
            fmt_diameter(report.worst_diameter),
            report.sets_checked.to_string(),
        ]);
    }
    table.push_note(
        "Exhaustive is ground truth; adversarial hill-climbing typically matches it with \
         orders of magnitude fewer evaluations, random sampling undershoots.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_reports_conflicts_and_valid_diameters() {
        let t = ablation_a2_shortcut_rule(Scale::Quick);
        assert_eq!(t.rows().len(), 2);
        for row in t.rows() {
            // With the rule there are no conflicts by construction; the
            // raw build may or may not conflict, but the with-rule
            // diameter must be finite.
            assert_ne!(row[3], "inf", "{row:?}");
        }
    }

    #[test]
    fn a3_sampling_never_beats_exhaustive() {
        let t = ablation_a3_strategies(Scale::Quick);
        let parse = |s: &str| -> u32 {
            if s == "inf" {
                u32::MAX
            } else {
                s.parse().unwrap()
            }
        };
        let exhaustive = parse(&t.rows()[0][1]);
        for row in &t.rows()[1..] {
            assert!(
                parse(&row[1]) <= exhaustive,
                "strategy found something exhaustive missed: {row:?}"
            );
        }
    }
}

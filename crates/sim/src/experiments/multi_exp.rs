//! E11 and E12: Section 6's model variations — multiroutings and
//! network augmentation.

use ftr_core::{
    concentrator_multirouting, full_multirouting, single_tree_multirouting, verify_tolerance,
    AugmentedKernelRouting, Compile, FaultStrategy, ToleranceClaim,
};
use ftr_graph::{connectivity, gen};

use super::{threads, NamedGraph, Scale};
use crate::report::{fmt_bool, fmt_diameter, Table};

/// E11 — the three multirouting observations of Section 6:
/// full parallel routes give diameter 1, concentrator parallel routes
/// give 3, and the two-route single-tree variant is measured.
pub fn e11_multiroutings(scale: Scale) -> Table {
    let mut graphs = vec![
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(4,16)",
            gen::harary(4, 16).expect("valid"),
        ));
        graphs.push(NamedGraph::new("C12", gen::cycle(12).expect("valid")));
    }
    let mut table = Table::new(
        "E11",
        "Section 6 multiroutings: worst surviving diameter under |F| <= t",
        [
            "graph",
            "n",
            "t",
            "variant",
            "parallel budget",
            "claimed",
            "worst diameter",
            "ok",
        ],
    );
    for NamedGraph { name, graph } in graphs {
        let n = graph.node_count();
        let t = connectivity::vertex_connectivity(&graph) - 1;

        let full = full_multirouting(&graph).expect("connected");
        let report = verify_tolerance(&full.compile(), t, FaultStrategy::Exhaustive, threads());
        let claim = ToleranceClaim {
            diameter: 1,
            faults: t,
        };
        table.push_row([
            name.clone(),
            n.to_string(),
            t.to_string(),
            "full (t+1 routes everywhere)".into(),
            (t + 1).to_string(),
            "1".into(),
            fmt_diameter(report.worst_diameter),
            fmt_bool(report.satisfies(&claim)),
        ]);

        let (conc, _) = concentrator_multirouting(&graph).expect("not complete");
        let report = verify_tolerance(&conc.compile(), t, FaultStrategy::Exhaustive, threads());
        let claim = ToleranceClaim {
            diameter: 3,
            faults: t,
        };
        table.push_row([
            name.clone(),
            n.to_string(),
            t.to_string(),
            "concentrator (t+1 routes inside M)".into(),
            (t + 1).to_string(),
            "3".into(),
            fmt_diameter(report.worst_diameter),
            fmt_bool(report.satisfies(&claim)),
        ]);

        // The paper proves no diameter bound for the two-route variant;
        // the implicit claim is that |F| <= t never disconnects it.
        let (single, _) = single_tree_multirouting(&graph).expect("not complete");
        let report = verify_tolerance(&single.compile(), t, FaultStrategy::Exhaustive, threads());
        table.push_row([
            name.clone(),
            n.to_string(),
            t.to_string(),
            "single-tree (<= 2 routes)".into(),
            "2".into(),
            "connected (measured)".into(),
            fmt_diameter(report.worst_diameter),
            fmt_bool(report.worst_diameter.is_some()),
        ]);
    }
    table.push_note(
        "The paper proves the bounds 1 and 3 and leaves the two-route variant unbounded; \
         its measured worst diameter is reported as-is.",
    );
    table
}

/// E12 — clique-augmenting the kernel separator: `(3, t)`-tolerant at
/// the price of at most `t(t+1)/2` added links.
pub fn e12_augmentation(scale: Scale) -> Table {
    let mut graphs = vec![
        NamedGraph::new("C10", gen::cycle(10).expect("valid")),
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(4,14)",
            gen::harary(4, 14).expect("valid"),
        ));
        graphs.push(NamedGraph::new(
            "H(5,16)",
            gen::harary(5, 16).expect("valid"),
        ));
    }
    let mut table = Table::new(
        "E12",
        "Section 6: clique-augmented kernel is (3, t)-tolerant with <= t(t+1)/2 new links",
        [
            "graph",
            "n",
            "t",
            "links added",
            "budget t(t+1)/2",
            "worst diameter",
            "ok",
        ],
    );
    for NamedGraph { name, graph } in graphs {
        let aug = AugmentedKernelRouting::build(&graph).expect("not complete");
        let claim = aug.guarantee().claim();
        let report = verify_tolerance(
            &aug.routing().compile(),
            claim.faults,
            FaultStrategy::Exhaustive,
            threads(),
        );
        let ok = report.satisfies(&claim) && aug.added_edges().len() <= aug.link_budget();
        table.push_row([
            name,
            graph.node_count().to_string(),
            aug.tolerated_faults().to_string(),
            aug.added_edges().len().to_string(),
            aug.link_budget().to_string(),
            fmt_diameter(report.worst_diameter),
            fmt_bool(ok),
        ]);
    }
    table.push_note("Open problem 2 of the paper asks whether O(t) added links suffice.");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_claims_hold() {
        let t = e11_multiroutings(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
        assert_eq!(t.rows().len(), 6);
        // the measured single-tree rows must also report a finite diameter
        for row in t.rows().iter().filter(|r| r[3].starts_with("single-tree")) {
            assert_ne!(row[6], "inf", "{row:?}");
        }
    }

    #[test]
    fn e12_bounds_and_budgets_hold() {
        let t = e12_augmentation(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }
}

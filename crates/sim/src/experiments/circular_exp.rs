//! E3, E4, E5 and A1: the circular and tri-circular routings
//! (Theorems 10 and 13, Remark 14).

use ftr_core::{
    verify_tolerance, CircularRouting, Compile, FaultStrategy, RoutingError, SchemeSpec,
    ToleranceClaim,
};
use ftr_graph::gen;

use super::scheme_sweep::{push_scheme_rows, SweepConfig};
use super::{threads, NamedGraph, Scale, VERIFICATION_HEADERS};
use crate::report::{fmt_bool, fmt_diameter, Table};

/// E3 — Theorem 10: the circular routing is `(6, t)`-tolerant given a
/// neighborhood set of `t+1` (`t` even) or `t+2` (`t` odd) members.
/// Driven by the generic scheme-sweep harness (exhaustive where
/// `C(n, t)` is small, seeded sampling above).
pub fn e3_circular(scale: Scale) -> Table {
    let mut graphs = vec![
        NamedGraph::new("C9", gen::cycle(9).expect("valid")),
        NamedGraph::new("H(3,20)", gen::harary(3, 20).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("H(4,40)", gen::harary(4, 40).expect("valid")),
            NamedGraph::new("CCC(4)", gen::cube_connected_cycles(4).expect("valid")),
            NamedGraph::new("Torus6x10", gen::torus(6, 10).expect("valid")),
        ]);
    }
    let mut table = Table::new(
        "E3",
        "Theorem 10: circular routing is (6, t)-tolerant",
        VERIFICATION_HEADERS,
    );
    push_scheme_rows(
        &mut table,
        &SchemeSpec::named("circular"),
        &|t| t,
        &graphs,
        &SweepConfig::sampled(20_000, 2_000, 0xE3),
    );
    table.push_note("K follows the theorem: t+1 members for even t, t+2 for odd t.");
    table
}

/// E4 — Theorem 13: the tri-circular routing is `(4, t)`-tolerant given
/// `6t + 9` neighborhood-set members.
pub fn e4_tricircular(scale: Scale) -> Table {
    let mut graphs = vec![NamedGraph::new("C45", gen::cycle(45).expect("valid"))];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(3,120)",
            gen::harary(3, 120).expect("valid"),
        ));
    }
    let mut table = Table::new(
        "E4",
        "Theorem 13: tri-circular routing is (4, t)-tolerant",
        VERIFICATION_HEADERS,
    );
    push_scheme_rows(
        &mut table,
        &"tricircular:standard".parse().expect("valid spec"),
        &|t| t,
        &graphs,
        &SweepConfig::sampled(20_000, 1_000, 0xE4),
    );
    table.push_note("Three circles of 2t+3 members each (K = 6t+9).");
    table
}

/// E5 — Remark 14: the small tri-circular routing (circles of `t+1` /
/// `t+2`) is `(5, t)`-tolerant. The paper omits this construction's
/// details, so the bound here is an empirical validation of our
/// reconstruction.
pub fn e5_tricircular_small(scale: Scale) -> Table {
    let mut graphs = vec![NamedGraph::new("C27", gen::cycle(27).expect("valid"))];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(3,80)",
            gen::harary(3, 80).expect("valid"),
        ));
    }
    let mut table = Table::new(
        "E5",
        "Remark 14: small tri-circular routing is (5, t)-tolerant",
        VERIFICATION_HEADERS,
    );
    push_scheme_rows(
        &mut table,
        &"tricircular:small".parse().expect("valid spec"),
        &|t| t,
        &graphs,
        &SweepConfig::sampled(20_000, 1_000, 0xE5),
    );
    table.push_note(
        "The paper states the (5, t) bound without the construction; this validates our \
         reconstruction (three small circles, circular forward rule, all-sets cross links).",
    );
    table
}

/// A1 — what happens when the circular concentrator is smaller than the
/// theorem requires: sweep K from 1 past the required size and record
/// the worst surviving diameter.
pub fn ablation_a1_concentrator_size(scale: Scale) -> Table {
    let graph = gen::harary(3, 30).expect("valid"); // t = 2, required K = 3
    let t = 2usize;
    let k_max = match scale {
        Scale::Quick => 4,
        Scale::Full => 6,
    };
    let mut table = Table::new(
        "A1",
        "circular routing on H(3,30) with concentrator size K (required: 3)",
        ["K", "worst diameter", "meets (6, t)", "fault sets"],
    );
    for k in 1..=k_max {
        match CircularRouting::build_with_size(&graph, k) {
            Ok(circ) => {
                let report = verify_tolerance(
                    &circ.routing().compile(),
                    t,
                    FaultStrategy::Exhaustive,
                    threads(),
                );
                let claim = ToleranceClaim {
                    diameter: 6,
                    faults: t,
                };
                table.push_row([
                    k.to_string(),
                    fmt_diameter(report.worst_diameter),
                    fmt_bool(report.satisfies(&claim)),
                    report.sets_checked.to_string(),
                ]);
            }
            Err(RoutingError::ConcentratorTooSmall { found, .. }) => {
                table.push_row([
                    k.to_string(),
                    "-".to_string(),
                    "no".to_string(),
                    format!("concentrator maxes out at {found}"),
                ]);
            }
            // Any other construction failure becomes a reported row: one
            // bad (graph, K) combination must not kill the whole sweep.
            Err(e) => {
                table.push_row([
                    k.to_string(),
                    "-".to_string(),
                    "no".to_string(),
                    format!("construction failed: {e}"),
                ]);
            }
        }
    }
    table.push_note(
        "Below the required K the theorem's guarantee is void — measured: on this family the \
         bound still holds empirically (a circulant's edge routes alone are well connected), \
         but with K < t+1 a single fault on the last live member leaves some node pairs with \
         no concentrator relay, so the 6-bound is no longer *certified* for all graphs.",
    );
    table
}

/// C(n, k) with saturation, used to pick verification strategies.
pub(crate) fn binomial(n: usize, k: usize) -> u64 {
    let mut acc: u64 = 1;
    for i in 0..k.min(n) {
        acc = acc.saturating_mul((n - i) as u64) / (i as u64 + 1);
        if acc > 1_000_000_000 {
            return u64::MAX;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_quick_satisfies_theorem_10() {
        let t = e3_circular(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }

    #[test]
    fn e4_quick_satisfies_theorem_13() {
        let t = e4_tricircular(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }

    #[test]
    fn e5_quick_satisfies_remark_14() {
        let t = e5_tricircular_small(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }

    #[test]
    fn a1_has_a_row_per_k() {
        let t = ablation_a1_concentrator_size(Scale::Quick);
        assert_eq!(t.rows().len(), 4);
        // At the required size the bound must hold.
        let at_required = &t.rows()[2];
        assert_eq!(at_required[0], "3");
        assert_eq!(at_required[2], "yes");
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(6, 2), 15);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(100, 50), u64::MAX); // saturates
    }
}

//! The generic scheme-sweep harness and E18.
//!
//! Since the scheme API landed in `ftr-core`, every per-theorem
//! verification experiment is the same loop: look the scheme up in the
//! [`SchemeRegistry`], build it on each suite graph, verify the
//! [`Guarantee`] it advertises, and emit the standard row. E1–E5, E8,
//! E9 are thin wrappers over [`push_scheme_rows`] with their own suites
//! and strategies; E18 runs the *whole* registry against one shared
//! graph + fault suite and then lets the [`Planner`] pick winners.

use ftr_core::{
    CandidateOutcome, FaultStrategy, Planner, PlannerRequest, SchemeRegistry, SchemeSpec,
};
use ftr_graph::gen;

use super::circular_exp::binomial;
use super::{threads, NamedGraph, Scale};
use crate::report::{fmt_bool, fmt_diameter, Table};

/// How a sweep picks its verification strategy per graph.
pub(crate) struct SweepConfig {
    /// Exhaust all fault sets while `C(n, f)` stays at or below this.
    pub exhaustive_below: u64,
    /// Sample size above the threshold.
    pub trials: usize,
    /// Sampling seed (recorded in the strategy column).
    pub seed: u64,
}

impl SweepConfig {
    /// Exhaustive verification everywhere (small suites).
    pub fn exhaustive() -> Self {
        SweepConfig {
            exhaustive_below: u64::MAX,
            trials: 0,
            seed: 0,
        }
    }

    /// Exhaustive below `below` fault sets, else `trials` seeded samples.
    pub fn sampled(below: u64, trials: usize, seed: u64) -> Self {
        SweepConfig {
            exhaustive_below: below,
            trials,
            seed,
        }
    }
}

/// The one generic per-theorem driver: for each suite graph, build
/// `spec` through the registry, verify the advertised [`Guarantee`] at
/// the budget `budget_for(t)`, and append the standard verification row.
/// Construction failures become uniform rows (the [`Inapplicable`]
/// taxonomy rendered in place of a measurement) instead of panics.
///
/// [`Guarantee`]: ftr_core::Guarantee
/// [`Inapplicable`]: ftr_core::Inapplicable
pub(crate) fn push_scheme_rows(
    table: &mut Table,
    spec: &SchemeSpec,
    budget_for: &dyn Fn(usize) -> usize,
    suite: &[NamedGraph],
    config: &SweepConfig,
) {
    let registry = SchemeRegistry::standard();
    let scheme = registry
        .get(&spec.name)
        .expect("specs are validated at parse time");
    for NamedGraph { name, graph } in suite {
        let n = graph.node_count();
        // Learn the construction's full tolerance t, then re-apply with
        // the experiment's budget so the guarantee is regime-correct
        // (e.g. Theorem 4 below t/2 for the kernel).
        let probe = match scheme.applicability(graph, &spec.params) {
            Ok(g) => g,
            Err(inap) => {
                push_failure_row(table, name, n, &inap.to_string());
                continue;
            }
        };
        let t = probe.faults;
        let mut params = spec.params.clone();
        params.faults = Some(budget_for(t));
        let built = match scheme.build(graph, &params) {
            Ok(b) => b,
            Err(e) => {
                push_failure_row(table, name, n, &e.to_string());
                continue;
            }
        };
        if let Some(routing) = built.routing() {
            routing
                .validate(built.graph())
                .expect("constructions produce valid routings");
        }
        let claim = built.guarantee().claim();
        let strategy = if binomial(n, claim.faults) <= config.exhaustive_below {
            FaultStrategy::Exhaustive
        } else {
            FaultStrategy::RandomSample {
                trials: config.trials,
                seed: config.seed,
            }
        };
        let report = built.verify(strategy, threads());
        table.push_row([
            name.clone(),
            n.to_string(),
            t.to_string(),
            claim.to_string(),
            strategy.to_string(),
            fmt_diameter(report.worst_diameter),
            report.sets_checked.to_string(),
            fmt_bool(report.satisfies(&claim)),
        ]);
    }
}

/// The uniform failure row: the error text sits where the measurement
/// would, `ok` is `no`.
fn push_failure_row(table: &mut Table, name: &str, n: usize, why: &str) {
    table.push_row([
        name.to_string(),
        n.to_string(),
        "-".to_string(),
        "-".to_string(),
        why.to_string(),
        "-".to_string(),
        "-".to_string(),
        "no".to_string(),
    ]);
}

/// The E18 shared suite: one graph per applicability regime.
fn e18_suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C12", gen::cycle(12).expect("valid")),
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Q3", gen::hypercube(3).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("C45", gen::cycle(45).expect("valid")),
            NamedGraph::new("H(3,20)", gen::harary(3, 20).expect("valid")),
            NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
        ]);
    }
    graphs
}

/// E18 (sweep half) — every registry scheme against the shared suite:
/// applicable schemes are built and their advertised guarantees verified
/// exhaustively; inapplicable ones record the uniform reason.
pub fn e18_scheme_sweep(scale: Scale) -> Table {
    let registry = SchemeRegistry::standard();
    let mut table = Table::new(
        "E18",
        "scheme sweep: every registry scheme on a shared graph + fault suite",
        [
            "graph",
            "n",
            "scheme",
            "guarantee",
            "worst diameter",
            "fault sets",
            "ok",
        ],
    );
    for NamedGraph { name, graph } in e18_suite(scale) {
        let n = graph.node_count();
        for scheme in registry.iter() {
            let spec = SchemeSpec::named(scheme.name());
            match scheme.applicability(&graph, &spec.params) {
                Err(inap) => {
                    table.push_row([
                        name.clone(),
                        n.to_string(),
                        scheme.name().to_string(),
                        inap.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
                Ok(_) => {
                    let built = scheme
                        .build(&graph, &spec.params)
                        .expect("applicability promised this build");
                    let claim = built.guarantee().claim();
                    let report = built.verify(FaultStrategy::Exhaustive, threads());
                    table.push_row([
                        name.clone(),
                        n.to_string(),
                        scheme.name().to_string(),
                        format!(
                            "({}, {}) per {}",
                            claim.diameter,
                            claim.faults,
                            built.guarantee().theorem.token()
                        ),
                        fmt_diameter(report.worst_diameter),
                        report.sets_checked.to_string(),
                        fmt_bool(report.satisfies(&claim)),
                    ]);
                }
            }
        }
    }
    table.push_note(
        "One row per (graph, scheme). Inapplicable schemes record the uniform reason \
         from the core error taxonomy; applicable ones are built and their advertised \
         guarantee verified exhaustively at the full budget t.",
    );
    table
}

/// E18 (planner half) — for each suite graph, the planner enumerates
/// applicable schemes, builds the candidates in parallel and picks the
/// winner; the row records the selection and re-verifies its guarantee.
pub fn e18_planner_selection(scale: Scale) -> Table {
    let planner = Planner::new();
    let mut table = Table::new(
        "E18P",
        "planner selection: ranked winner per graph (fault budget t)",
        [
            "graph",
            "n",
            "f",
            "winner",
            "guarantee",
            "routes",
            "built/considered/ruled out",
            "ok",
        ],
    );
    for NamedGraph { name, graph } in e18_suite(scale) {
        let n = graph.node_count();
        let t = ftr_graph::connectivity::vertex_connectivity(&graph).saturating_sub(1);
        let request = PlannerRequest::tolerate(t);
        match planner.plan(&graph, &request) {
            Err(e) => {
                table.push_row([
                    name.clone(),
                    n.to_string(),
                    t.to_string(),
                    "-".to_string(),
                    e.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "no".to_string(),
                ]);
            }
            Ok(plan) => {
                let built = plan
                    .candidates
                    .iter()
                    .filter(|c| matches!(c.outcome, CandidateOutcome::Built(_)))
                    .count();
                let ruled: usize = plan.candidates.len() - built;
                let claim = plan.winner.guarantee().claim();
                let report = plan.winner.verify(FaultStrategy::Exhaustive, threads());
                table.push_row([
                    name.clone(),
                    n.to_string(),
                    t.to_string(),
                    plan.winner.spec().to_string(),
                    format!(
                        "({}, {}) per {}",
                        claim.diameter,
                        claim.faults,
                        plan.winner.guarantee().theorem.token()
                    ),
                    plan.winner.guarantee().routes.to_string(),
                    format!("{built}/{}/{ruled}", plan.candidates.len()),
                    fmt_bool(report.satisfies(&claim)),
                ]);
            }
        }
    }
    table.push_note(
        "Ranking: smallest guaranteed diameter, then exact route count, then registry \
         order; candidate builds run data-parallel and the winner is thread-count \
         independent (pinned by core proptests).",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_sweep_covers_every_scheme_per_graph() {
        let t = e18_scheme_sweep(Scale::Quick);
        let registry = SchemeRegistry::standard();
        assert_eq!(t.rows().len(), 3 * registry.len());
        // Applicable rows must all hold their advertised guarantee.
        let mut applicable = 0;
        for row in t.rows() {
            match row[6].as_str() {
                "yes" => applicable += 1,
                "-" => assert!(row[3].contains("inapplicable"), "{row:?}"),
                other => panic!("guarantee violated ({other}): {row:?}"),
            }
        }
        assert!(applicable >= 8, "suite exercises several schemes");
        // The hypercube scheme applies exactly on Q3.
        let q3_hc = t
            .rows()
            .iter()
            .find(|r| r[0] == "Q3" && r[2] == "hypercube")
            .unwrap();
        assert_eq!(q3_hc[6], "yes");
        let c12_hc = t
            .rows()
            .iter()
            .find(|r| r[0] == "C12" && r[2] == "hypercube")
            .unwrap();
        assert_eq!(c12_hc[6], "-");
    }

    #[test]
    fn e18_planner_selects_on_every_quick_graph() {
        let t = e18_planner_selection(Scale::Quick);
        assert_eq!(t.rows().len(), 3);
        assert!(t.all_yes("ok"), "{t}");
        for row in t.rows() {
            assert_ne!(row[3], "-", "a winner exists: {row:?}");
        }
    }
}

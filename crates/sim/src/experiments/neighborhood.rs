//! E6 and E7: neighborhood-set sizes (Lemma 15) and the degree
//! thresholds for construction feasibility (Theorem 16 / Corollary 17).

use ftr_core::{CircularRouting, TriCircularRouting, TriCircularVariant};
use ftr_graph::analysis::{self, SelectionOrder};
use ftr_graph::{connectivity, gen};

use super::{NamedGraph, Scale};
use crate::report::{fmt_bool, Table};

fn suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C30", gen::cycle(30).expect("valid")),
        NamedGraph::new("Q5", gen::hypercube(5).expect("valid")),
        NamedGraph::new("Torus5x6", gen::torus(5, 6).expect("valid")),
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("H(4,40)", gen::harary(4, 40).expect("valid")),
        NamedGraph::new("G(60,.05)", gen::gnp(60, 0.05, 6).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("CCC(5)", gen::cube_connected_cycles(5).expect("valid")),
            NamedGraph::new("BF(5)", gen::wrapped_butterfly(5).expect("valid")),
            NamedGraph::new("H(3,120)", gen::harary(3, 120).expect("valid")),
            NamedGraph::new("G(200,.02)", gen::gnp(200, 0.02, 7).expect("valid")),
            NamedGraph::new(
                "RandReg(100,4)",
                gen::random_regular(100, 4, 8).expect("valid"),
            ),
        ]);
    }
    graphs
}

/// E6 — Lemma 15: the greedy algorithm finds a neighborhood set of at
/// least `⌈n/(d²+1)⌉` members; the table reports the bound and the
/// sizes achieved under three candidate orders.
pub fn e6_neighborhood_sets(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6",
        "Lemma 15: greedy neighborhood-set sizes vs the n/(d^2+1) bound",
        [
            "graph",
            "n",
            "max degree d",
            "bound",
            "ascending",
            "min-degree",
            "random",
            "ok",
        ],
    );
    for NamedGraph { name, graph } in suite(scale) {
        let n = graph.node_count();
        let d = graph.max_degree();
        let bound = n.div_ceil(d * d + 1);
        let sizes: Vec<usize> = [
            SelectionOrder::Ascending,
            SelectionOrder::MinDegreeFirst,
            SelectionOrder::Random(0xE6),
        ]
        .into_iter()
        .map(|o| analysis::neighborhood_set(&graph, o).len())
        .collect();
        let ok = sizes.iter().all(|&s| s >= bound);
        table.push_row([
            name,
            n.to_string(),
            d.to_string(),
            bound.to_string(),
            sizes[0].to_string(),
            sizes[1].to_string(),
            sizes[2].to_string(),
            fmt_bool(ok),
        ]);
    }
    table.push_note("Lemma 15 holds for any candidate order; sizes often beat the bound widely.");
    table
}

/// E7 — Theorem 16 / Corollary 17: when the maximum degree is below
/// `0.79·n^(1/3)` the circular routing exists, below `0.46·n^(1/3)` the
/// tri-circular routing exists. The table compares the prediction with
/// actual construction attempts (the thresholds are sufficient, not
/// necessary, so `found` may exceed `guaranteed`).
pub fn e7_degree_thresholds(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7",
        "Corollary 17: degree thresholds vs actual construction feasibility",
        [
            "graph",
            "n",
            "d",
            "0.79 n^1/3",
            "circ guaranteed",
            "circ found",
            "0.46 n^1/3",
            "tri guaranteed",
            "tri found",
        ],
    );
    for NamedGraph { name, graph } in suite(scale) {
        let n = graph.node_count();
        let d = graph.max_degree();
        if connectivity::vertex_connectivity(&graph) == 0 {
            continue; // constructions need a connected graph
        }
        let circ_thresh = 0.79 * (n as f64).cbrt();
        let tri_thresh = 0.46 * (n as f64).cbrt();
        let circ_guaranteed = 2.0 <= d as f64 && (d as f64) < circ_thresh;
        let tri_guaranteed = 2.0 <= d as f64 && (d as f64) < tri_thresh;
        let circ_found = CircularRouting::build(&graph).is_ok();
        let tri_found = TriCircularRouting::build(&graph, TriCircularVariant::Standard).is_ok();
        table.push_row([
            name,
            n.to_string(),
            d.to_string(),
            format!("{circ_thresh:.2}"),
            fmt_bool(circ_guaranteed),
            fmt_bool(circ_found),
            format!("{tri_thresh:.2}"),
            fmt_bool(tri_guaranteed),
            fmt_bool(tri_found),
        ]);
    }
    table.push_note(
        "Corollary 17's thresholds are asymptotic sufficient conditions: 'guaranteed' implies \
         'found' (checked), while constructions often succeed far above the threshold.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_bound_holds_everywhere() {
        let t = e6_neighborhood_sets(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
        assert_eq!(t.rows().len(), 6);
    }

    #[test]
    fn e7_guaranteed_implies_found() {
        let t = e7_degree_thresholds(Scale::Quick);
        let idx = |h: &str| t.headers().iter().position(|x| x == h).unwrap();
        let (cg, cf) = (idx("circ guaranteed"), idx("circ found"));
        let (tg, tf) = (idx("tri guaranteed"), idx("tri found"));
        for row in t.rows() {
            if row[cg] == "yes" {
                assert_eq!(row[cf], "yes", "sufficient condition violated: {row:?}");
            }
            if row[tg] == "yes" {
                assert_eq!(row[tf], "yes", "sufficient condition violated: {row:?}");
            }
        }
    }
}

//! The per-theorem experiments of EXPERIMENTS.md.
//!
//! The paper proves bounds instead of measuring tables, so each theorem
//! becomes a *verification experiment*: build the construction on a
//! suite of graphs, enumerate (or sample/search) fault sets up to the
//! theorem's budget, and compare the worst observed surviving diameter
//! against the proved bound. Each experiment returns [`Table`]s whose
//! Markdown rendering is pasted into EXPERIMENTS.md by the
//! `experiments` binary.
//!
//! Every experiment takes a [`Scale`]: `Quick` keeps runtimes suitable
//! for `cargo test`, `Full` reproduces the committed tables.

mod adversary;
mod audit_exp;
mod beyond_exp;
mod bipolar_exp;
mod circular_exp;
mod hypercube_exp;
mod kernel_exp;
mod multi_exp;
mod neighborhood;
mod protocol;
mod random_graphs;
mod scaling;
mod scheme_sweep;

pub use adversary::{ablation_a2_shortcut_rule, ablation_a3_strategies};
pub use audit_exp::{e19_audit_sweep, e19_planner_audited};
pub use beyond_exp::e16_beyond_budget;
pub use bipolar_exp::{e8_bipolar_unidirectional, e9_bipolar_bidirectional};
pub use circular_exp::{
    ablation_a1_concentrator_size, e3_circular, e4_tricircular, e5_tricircular_small,
};
pub use hypercube_exp::e14_hypercube_baseline;
pub use kernel_exp::{ablation_a4_fault_sweep, e1_kernel_theorem3, e2_kernel_theorem4};
pub use multi_exp::{e11_multiroutings, e12_augmentation};
pub use neighborhood::{e6_neighborhood_sets, e7_degree_thresholds};
pub use protocol::e15_broadcast;
pub use random_graphs::e10_two_trees_probability;
pub use scaling::{s1_scaling, s2_stretch};
pub use scheme_sweep::{e18_planner_selection, e18_scheme_sweep};

use ftr_graph::Graph;

use crate::report::Table;

/// How much work an experiment run should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small graph suite, exhaustive only where cheap; suitable for
    /// `cargo test`.
    Quick,
    /// The committed EXPERIMENTS.md configuration (use `--release`).
    Full,
}

/// A named experiment, as listed by the `experiments` binary.
pub struct ExperimentSpec {
    /// EXPERIMENTS.md identifier (`"e1"`, ..., `"a4"`).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Runner producing the result tables.
    pub run: fn(Scale) -> Vec<Table>,
}

/// Registry of all experiments (E13, the figures, is rendered directly
/// by the `experiments` binary via [`crate::viz`]).
pub fn registry() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            id: "e1",
            title: "Theorem 3: kernel routing is (2t, t)-tolerant",
            run: |s| vec![e1_kernel_theorem3(s)],
        },
        ExperimentSpec {
            id: "e2",
            title: "Theorem 4: kernel routing is (4, t/2)-tolerant",
            run: |s| vec![e2_kernel_theorem4(s)],
        },
        ExperimentSpec {
            id: "e3",
            title: "Theorem 10: circular routing is (6, t)-tolerant",
            run: |s| vec![e3_circular(s)],
        },
        ExperimentSpec {
            id: "e4",
            title: "Theorem 13: tri-circular routing is (4, t)-tolerant",
            run: |s| vec![e4_tricircular(s)],
        },
        ExperimentSpec {
            id: "e5",
            title: "Remark 14: small tri-circular routing is (5, t)-tolerant",
            run: |s| vec![e5_tricircular_small(s)],
        },
        ExperimentSpec {
            id: "e6",
            title: "Lemma 15: greedy neighborhood sets reach n/(d^2+1)",
            run: |s| vec![e6_neighborhood_sets(s)],
        },
        ExperimentSpec {
            id: "e7",
            title: "Corollary 17: degree thresholds for construction feasibility",
            run: |s| vec![e7_degree_thresholds(s)],
        },
        ExperimentSpec {
            id: "e8",
            title: "Theorem 20: unidirectional bipolar routing is (4, t)-tolerant",
            run: |s| vec![e8_bipolar_unidirectional(s)],
        },
        ExperimentSpec {
            id: "e9",
            title: "Theorem 23: bidirectional bipolar routing is (5, t)-tolerant",
            run: |s| vec![e9_bipolar_bidirectional(s)],
        },
        ExperimentSpec {
            id: "e10",
            title: "Lemma 24/Theorem 25: two-trees probability in G(n, p)",
            run: |s| vec![e10_two_trees_probability(s)],
        },
        ExperimentSpec {
            id: "e11",
            title: "Section 6: multiroutings (diameter 1 / 3 / measured)",
            run: |s| vec![e11_multiroutings(s)],
        },
        ExperimentSpec {
            id: "e12",
            title: "Section 6: clique-augmented kernel is (3, t)-tolerant",
            run: |s| vec![e12_augmentation(s)],
        },
        ExperimentSpec {
            id: "e14",
            title: "Dolev et al. hypercube baseline: bit-fixing measured",
            run: |s| vec![e14_hypercube_baseline(s)],
        },
        ExperimentSpec {
            id: "e15",
            title: "Broadcast with route counters completes within the bound",
            run: |s| vec![e15_broadcast(s)],
        },
        ExperimentSpec {
            id: "e16",
            title: "Open problem 3: component diameters beyond the fault budget",
            run: |s| vec![e16_beyond_budget(s)],
        },
        ExperimentSpec {
            id: "e18",
            title: "Scheme sweep + planner selection over the whole registry",
            run: |s| vec![e18_scheme_sweep(s), e18_planner_selection(s)],
        },
        ExperimentSpec {
            id: "e19",
            title: "Audit sweep: branch-and-bound certification + audited planner winners",
            run: |s| vec![e19_audit_sweep(s), e19_planner_audited(s)],
        },
        ExperimentSpec {
            id: "s1",
            title: "Scaling: construction cost and route-table footprint vs n",
            run: |s| vec![s1_scaling(s)],
        },
        ExperimentSpec {
            id: "s2",
            title: "Scaling: route stretch vs shortest paths",
            run: |s| vec![s2_stretch(s)],
        },
        ExperimentSpec {
            id: "a1",
            title: "Ablation: circular routing below the required concentrator size",
            run: |s| vec![ablation_a1_concentrator_size(s)],
        },
        ExperimentSpec {
            id: "a2",
            title: "Ablation: tree routings without the direct-edge shortcut rule",
            run: |s| vec![ablation_a2_shortcut_rule(s)],
        },
        ExperimentSpec {
            id: "a3",
            title: "Ablation: adversarial vs random fault search",
            run: |s| vec![ablation_a3_strategies(s)],
        },
        ExperimentSpec {
            id: "a4",
            title: "Ablation: kernel routing as |F| passes t/2",
            run: |s| vec![ablation_a4_fault_sweep(s)],
        },
    ]
}

/// Worker thread count for tolerance verification.
pub(crate) fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// A named graph in an experiment suite.
pub(crate) struct NamedGraph {
    pub name: String,
    pub graph: Graph,
}

impl NamedGraph {
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        NamedGraph {
            name: name.into(),
            graph,
        }
    }
}

/// The standard verification column set used by most experiments (the
/// scheme-sweep harness in [`scheme_sweep`] fills it).
pub(crate) const VERIFICATION_HEADERS: [&str; 8] = [
    "graph",
    "n",
    "t",
    "claim",
    "strategy",
    "worst diameter",
    "fault sets",
    "ok",
];

//! S1 and S2 — systems-style scaling tables the paper never measured:
//! construction cost and route-table footprint as the network grows.
//!
//! These quantify what a deployment would actually pay for each
//! construction: how long building the table takes, how many routes it
//! stores, and how long its routes are relative to the network
//! diameter.

use std::time::Instant;

use ftr_core::{
    BipolarRouting, CircularRouting, KernelRouting, Routing, RoutingKind, TriCircularRouting,
    TriCircularVariant,
};
use ftr_graph::{gen, traversal, Graph};

use super::Scale;
use crate::report::Table;

fn fmt_ms(nanos: u128) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

fn push_scaling_row(table: &mut Table, name: &str, g: &Graph, routing: &Routing, build_ns: u128) {
    let stats = routing.stats();
    let diam = traversal::diameter(g, None)
        .map(|d| d.to_string())
        .unwrap_or_else(|| "inf".into());
    // Constructions return frozen tables, so this is the exact CSR
    // footprint — the number a deployment would provision per route.
    let bytes_per_route = routing.memory_bytes() as f64 / stats.routes.max(1) as f64;
    table.push_row([
        name.to_string(),
        g.node_count().to_string(),
        g.edge_count().to_string(),
        diam,
        fmt_ms(build_ns),
        stats.routes.to_string(),
        stats.stored_paths.to_string(),
        format!("{:.2}", stats.mean_route_len),
        stats.max_route_len.to_string(),
        format!("{bytes_per_route:.1}"),
    ]);
}

/// S1 — build time and route-table size across network sizes, one row
/// per (construction, n).
pub fn s1_scaling(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[16, 24],
        Scale::Full => &[16, 24, 32, 48, 64, 96],
    };
    let mut table = Table::new(
        "S1",
        "construction cost and route-table footprint vs network size",
        [
            "construction",
            "n",
            "edges",
            "graph diameter",
            "build ms",
            "routes",
            "stored paths",
            "mean route len",
            "max route len",
            "bytes/route",
        ],
    );
    for &n in sizes {
        // kernel + circular on 4-connected circulants
        let g = gen::harary(4, n).expect("valid");
        let start = Instant::now();
        let kernel = KernelRouting::build(&g).expect("connected");
        push_scaling_row(
            &mut table,
            "kernel/H(4,n)",
            &g,
            kernel.routing(),
            start.elapsed().as_nanos(),
        );
        // circular needs K = t + 2 = 5 neighborhood-set members, which
        // circulants only fit from n ≈ 32 up
        let start = Instant::now();
        if let Ok(circ) = CircularRouting::build(&g) {
            push_scaling_row(
                &mut table,
                "circular/H(4,n)",
                &g,
                circ.routing(),
                start.elapsed().as_nanos(),
            );
        }
        // bipolar on cycles (two-trees graphs)
        let g = gen::cycle(n).expect("valid");
        let start = Instant::now();
        let bip = BipolarRouting::build(&g, RoutingKind::Unidirectional).expect("two-trees");
        push_scaling_row(
            &mut table,
            "bipolar-uni/C_n",
            &g,
            bip.routing(),
            start.elapsed().as_nanos(),
        );
        // tri-circular needs K = 15 members: only for n >= 45
        if n >= 45 {
            let start = Instant::now();
            let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).expect("fits");
            push_scaling_row(
                &mut table,
                "tri-circular/C_n",
                &g,
                tri.routing(),
                start.elapsed().as_nanos(),
            );
        }
    }
    table.push_note(
        "Route counts grow linearly in n for all constructions (each node keeps O(K · (t+1)) \
         tree routes plus its edges); build time is dominated by the per-node max-flow calls.",
    );
    table
}

/// S2 — stretch: how much longer are fixed routes than shortest paths,
/// per construction (mean route length / mean shortest-path distance
/// over routed pairs)?
pub fn s2_stretch(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 20,
        Scale::Full => 40,
    };
    let mut table = Table::new(
        "S2",
        "route stretch: fixed-route length vs shortest-path distance over routed pairs",
        [
            "construction",
            "n",
            "routed pairs",
            "mean stretch",
            "max stretch",
        ],
    );
    let mut measure = |name: &str, g: &Graph, routing: &Routing| {
        let mut total_stretch = 0.0;
        let mut max_stretch: f64 = 0.0;
        let mut pairs = 0usize;
        for (s, d, view) in routing.routes() {
            let shortest = traversal::distance(g, s, d, None);
            if shortest == 0 || shortest == ftr_graph::INFINITY {
                continue;
            }
            let stretch = view.len() as f64 / shortest as f64;
            total_stretch += stretch;
            max_stretch = max_stretch.max(stretch);
            pairs += 1;
        }
        table.push_row([
            name.to_string(),
            g.node_count().to_string(),
            pairs.to_string(),
            format!("{:.3}", total_stretch / pairs as f64),
            format!("{max_stretch:.3}"),
        ]);
    };
    let g = gen::harary(4, n.max(40)).expect("valid");
    let kernel = KernelRouting::build(&g).expect("connected");
    measure("kernel/H(4,n)", &g, kernel.routing());
    let circ = CircularRouting::build(&g).expect("n >= 40 fits the concentrator");
    measure("circular/H(4,n)", &g, circ.routing());
    let c = gen::cycle(n).expect("valid");
    let bip = BipolarRouting::build(&c, RoutingKind::Unidirectional).expect("two-trees");
    measure("bipolar-uni/C_n", &c, bip.routing());
    table.push_note(
        "Stretch 1.0 means every fixed route is a shortest path. Tree routings are built from \
         max-flow path systems, which trade per-route optimality for disjointness — the price \
         of fault tolerance in route length.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_rows_cover_all_sizes() {
        let t = s1_scaling(Scale::Quick);
        // sizes 16 and 24: kernel + bipolar each; circular and
        // tri-circular need larger graphs
        assert_eq!(t.rows().len(), 4);
        for row in t.rows() {
            let routes: usize = row[5].parse().unwrap();
            let paths: usize = row[6].parse().unwrap();
            assert!(
                routes >= paths,
                "bidirectional sharing cannot exceed routes"
            );
        }
    }

    #[test]
    fn s2_stretch_is_at_least_one() {
        let t = s2_stretch(Scale::Quick);
        for row in t.rows() {
            let mean: f64 = row[3].parse().unwrap();
            let max: f64 = row[4].parse().unwrap();
            assert!(mean >= 1.0, "{row:?}");
            assert!(max >= mean, "{row:?}");
        }
    }
}

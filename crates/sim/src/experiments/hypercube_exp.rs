//! E14: the hypercube baseline — bit-fixing routing measured against
//! the bounds the introduction quotes from Dolev et al. (3 for a
//! bidirectional routing, 2 for a unidirectional one, with up to
//! `d - 1` faults).

use ftr_core::{verify_tolerance, Compile, FaultStrategy, HypercubeRouting, RoutingKind};

use super::{threads, Scale};
use crate::report::{fmt_bool, fmt_diameter, Table};

/// E14 — measure bit-fixing on `Q_d` exhaustively and report how it
/// compares with the quoted bounds (bit-fixing stands in for Dolev et
/// al.'s unpublished construction, so "meets quoted" may be `no`
/// without contradicting the paper).
pub fn e14_hypercube_baseline(scale: Scale) -> Table {
    let dims: &[usize] = match scale {
        Scale::Quick => &[3, 4],
        Scale::Full => &[3, 4, 5],
    };
    let mut table = Table::new(
        "E14",
        "bit-fixing on hypercubes vs the bounds quoted from Dolev et al.",
        [
            "dim",
            "kind",
            "t",
            "quoted bound",
            "worst diameter",
            "fault sets",
            "meets quoted",
        ],
    );
    for &dim in dims {
        for kind in [RoutingKind::Bidirectional, RoutingKind::Unidirectional] {
            let hc = HypercubeRouting::build(dim, kind).expect("dims are valid");
            let claim = hc.quoted_bound();
            let report = verify_tolerance(
                &hc.routing().compile(),
                claim.faults,
                FaultStrategy::Exhaustive,
                threads(),
            );
            table.push_row([
                dim.to_string(),
                format!("{kind:?}"),
                claim.faults.to_string(),
                claim.diameter.to_string(),
                fmt_diameter(report.worst_diameter),
                report.sets_checked.to_string(),
                fmt_bool(report.satisfies(&claim)),
            ]);
        }
    }
    table.push_note(
        "Dolev et al.'s constructions achieving (3, d-1) / (2, d-1) are not given in this \
         paper; rows measure canonical bit-fixing as the baseline.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_measures_all_dims_and_kinds() {
        let t = e14_hypercube_baseline(Scale::Quick);
        assert_eq!(t.rows().len(), 4);
        // Bit-fixing never disconnects Q3/Q4 under t faults? Measured:
        // the worst diameter cell is either a number or inf, but the
        // table itself must always be produced.
        for row in t.rows() {
            assert!(!row[4].is_empty());
        }
    }
}

//! E8 and E9: the bipolar routings (Theorems 20 and 23), driven by the
//! generic scheme-sweep harness over the `bipolar:uni` / `bipolar:bi`
//! specs.

use ftr_graph::gen;

use super::scheme_sweep::{push_scheme_rows, SweepConfig};
use super::{NamedGraph, Scale, VERIFICATION_HEADERS};
use crate::report::Table;

fn suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C12", gen::cycle(12).expect("valid")),
        NamedGraph::new("C24", gen::cycle(24).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("CCC(5)", gen::cube_connected_cycles(5).expect("valid")),
            NamedGraph::new("CCC(6)", gen::cube_connected_cycles(6).expect("valid")),
        ]);
    }
    graphs
}

fn run(id: &str, title: &str, spec: &str, scale: Scale) -> Table {
    let mut table = Table::new(id, title, VERIFICATION_HEADERS);
    push_scheme_rows(
        &mut table,
        &spec.parse().expect("valid spec"),
        &|t| t,
        &suite(scale),
        &SweepConfig::sampled(15_000, 1_500, 0xB1),
    );
    table.push_note(
        "Suite graphs have girth >= 5 and diameter >= 5, so two-trees roots exist \
         (cycles and cube-connected cycles; tori and hypercubes fail the property).",
    );
    table
}

/// E8 — Theorem 20: the unidirectional bipolar routing is
/// `(4, t)`-tolerant on two-trees graphs.
pub fn e8_bipolar_unidirectional(scale: Scale) -> Table {
    run(
        "E8",
        "Theorem 20: unidirectional bipolar routing is (4, t)-tolerant",
        "bipolar:uni",
        scale,
    )
}

/// E9 — Theorem 23: the bidirectional bipolar routing is
/// `(5, t)`-tolerant on two-trees graphs.
pub fn e9_bipolar_bidirectional(scale: Scale) -> Table {
    run(
        "E9",
        "Theorem 23: bidirectional bipolar routing is (5, t)-tolerant",
        "bipolar:bi",
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_quick_satisfies_theorem_20() {
        let t = e8_bipolar_unidirectional(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn e9_quick_satisfies_theorem_23() {
        let t = e9_bipolar_bidirectional(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }
}

//! E8 and E9: the bipolar routings (Theorems 20 and 23).

use ftr_core::{BipolarRouting, FaultStrategy, RoutingKind};
use ftr_graph::gen;

use super::circular_exp::binomial;
use super::{push_verification_row, NamedGraph, Scale, VERIFICATION_HEADERS};
use crate::report::Table;

fn suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C12", gen::cycle(12).expect("valid")),
        NamedGraph::new("C24", gen::cycle(24).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("CCC(5)", gen::cube_connected_cycles(5).expect("valid")),
            NamedGraph::new("CCC(6)", gen::cube_connected_cycles(6).expect("valid")),
        ]);
    }
    graphs
}

fn run(id: &str, title: &str, kind: RoutingKind, scale: Scale) -> Table {
    let mut table = Table::new(id, title, VERIFICATION_HEADERS);
    for NamedGraph { name, graph } in suite(scale) {
        let b =
            BipolarRouting::build(&graph, kind).expect("suite graphs have the two-trees property");
        b.routing().validate(&graph).expect("valid routing");
        let n = graph.node_count();
        let t = b.tolerated_faults();
        let strategy = if binomial(n, t) <= 15_000 {
            FaultStrategy::Exhaustive
        } else {
            FaultStrategy::RandomSample {
                trials: 1_500,
                seed: 0xB1,
            }
        };
        push_verification_row(&mut table, &name, n, t, b.routing(), b.claim(), strategy);
    }
    table.push_note(
        "Suite graphs have girth >= 5 and diameter >= 5, so two-trees roots exist \
         (cycles and cube-connected cycles; tori and hypercubes fail the property).",
    );
    table
}

/// E8 — Theorem 20: the unidirectional bipolar routing is
/// `(4, t)`-tolerant on two-trees graphs.
pub fn e8_bipolar_unidirectional(scale: Scale) -> Table {
    run(
        "E8",
        "Theorem 20: unidirectional bipolar routing is (4, t)-tolerant",
        RoutingKind::Unidirectional,
        scale,
    )
}

/// E9 — Theorem 23: the bidirectional bipolar routing is
/// `(5, t)`-tolerant on two-trees graphs.
pub fn e9_bipolar_bidirectional(scale: Scale) -> Table {
    run(
        "E9",
        "Theorem 23: bidirectional bipolar routing is (5, t)-tolerant",
        RoutingKind::Bidirectional,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_quick_satisfies_theorem_20() {
        let t = e8_bipolar_unidirectional(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn e9_quick_satisfies_theorem_23() {
        let t = e9_bipolar_bidirectional(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }
}

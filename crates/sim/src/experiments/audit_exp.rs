//! E19 — the audit sweep: branch-and-bound certification across the
//! whole scheme registry.
//!
//! For every applicable `(graph, scheme)` pair of a shared suite the
//! sweep audits the *advertised* guarantee (expected to hold — these are
//! the paper's theorems) and a *tightened* claim one below the
//! advertised diameter (where violations and their witnesses surface).
//! Each audit emits a certificate that is immediately re-validated by
//! the independent `ftr-audit` checker; the `cert` column records that
//! round trip. The planner half runs `plan_audited`: the planner's
//! winner has its guarantee searched and — on a holds verdict —
//! upgraded from advertised to audited.

use ftr_audit::{audit_built, check, SearchConfig, SearchMode, Verdict};
use ftr_core::{SchemeRegistry, SchemeSpec, ToleranceClaim};
use ftr_graph::gen;

use super::{threads, NamedGraph, Scale};
use crate::report::{fmt_bool, Table};

/// The E19 shared suite (mirrors E18's applicability coverage).
fn e19_suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C12", gen::cycle(12).expect("valid")),
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Q3", gen::hypercube(3).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("C45", gen::cycle(45).expect("valid")),
            NamedGraph::new("H(3,20)", gen::harary(3, 20).expect("valid")),
            NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
        ]);
    }
    graphs
}

fn search_config() -> SearchConfig {
    SearchConfig {
        mode: SearchMode::Certify,
        threads: threads(),
        ..SearchConfig::default()
    }
}

fn render_verdict(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Holds => "holds".to_string(),
        Verdict::Violated { diameter, witness } => format!(
            "violated d={} by {witness:?}",
            diameter.map_or("disc".to_string(), |d| d.to_string())
        ),
        Verdict::Exhausted => "exhausted".to_string(),
    }
}

/// E19 (sweep half) — audit the advertised and one tightened claim for
/// every applicable registry scheme on the shared suite.
pub fn e19_audit_sweep(scale: Scale) -> Table {
    let registry = SchemeRegistry::standard();
    let mut table = Table::new(
        "E19",
        "audit sweep: branch-and-bound certification across the registry",
        [
            "graph", "n", "scheme", "claim", "verdict", "visited", "pruned", "space", "speedup",
            "cert",
        ],
    );
    for NamedGraph { name, graph } in e19_suite(scale) {
        let n = graph.node_count();
        for scheme in registry.iter() {
            let spec = SchemeSpec::named(scheme.name());
            let Ok(built) = scheme.build(&graph, &spec.params) else {
                continue; // inapplicable here; E18 records the reasons
            };
            let advertised = built.guarantee().claim();
            let tightened = ToleranceClaim {
                diameter: advertised.diameter.saturating_sub(1),
                faults: advertised.faults,
            };
            for (label, claim) in [("advertised", advertised), ("tightened", tightened)] {
                let mut built = built.clone();
                let (report, cert) = audit_built(&mut built, &graph, Some(claim), &search_config());
                let cert_ok = check(&cert.serialize()).is_ok();
                table.push_row([
                    name.clone(),
                    n.to_string(),
                    scheme.name().to_string(),
                    format!("{claim} ({label})"),
                    render_verdict(&report.verdict),
                    report.visited.to_string(),
                    report.pruned_sets.to_string(),
                    report.space.to_string(),
                    format!("{:.1}x", report.space as f64 / report.visited.max(1) as f64),
                    fmt_bool(cert_ok),
                ]);
            }
        }
    }
    table.push_note(
        "Each row is one branch-and-bound audit (certify mode): `visited + pruned = space` \
         for holds verdicts; `speedup` is space/visited, the factor saved over exhaustive \
         enumeration. `cert` records that the emitted certificate passed the independent \
         `ftr-audit` re-check (hash, rebuild, accounting, witness re-measurement).",
    );
    table
}

/// E19 (planner half) — `plan_audited`: the planner's winner per suite
/// graph has its guarantee searched and upgraded to audited.
pub fn e19_planner_audited(scale: Scale) -> Table {
    let planner = ftr_core::Planner::new();
    let mut table = Table::new(
        "E19P",
        "plan + audit: the winner's guarantee upgraded from advertised to audited",
        [
            "graph",
            "n",
            "f",
            "winner",
            "guarantee",
            "verdict",
            "visited/space",
            "cert",
        ],
    );
    for NamedGraph { name, graph } in e19_suite(scale) {
        let n = graph.node_count();
        let t = ftr_graph::connectivity::vertex_connectivity(&graph).saturating_sub(1);
        let request = ftr_core::PlannerRequest::tolerate(t);
        match ftr_audit::plan_audited(&planner, &graph, &request, &search_config()) {
            Err(e) => {
                table.push_row([
                    name.clone(),
                    n.to_string(),
                    t.to_string(),
                    "-".to_string(),
                    e.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "no".to_string(),
                ]);
            }
            Ok((plan, report, cert)) => {
                let cert_ok = check(&cert.serialize()).is_ok();
                table.push_row([
                    name.clone(),
                    n.to_string(),
                    t.to_string(),
                    plan.winner.spec().to_string(),
                    plan.winner.guarantee().to_string(),
                    render_verdict(&report.verdict),
                    format!("{}/{}", report.visited, report.space),
                    fmt_bool(cert_ok),
                ]);
            }
        }
    }
    table.push_note(
        "The winner's guarantee column shows `[audited]` when the search certified the \
         advertised bound over every fault set within budget — the guarantee upgrade \
         `ftr_audit::plan_audited` wires through the planner.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_advertised_claims_hold_and_certs_recheck() {
        let t = e19_audit_sweep(Scale::Quick);
        assert!(t.all_yes("cert"), "{t}");
        let mut advertised = 0;
        for row in t.rows() {
            if row[3].contains("advertised") {
                advertised += 1;
                assert_eq!(row[4], "holds", "{row:?}");
                // Full accounting: visited + pruned == space.
                let visited: u64 = row[5].parse().unwrap();
                let pruned: u64 = row[6].parse().unwrap();
                let space: u64 = row[7].parse().unwrap();
                assert_eq!(visited + pruned, space, "{row:?}");
            }
        }
        assert!(advertised >= 8, "suite exercises several schemes");
    }

    #[test]
    fn e19_planner_winners_get_audited() {
        let t = e19_planner_audited(Scale::Quick);
        assert_eq!(t.rows().len(), 3);
        assert!(t.all_yes("cert"), "{t}");
        for row in t.rows() {
            assert_eq!(row[5], "holds", "{row:?}");
            assert!(row[4].contains("[audited]"), "{row:?}");
        }
    }
}

//! E15 — the broadcast motivation from the introduction: recomputing a
//! route table after faults takes at most surviving-diameter many
//! rounds when messages carry a route counter bounded by the
//! construction's claim.

use ftr_core::{KernelRouting, RouteTable};
use ftr_graph::gen;

use super::{NamedGraph, Scale};
use crate::broadcast::simulate_broadcast;
use crate::faults::FaultPlan;
use crate::report::{fmt_bool, Table};

/// E15 — for sampled fault sets within the Theorem 4 budget, broadcast
/// from every surviving origin with the route counter bound set to the
/// claim (4): every broadcast must complete, in at most
/// surviving-diameter rounds.
pub fn e15_broadcast(scale: Scale) -> Table {
    let mut graphs = vec![
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.push(NamedGraph::new(
            "H(4,20)",
            gen::harary(4, 20).expect("valid"),
        ));
        graphs.push(NamedGraph::new("Q4", gen::hypercube(4).expect("valid")));
    }
    let trials = match scale {
        Scale::Quick => 5,
        Scale::Full => 25,
    };
    let mut table = Table::new(
        "E15",
        "broadcast with route counter bound 4 under |F| <= t/2 (Theorem 4 regime)",
        [
            "graph",
            "n",
            "faults",
            "fault trials",
            "origins",
            "max rounds",
            "surviving diameter max",
            "all complete",
        ],
    );
    for NamedGraph { name, graph } in graphs {
        let kernel = KernelRouting::build(&graph).expect("connected");
        let f = kernel.tolerated_faults() / 2;
        let n = graph.node_count();
        let mut max_rounds = 0;
        let mut max_diam = 0;
        let mut origins = 0u64;
        let mut all_complete = true;
        for trial in 0..trials {
            let faults = FaultPlan::Uniform {
                count: f,
                seed: 0xE15_000 + trial as u64,
            }
            .materialize(n);
            let diam = kernel
                .routing()
                .surviving(&faults)
                .diameter()
                .expect("within the tolerance budget the surviving graph is connected");
            max_diam = max_diam.max(diam);
            for origin in 0..n as u32 {
                if faults.contains(origin) {
                    continue;
                }
                origins += 1;
                let out = simulate_broadcast(kernel.routing(), &faults, origin, 4);
                all_complete &= out.complete();
                max_rounds = max_rounds.max(out.rounds);
            }
        }
        table.push_row([
            name,
            n.to_string(),
            f.to_string(),
            trials.to_string(),
            origins.to_string(),
            max_rounds.to_string(),
            max_diam.to_string(),
            fmt_bool(all_complete && max_rounds <= max_diam),
        ]);
    }
    table.push_note(
        "Rounds are bounded by the origin's surviving eccentricity <= surviving diameter <= 4 \
         (Theorem 4), so a route counter of 4 always suffices in this regime.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_quick_all_complete() {
        let t = e15_broadcast(Scale::Quick);
        assert!(t.all_yes("all complete"), "{t}");
    }
}

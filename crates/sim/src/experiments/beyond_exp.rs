//! E16 — open problem 3: behavior beyond the fault budget.
//!
//! The paper asks whether routings stay "well behaved" when more than
//! `t` faults occur: the network may disconnect, but each surviving
//! component should keep a small internal diameter. This experiment
//! pushes the kernel and circular routings past their budgets and
//! profiles the components.

use ftr_core::{beyond, CircularRouting, KernelRouting, RouteTable, Routing};
use ftr_graph::gen;

use super::{NamedGraph, Scale};
use crate::faults::FaultPlan;
use crate::report::Table;

fn profile_rows(
    table: &mut Table,
    name: &str,
    routing: &Routing,
    t: usize,
    extra_max: usize,
    trials: usize,
) {
    let n = routing.node_count();
    for extra in 0..=extra_max {
        let f = t + extra;
        let mut disconnected = 0usize;
        let mut worst_comp_diam = 0u32;
        let mut directional_dead = 0usize;
        let mut smallest_largest = n;
        for trial in 0..trials {
            let faults = FaultPlan::Uniform {
                count: f.min(n - 1),
                seed: 0xE1600 + (extra * 1000 + trial) as u64,
            }
            .materialize(n);
            let s = routing.surviving(&faults);
            let p = beyond::component_profile(&s);
            if !p.is_connected() {
                disconnected += 1;
            }
            match p.max_component_diameter() {
                Some(d) => worst_comp_diam = worst_comp_diam.max(d),
                None => directional_dead += 1,
            }
            smallest_largest = smallest_largest.min(p.largest_component());
        }
        table.push_row([
            name.to_string(),
            format!("t+{extra}"),
            f.to_string(),
            trials.to_string(),
            format!("{disconnected}/{trials}"),
            worst_comp_diam.to_string(),
            directional_dead.to_string(),
            smallest_largest.to_string(),
        ]);
    }
}

/// E16 — component profile of the kernel and circular routings at and
/// beyond their fault budgets.
pub fn e16_beyond_budget(scale: Scale) -> Table {
    let (graphs, trials, extra) = match scale {
        Scale::Quick => (
            vec![NamedGraph::new("C12", gen::cycle(12).expect("valid"))],
            10,
            2,
        ),
        Scale::Full => (
            vec![
                NamedGraph::new("C20", gen::cycle(20).expect("valid")),
                NamedGraph::new("H(3,24)", gen::harary(3, 24).expect("valid")),
                NamedGraph::new("Torus4x5", gen::torus(4, 5).expect("valid")),
            ],
            40,
            3,
        ),
    };
    let mut table = Table::new(
        "E16",
        "open problem 3: per-component diameters beyond the fault budget (|F| = t + extra)",
        [
            "graph",
            "budget",
            "faults",
            "trials",
            "disconnected",
            "worst component diameter",
            "directionally dead components",
            "min largest-component size",
        ],
    );
    for NamedGraph { name, graph } in graphs {
        let kernel = KernelRouting::build(&graph).expect("connected");
        profile_rows(
            &mut table,
            &format!("{name}/kernel"),
            kernel.routing(),
            kernel.tolerated_faults(),
            extra,
            trials,
        );
        if let Ok(circ) = CircularRouting::build(&graph) {
            profile_rows(
                &mut table,
                &format!("{name}/circular"),
                circ.routing(),
                circ.tolerated_faults(),
                extra,
                trials,
            );
        }
    }
    table.push_note(
        "Within budget (the t+0 rows) the surviving graph never disconnects. Beyond budget the \
         components always remain internally routable (no directional dead ends), but their \
         internal diameter is NOT constant: on a broken ring it degenerates toward the segment \
         length (13 on C20), while denser families (H(3,24), Torus4x5) stay within a few hops. \
         Open problem 3 — constructions that keep per-component diameters constant — remains \
         genuinely open for these routings.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_within_budget_rows_never_disconnect() {
        let t = e16_beyond_budget(Scale::Quick);
        for row in t.rows().iter().filter(|r| r[1] == "t+0") {
            assert!(
                row[4].starts_with("0/"),
                "within budget must stay connected: {row:?}"
            );
        }
    }

    #[test]
    fn e16_reports_all_regimes() {
        let t = e16_beyond_budget(Scale::Quick);
        // C12: kernel + circular, each with t+0..t+2 rows
        assert_eq!(t.rows().len(), 6);
    }
}

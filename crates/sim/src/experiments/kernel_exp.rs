//! E1, E2 and A4: the kernel routing bounds (Theorems 3 and 4).

use ftr_core::{verify_tolerance, Compile, FaultStrategy, KernelRouting, SchemeSpec};
use ftr_graph::gen;

use super::scheme_sweep::{push_scheme_rows, SweepConfig};
use super::{threads, NamedGraph, Scale, VERIFICATION_HEADERS};
use crate::report::{fmt_diameter, Table};

fn suite(scale: Scale) -> Vec<NamedGraph> {
    let mut graphs = vec![
        NamedGraph::new("C8", gen::cycle(8).expect("valid")),
        NamedGraph::new("Petersen", gen::petersen()),
        NamedGraph::new("Torus3x4", gen::torus(3, 4).expect("valid")),
        NamedGraph::new("H(4,12)", gen::harary(4, 12).expect("valid")),
    ];
    if scale == Scale::Full {
        graphs.extend([
            NamedGraph::new("Q4", gen::hypercube(4).expect("valid")),
            NamedGraph::new("CCC(3)", gen::cube_connected_cycles(3).expect("valid")),
            NamedGraph::new("BF(3)", gen::wrapped_butterfly(3).expect("valid")),
            NamedGraph::new("H(5,14)", gen::harary(5, 14).expect("valid")),
            NamedGraph::new("Torus4x5", gen::torus(4, 5).expect("valid")),
            NamedGraph::new("H(3,30)", gen::harary(3, 30).expect("valid")),
        ]);
    }
    graphs
}

/// E1 — Theorem 3: the kernel routing is `(2t, t)`-tolerant (bounded
/// below by the Dolev et al. `max{2t, 4}` form). Driven by the generic
/// scheme-sweep harness at the full budget `t`.
pub fn e1_kernel_theorem3(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1",
        "Theorem 3: kernel routing is (max{2t,4}, t)-tolerant",
        VERIFICATION_HEADERS,
    );
    push_scheme_rows(
        &mut table,
        &SchemeSpec::named("kernel"),
        &|t| t,
        &suite(scale),
        &SweepConfig::exhaustive(),
    );
    table.push_note(
        "Exhaustive over all fault sets |F| <= t; 'worst diameter' is the maximum \
         surviving-route-graph diameter observed.",
    );
    table
}

/// E2 — Theorem 4: the kernel routing is `(4, ⌊t/2⌋)`-tolerant. The
/// harness budget `⌊t/2⌋` makes the scheme advertise the Theorem 4
/// regime.
pub fn e2_kernel_theorem4(scale: Scale) -> Table {
    let mut table = Table::new(
        "E2",
        "Theorem 4: kernel routing is (4, t/2)-tolerant",
        VERIFICATION_HEADERS,
    );
    push_scheme_rows(
        &mut table,
        &SchemeSpec::named("kernel"),
        &|t| t / 2,
        &suite(scale),
        &SweepConfig::exhaustive(),
    );
    table.push_note("Fault budget is floor(t/2): half the connectivity margin, constant bound 4.");
    table
}

/// A4 — how the kernel's worst surviving diameter grows as the fault
/// budget passes `⌊t/2⌋` (the Theorem 4 regime) toward `t` (the
/// Theorem 3 regime).
pub fn ablation_a4_fault_sweep(scale: Scale) -> Table {
    let graph = match scale {
        Scale::Quick => gen::harary(4, 12).expect("valid"),
        Scale::Full => gen::harary(5, 16).expect("valid"),
    };
    let kernel = KernelRouting::build(&graph).expect("connected");
    let t = kernel.tolerated_faults();
    let mut table = Table::new(
        "A4",
        format!(
            "kernel worst diameter vs fault budget on H({},{}) (t = {t})",
            t + 1,
            graph.node_count()
        ),
        ["faults", "regime", "worst diameter", "fault sets"],
    );
    let engine = kernel.routing().compile();
    for f in 0..=t {
        let report = verify_tolerance(&engine, f, FaultStrategy::Exhaustive, threads());
        let regime = if f <= t / 2 {
            "Theorem 4: <= 4"
        } else {
            "Theorem 3: <= max{2t,4}"
        };
        table.push_row([
            f.to_string(),
            regime.to_string(),
            fmt_diameter(report.worst_diameter),
            report.sets_checked.to_string(),
        ]);
    }
    table.push_note(
        "The transition past |F| = t/2 is where the constant bound of Theorem 4 stops applying.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_graphs_satisfy_theorem_3() {
        let t = e1_kernel_theorem3(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
        assert_eq!(t.rows().len(), 4);
    }

    #[test]
    fn e2_all_graphs_satisfy_theorem_4() {
        let t = e2_kernel_theorem4(Scale::Quick);
        assert!(t.all_yes("ok"), "{t}");
    }

    #[test]
    fn a4_sweep_is_monotone_in_reported_budget() {
        let t = ablation_a4_fault_sweep(Scale::Quick);
        assert_eq!(t.rows().len(), 4); // f = 0..=3 for H(4,12)
                                       // worst diameter at f=0 is the no-fault diameter, >= 1
        assert_ne!(t.rows()[0][2], "inf");
    }
}

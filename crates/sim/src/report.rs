//! Result tables: the uniform output format of every experiment.
//!
//! The paper is a theory paper without measured tables, so each theorem
//! becomes a verification experiment whose output is a [`Table`]; the
//! `experiments` binary renders them as Markdown (for EXPERIMENTS.md)
//! or CSV.

use std::fmt;

/// A rectangular result table with named columns.
///
/// # Example
///
/// ```
/// use ftr_sim::report::Table;
///
/// let mut t = Table::new("E0", "demo", ["graph", "n", "ok"]);
/// t.push_row(["C6", "6", "yes"]);
/// assert!(t.to_markdown().contains("| C6 | 6 | yes |"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    id: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given experiment id, title and
    /// column headers.
    pub fn new<S: Into<String>>(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: impl IntoIterator<Item = S>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The experiment identifier (e.g. `"E4"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Appends a free-text note rendered under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The attached notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Returns `true` if every cell of the named boolean-ish column is
    /// `"yes"` (used by tests: "did every row satisfy its bound?").
    pub fn all_yes(&self, column: &str) -> bool {
        let Some(idx) = self.headers.iter().position(|h| h == column) else {
            return false;
        };
        // "-" marks a cell with nothing to verify (e.g. a scheme ruled
        // inapplicable on one suite graph): neutral, not a violation.
        // At least one genuine "yes" is still required — an all-dash
        // table verified nothing.
        self.rows.iter().any(|r| r[idx] == "yes")
            && self.rows.iter().all(|r| r[idx] == "yes" || r[idx] == "-")
    }

    /// Renders GitHub-flavored Markdown (header, separator, rows, then
    /// notes as bullet points).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// Renders RFC-4180 CSV; cells containing commas, quotes or
    /// newlines are quoted.
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Aligned plain-text rendering for terminals.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{} — {}", self.id, self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats an `Option<u32>` diameter, with `None` rendered as `inf`
/// (disconnected surviving graph).
pub fn fmt_diameter(d: Option<u32>) -> String {
    match d {
        Some(d) => d.to_string(),
        None => "inf".to_string(),
    }
}

/// Formats a yes/no cell.
pub fn fmt_bool(ok: bool) -> String {
    if ok {
        "yes".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("E1", "kernel", ["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_note("a note");
        let md = t.to_markdown();
        assert!(md.starts_with("### E1 — kernel"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("*a note*"));
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("E1", "kernel", ["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("E1", "kernel", ["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn all_yes_checks_column() {
        let mut t = Table::new("E1", "x", ["g", "ok"]);
        t.push_row(["a", "yes"]);
        t.push_row(["b", "yes"]);
        assert!(t.all_yes("ok"));
        t.push_row(["d", "-"]);
        assert!(t.all_yes("ok"), "inapplicable rows are neutral");
        t.push_row(["c", "no"]);
        assert!(!t.all_yes("ok"));
        assert!(!t.all_yes("missing"));
        let empty = Table::new("E2", "y", ["ok"]);
        assert!(!empty.all_yes("ok"), "vacuous truth is not success");
        let mut dashes = Table::new("E3", "z", ["ok"]);
        dashes.push_row(["-"]);
        assert!(!dashes.all_yes("ok"), "an all-dash table verified nothing");
    }

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("E1", "x", ["graph", "d"]);
        t.push_row(["C6", "2"]);
        let text = t.to_string();
        assert!(text.contains("graph"));
        assert!(text.contains("C6"));
    }

    #[test]
    fn diameter_formatting() {
        assert_eq!(fmt_diameter(Some(4)), "4");
        assert_eq!(fmt_diameter(None), "inf");
        assert_eq!(fmt_bool(true), "yes");
        assert_eq!(fmt_bool(false), "no");
    }
}

//! Long-run fault churn: nodes fail and repair over time while the
//! route table stays fixed.
//!
//! The paper's whole point is that a *precomputed* routing keeps
//! working through faults: as long as no more than `t` nodes are down
//! simultaneously, any surviving pair communicates within the claimed
//! number of route hops, with no route recomputation on the data path.
//! [`simulate_churn`] runs a discrete-time failure/repair process and
//! checks the claim at every step, giving a randomized long-run
//! validation that complements the exhaustive verifier.

use ftr_core::{RouteTable, Routing, ToleranceClaim};
use ftr_graph::{Node, NodeSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the churn process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Per-step probability that each live node fails.
    pub fail_rate: f64,
    /// Steps a failed node stays down before repair.
    pub repair_time: u32,
    /// Total steps to simulate.
    pub steps: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            fail_rate: 0.02,
            repair_time: 5,
            steps: 200,
            seed: 0xC4,
        }
    }
}

/// Aggregate outcome of a churn run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnReport {
    /// Steps simulated.
    pub steps: u32,
    /// Steps on which the live fault count was within the claim budget.
    pub steps_within_budget: u32,
    /// Steps within budget whose surviving diameter exceeded the
    /// claimed bound — the theorems promise this is zero.
    pub violations_within_budget: u32,
    /// Worst surviving diameter observed on within-budget steps.
    pub worst_diameter_within_budget: u32,
    /// Steps beyond budget on which the surviving graph disconnected.
    pub disconnections_beyond_budget: u32,
    /// Maximum simultaneous faults observed.
    pub peak_faults: usize,
}

impl ChurnReport {
    /// Did the routing honor its claim on every within-budget step?
    pub fn claim_held(&self) -> bool {
        self.violations_within_budget == 0
    }
}

/// One step's worth of churn events, in application order: repairs
/// complete before fresh failures strike.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnStep {
    /// Nodes whose downtime expired this step.
    pub repaired: Vec<Node>,
    /// Nodes that failed this step.
    pub failed: Vec<Node>,
}

impl ChurnStep {
    /// Returns `true` if the step changed nothing.
    pub fn is_quiet(&self) -> bool {
        self.repaired.is_empty() && self.failed.is_empty()
    }
}

/// The churn process as a reusable *event stream*: each [`step`] yields
/// the repairs and failures of one discrete time step.
///
/// [`simulate_churn`] consumes one of these against a claim; the
/// `ftr-serve` load generator replays the same stream as live
/// `FAIL`/`REPAIR` traffic against a running routing daemon, so the
/// offline validation and the online serving path churn identically.
///
/// # Example
///
/// ```
/// use ftr_sim::churn::{ChurnConfig, ChurnStream};
///
/// let mut stream = ChurnStream::new(10, ChurnConfig::default());
/// let step = stream.step();
/// assert_eq!(step.failed.len(), stream.current_faults().len());
/// ```
#[derive(Debug, Clone)]
pub struct ChurnStream {
    /// Remaining downtime per node; 0 = live.
    downtime: Vec<u32>,
    rng: SmallRng,
    config: ChurnConfig,
}

impl ChurnStream {
    /// A stream over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `config.fail_rate` is outside `[0, 1]`.
    pub fn new(n: usize, config: ChurnConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.fail_rate),
            "fail rate must be a probability"
        );
        ChurnStream {
            downtime: vec![0; n],
            rng: SmallRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Advances one step: downtimes tick down (expiries are *repaired*),
    /// then every live node *fails* independently with the configured
    /// rate.
    pub fn step(&mut self) -> ChurnStep {
        let mut step = ChurnStep::default();
        for (v, d) in self.downtime.iter_mut().enumerate() {
            if *d == 1 {
                step.repaired.push(v as Node);
            }
            *d = d.saturating_sub(1);
        }
        for (v, d) in self.downtime.iter_mut().enumerate() {
            if *d == 0 && self.rng.gen_bool(self.config.fail_rate) {
                *d = self.config.repair_time.max(1);
                step.failed.push(v as Node);
            }
        }
        step
    }

    /// The currently-down nodes.
    pub fn current_faults(&self) -> NodeSet {
        NodeSet::from_nodes(
            self.downtime.len(),
            self.downtime
                .iter()
                .enumerate()
                .filter(|(_, &d)| d > 0)
                .map(|(v, _)| v as u32),
        )
    }
}

/// Runs the churn process against `routing` and `claim`.
///
/// Each step: every live node fails independently with
/// `config.fail_rate`; failed nodes come back after
/// `config.repair_time` steps. On each step the surviving route graph
/// is evaluated and compared against the claim when the fault count is
/// within budget.
///
/// # Panics
///
/// Panics if `fail_rate` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use ftr_core::KernelRouting;
/// use ftr_graph::gen;
/// use ftr_sim::churn::{simulate_churn, ChurnConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::torus(3, 4)?;
/// let kernel = KernelRouting::build(&g)?;
/// let report = simulate_churn(kernel.routing(), &kernel.guarantee_theorem_3().claim(), ChurnConfig::default());
/// assert!(report.claim_held(), "{report:?}");
/// # Ok(())
/// # }
/// ```
pub fn simulate_churn(
    routing: &Routing,
    claim: &ToleranceClaim,
    config: ChurnConfig,
) -> ChurnReport {
    let n = routing.node_count();
    let mut stream = ChurnStream::new(n, config);
    let mut report = ChurnReport {
        steps: config.steps,
        steps_within_budget: 0,
        violations_within_budget: 0,
        worst_diameter_within_budget: 0,
        disconnections_beyond_budget: 0,
        peak_faults: 0,
    };
    for _ in 0..config.steps {
        stream.step();
        let faults = stream.current_faults();
        report.peak_faults = report.peak_faults.max(faults.len());
        let diameter = routing.surviving(&faults).diameter();
        if faults.len() <= claim.faults {
            report.steps_within_budget += 1;
            match diameter {
                Some(d) => {
                    report.worst_diameter_within_budget =
                        report.worst_diameter_within_budget.max(d);
                    if d > claim.diameter {
                        report.violations_within_budget += 1;
                    }
                }
                None => report.violations_within_budget += 1,
            }
        } else if diameter.is_none() {
            report.disconnections_beyond_budget += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{CircularRouting, KernelRouting};
    use ftr_graph::gen;

    #[test]
    fn kernel_claim_holds_through_churn() {
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let report = simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            ChurnConfig::default(),
        );
        assert!(report.claim_held(), "{report:?}");
        assert_eq!(report.steps, 200);
        assert!(report.steps_within_budget > 0);
    }

    #[test]
    fn circular_claim_holds_through_heavy_churn() {
        let g = gen::harary(3, 18).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        let config = ChurnConfig {
            fail_rate: 0.05,
            repair_time: 4,
            steps: 300,
            seed: 9,
        };
        let report = simulate_churn(circ.routing(), &circ.guarantee().claim(), config);
        assert!(report.claim_held(), "{report:?}");
        assert!(
            report.peak_faults >= 2,
            "heavy churn should exceed the budget sometimes"
        );
    }

    #[test]
    fn zero_fail_rate_is_a_quiet_network() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let config = ChurnConfig {
            fail_rate: 0.0,
            ..ChurnConfig::default()
        };
        let report = simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            config,
        );
        assert_eq!(report.peak_faults, 0);
        assert_eq!(report.steps_within_budget, report.steps);
        assert!(report.claim_held());
    }

    #[test]
    fn churn_is_reproducible() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let a = simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            ChurnConfig::default(),
        );
        let b = simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            ChurnConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn stream_events_track_fault_set() {
        let mut stream = ChurnStream::new(
            16,
            ChurnConfig {
                fail_rate: 0.2,
                repair_time: 3,
                steps: 50,
                seed: 11,
            },
        );
        let mut model = std::collections::BTreeSet::new();
        let mut saw_repair = false;
        for _ in 0..50 {
            let step = stream.step();
            for &v in &step.repaired {
                assert!(model.remove(&v), "repaired node {v} was not down");
                saw_repair = true;
            }
            for &v in &step.failed {
                assert!(model.insert(v), "failed node {v} was already down");
            }
            assert_eq!(
                stream.current_faults().iter().collect::<Vec<_>>(),
                model.iter().copied().collect::<Vec<_>>()
            );
        }
        assert!(saw_repair, "a 50-step run at 20% churn repairs someone");
    }

    #[test]
    fn stream_matches_simulate_churn_trajectory() {
        // The report path consumes the same stream type, so peak faults
        // agree with a hand-rolled replay.
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let config = ChurnConfig::default();
        let report = simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            config,
        );
        let mut stream = ChurnStream::new(10, config);
        let mut peak = 0;
        for _ in 0..config.steps {
            stream.step();
            peak = peak.max(stream.current_faults().len());
        }
        assert_eq!(report.peak_faults, peak);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_fail_rate_panics() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        simulate_churn(
            kernel.routing(),
            &kernel.guarantee_theorem_3().claim(),
            ChurnConfig {
                fail_rate: 1.5,
                ..ChurnConfig::default()
            },
        );
    }
}

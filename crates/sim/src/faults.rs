//! Fault injection models for protocol simulations.
//!
//! The tolerance verifier in `ftr-core` enumerates fault sets for
//! worst-case measurement; this module provides the *scenario-level*
//! fault models the protocol simulations and examples use: uniform
//! random node failures, failures targeted at a known node set (e.g. a
//! routing's concentrator), and explicit failure lists. Edge faults are
//! modelled per the paper by failing one endpoint ("an assumption that
//! can only weaken our results").

use ftr_graph::{Node, NodeSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A reproducible fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// No faults.
    None,
    /// `count` distinct nodes drawn uniformly with the given seed.
    Uniform {
        /// Number of faulty nodes.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
    /// `count` nodes drawn from `pool` (e.g. concentrator members) with
    /// the given seed; if the pool is smaller than `count`, the whole
    /// pool fails.
    TargetedPool {
        /// Candidate victims.
        pool: Vec<Node>,
        /// Number of faulty nodes.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
    /// An explicit list of faulty nodes.
    Explicit(Vec<Node>),
}

impl FaultPlan {
    /// Materializes the plan as a fault set for a graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if an explicit or pooled node is `>= n`, or if a uniform
    /// plan requests more faults than there are nodes.
    ///
    /// # Example
    ///
    /// ```
    /// use ftr_sim::faults::FaultPlan;
    ///
    /// let f = FaultPlan::Uniform { count: 3, seed: 1 }.materialize(10);
    /// assert_eq!(f.len(), 3);
    /// let same = FaultPlan::Uniform { count: 3, seed: 1 }.materialize(10);
    /// assert_eq!(f, same, "plans are reproducible");
    /// ```
    pub fn materialize(&self, n: usize) -> NodeSet {
        match self {
            FaultPlan::None => NodeSet::new(n),
            FaultPlan::Uniform { count, seed } => {
                assert!(*count <= n, "cannot fail more nodes than exist");
                let mut rng = SmallRng::seed_from_u64(*seed);
                let mut set = NodeSet::new(n);
                while set.len() < *count {
                    set.insert(rng.gen_range(0..n) as Node);
                }
                set
            }
            FaultPlan::TargetedPool { pool, count, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                let mut set = NodeSet::new(n);
                if pool.len() <= *count {
                    set.extend(pool.iter().copied());
                } else {
                    while set.len() < *count {
                        set.insert(pool[rng.gen_range(0..pool.len())]);
                    }
                }
                set
            }
            FaultPlan::Explicit(nodes) => NodeSet::from_nodes(n, nodes.iter().copied()),
        }
    }
}

/// Converts an edge fault `{u, v}` into a node fault per the paper's
/// convention: the endpoint is chosen deterministically (the smaller
/// id), which only weakens (i.e. over-approximates) the damage.
pub fn edge_fault_to_node(u: Node, v: Node) -> Node {
    u.min(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::None.materialize(5).is_empty());
    }

    #[test]
    fn uniform_draws_exact_count() {
        let f = FaultPlan::Uniform { count: 4, seed: 9 }.materialize(20);
        assert_eq!(f.len(), 4);
    }

    #[test]
    #[should_panic(expected = "more nodes than exist")]
    fn uniform_overflow_panics() {
        FaultPlan::Uniform { count: 6, seed: 0 }.materialize(5);
    }

    #[test]
    fn targeted_stays_in_pool() {
        let plan = FaultPlan::TargetedPool {
            pool: vec![2, 4, 6],
            count: 2,
            seed: 3,
        };
        let f = plan.materialize(10);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|v| [2, 4, 6].contains(&v)));
    }

    #[test]
    fn targeted_small_pool_fails_entirely() {
        let plan = FaultPlan::TargetedPool {
            pool: vec![1, 2],
            count: 5,
            seed: 0,
        };
        let f = plan.materialize(10);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn explicit_materializes_list() {
        let f = FaultPlan::Explicit(vec![7, 1]).materialize(8);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    fn edge_fault_convention() {
        assert_eq!(edge_fault_to_node(5, 3), 3);
        assert_eq!(edge_fault_to_node(3, 5), 3);
    }
}

//! The route-counter broadcast protocol from the paper's introduction.
//!
//! After faults occur, a new route table can be computed by having a
//! node broadcast to all others: the message carries a *route counter*,
//! incremented each time it is forwarded along a new route, and is
//! discarded once the counter exceeds a bound. The number of broadcast
//! rounds needed is bounded by the diameter of the surviving route
//! graph — which is exactly why the paper minimizes that diameter.
//!
//! [`simulate_broadcast`] executes the protocol round by round over a
//! [`Routing`] and fault set, counting rounds and message transmissions,
//! so experiment E15 can confirm `rounds == eccentricity <= diameter`.

use ftr_core::Routing;
use ftr_graph::{Node, NodeSet};

/// Outcome of one broadcast simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// The last round in which a new node was informed (for a complete
    /// broadcast this equals the origin's eccentricity in the surviving
    /// graph). Note nodes keep forwarding for one further, unproductive
    /// round — its messages are counted in [`messages`], not here.
    ///
    /// [`messages`]: BroadcastOutcome::messages
    pub rounds: u32,
    /// Non-faulty nodes that received the message (including the
    /// origin).
    pub informed: usize,
    /// Non-faulty nodes in total.
    pub survivors: usize,
    /// Messages sent (one per outgoing route of each newly informed
    /// node, whether or not the route survived — faulty routes still
    /// consume a transmission up to the fault).
    pub messages: u64,
}

impl BroadcastOutcome {
    /// Did every surviving node learn the message?
    pub fn complete(&self) -> bool {
        self.informed == self.survivors
    }
}

/// Simulates the broadcast from `origin` under `faults`.
///
/// Each round, every node informed in the previous round forwards the
/// message along **all** of its outgoing routes; deliveries over
/// affected routes are lost. Messages whose route counter would exceed
/// `counter_bound` are discarded, so at most `counter_bound` rounds run
/// (pass the surviving diameter — or an upper bound like the
/// construction's claim — to match the paper's protocol).
///
/// # Panics
///
/// Panics if `origin` is out of range or `faults` has the wrong
/// capacity.
///
/// # Example
///
/// ```
/// use ftr_core::KernelRouting;
/// use ftr_graph::{gen, NodeSet};
/// use ftr_sim::broadcast::simulate_broadcast;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let kernel = KernelRouting::build(&g)?;
/// let faults = NodeSet::from_nodes(10, [3, 8]);
/// let out = simulate_broadcast(kernel.routing(), &faults, 0, 4);
/// assert!(out.complete(), "bound 4 suffices: kernel is (4, 1)-tolerant... and (2t,t)");
/// # Ok(())
/// # }
/// ```
pub fn simulate_broadcast(
    routing: &Routing,
    faults: &NodeSet,
    origin: Node,
    counter_bound: u32,
) -> BroadcastOutcome {
    let n = routing.node_count();
    assert!((origin as usize) < n, "origin {origin} out of range");
    assert_eq!(faults.capacity(), n, "fault set capacity mismatch");
    let survivors = n - faults.len();
    if faults.contains(origin) {
        return BroadcastOutcome {
            rounds: 0,
            informed: 0,
            survivors,
            messages: 0,
        };
    }

    // Outgoing routes per node, with survival precomputed.
    let mut out_routes: Vec<Vec<(Node, bool)>> = vec![Vec::new(); n];
    for (s, d, view) in routing.routes() {
        out_routes[s as usize].push((d, !view.is_affected_by(faults)));
    }

    let mut informed = NodeSet::new(n);
    informed.insert(origin);
    let mut frontier = vec![origin];
    let mut round_idx = 0;
    let mut last_productive = 0;
    let mut messages = 0u64;
    while !frontier.is_empty() && round_idx < counter_bound {
        round_idx += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &(v, survives) in &out_routes[u as usize] {
                messages += 1;
                if survives && !faults.contains(v) && informed.insert(v) {
                    next.push(v);
                }
            }
        }
        if !next.is_empty() {
            last_productive = round_idx;
        }
        frontier = next;
    }
    BroadcastOutcome {
        rounds: last_productive,
        informed: informed.len(),
        survivors,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{KernelRouting, RouteTable, RoutingKind};
    use ftr_graph::{gen, Path};

    #[test]
    fn broadcast_without_faults_reaches_everyone() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let out = simulate_broadcast(kernel.routing(), &NodeSet::new(10), 0, 10);
        assert!(out.complete());
        assert_eq!(out.survivors, 10);
        assert!(out.messages > 0);
    }

    #[test]
    fn rounds_match_surviving_eccentricity() {
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let faults = NodeSet::from_nodes(12, [5]);
        let s = kernel.routing().surviving(&faults);
        for origin in 0..12u32 {
            if faults.contains(origin) {
                continue;
            }
            let out = simulate_broadcast(kernel.routing(), &faults, origin, 32);
            assert!(out.complete(), "origin {origin}");
            let dist = s.digraph().bfs_distances(origin, Some(&faults));
            let ecc = (0..12u32)
                .filter(|&v| v != origin && !faults.contains(v))
                .map(|v| dist[v as usize])
                .max()
                .unwrap();
            assert_eq!(out.rounds, ecc, "origin {origin}");
        }
    }

    #[test]
    fn rounds_bounded_by_claim_diameter() {
        // Theorem 4: one fault on a 4-connected torus leaves diameter
        // <= 4, so a route counter bound of 4 always completes.
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        for f in 0..12u32 {
            let faults = NodeSet::from_nodes(12, [f]);
            for origin in 0..12u32 {
                if origin == f {
                    continue;
                }
                let out = simulate_broadcast(kernel.routing(), &faults, origin, 4);
                assert!(out.complete(), "origin {origin}, fault {f}");
            }
        }
    }

    #[test]
    fn counter_bound_cuts_off_propagation() {
        // A line routing needs n-1 rounds; bound 1 reaches neighbors only.
        let mut r = Routing::new(5, RoutingKind::Bidirectional);
        for u in 0..4u32 {
            r.insert(Path::edge(u, u + 1).unwrap()).unwrap();
        }
        let out = simulate_broadcast(&r, &NodeSet::new(5), 0, 1);
        assert_eq!(out.informed, 2);
        assert!(!out.complete());
        let out = simulate_broadcast(&r, &NodeSet::new(5), 0, 4);
        assert!(out.complete());
    }

    #[test]
    fn faulty_origin_informs_nobody() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let faults = NodeSet::from_nodes(10, [0]);
        let out = simulate_broadcast(kernel.routing(), &faults, 0, 5);
        assert_eq!(out.informed, 0);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn messages_are_counted_per_route() {
        // Star routing from center 0: one round, 3 messages.
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        for v in 1..4u32 {
            r.insert(Path::edge(0, v).unwrap()).unwrap();
        }
        let out = simulate_broadcast(&r, &NodeSet::new(4), 0, 3);
        assert_eq!(out.rounds, 1, "everyone informed in the first round");
        assert_eq!(out.messages, 3 + 3, "3 from center, 1 back from each leaf");
        assert!(out.complete());
    }
}

//! End-to-end message transmission under the paper's cost model.
//!
//! "Assuming the time required to send a message along a route is
//! dominated by the processing at the endpoints of the route, the total
//! transmission time is roughly proportional to the number of routes
//! traversed" — e.g. networks that encrypt/decrypt or run error
//! correction at route endpoints. [`simulate_transmission`] finds the
//! minimum-route chain between two nodes in the surviving graph and
//! prices it with a [`CostModel`].

use ftr_core::{RouteTable, Routing};
use ftr_graph::{Node, NodeSet, INFINITY};

/// Cost parameters: heavy per-route endpoint processing (encryption,
/// error-correction analysis) plus a light per-link forwarding cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost charged once per route traversed (endpoint processing).
    pub per_route: f64,
    /// Cost charged per physical link crossed.
    pub per_link: f64,
}

impl CostModel {
    /// The paper's asymptotic regime: endpoint processing dominates.
    pub fn endpoint_dominated() -> Self {
        CostModel {
            per_route: 100.0,
            per_link: 1.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::endpoint_dominated()
    }
}

/// A priced end-to-end transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmission {
    /// Routes chained (the surviving-graph distance).
    pub routes_traversed: u32,
    /// Physical links crossed over all chained routes.
    pub links_crossed: u32,
    /// Total cost under the model.
    pub cost: f64,
    /// The chain of route endpoints, `src .. dst`.
    pub relay_points: Vec<Node>,
}

/// Routes a message from `src` to `dst` under `faults`, chaining as few
/// surviving routes as possible; returns `None` if the surviving graph
/// disconnects the pair (or an endpoint is faulty).
///
/// # Panics
///
/// Panics if `src`/`dst` are out of range or `faults` has the wrong
/// capacity.
///
/// # Example
///
/// ```
/// use ftr_core::KernelRouting;
/// use ftr_graph::{gen, NodeSet};
/// use ftr_sim::message::{simulate_transmission, CostModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let kernel = KernelRouting::build(&g)?;
/// let faults = NodeSet::from_nodes(10, [2]);
/// let tx = simulate_transmission(kernel.routing(), &faults, 0, 7, CostModel::default())
///     .expect("Petersen tolerates 2 faults");
/// assert!(tx.routes_traversed <= 4, "kernel is (4, 1)-tolerant");
/// # Ok(())
/// # }
/// ```
pub fn simulate_transmission(
    routing: &Routing,
    faults: &NodeSet,
    src: Node,
    dst: Node,
    model: CostModel,
) -> Option<Transmission> {
    let n = routing.node_count();
    assert!(
        (src as usize) < n && (dst as usize) < n,
        "endpoints out of range"
    );
    assert_eq!(faults.capacity(), n, "fault set capacity mismatch");
    if faults.contains(src) || faults.contains(dst) {
        return None;
    }
    if src == dst {
        return Some(Transmission {
            routes_traversed: 0,
            links_crossed: 0,
            cost: 0.0,
            relay_points: vec![src],
        });
    }
    let surviving = routing.surviving(faults);
    // BFS with parent tracking over the surviving digraph.
    let digraph = surviving.digraph();
    let dist = digraph.bfs_distances(src, Some(faults));
    if dist[dst as usize] == INFINITY {
        return None;
    }
    // Reconstruct one minimum-route chain by walking backwards.
    let mut chain = vec![dst];
    let mut cur = dst;
    while cur != src {
        let d = dist[cur as usize];
        let prev = digraph
            .nodes()
            .find(|&u| dist[u as usize].checked_add(1) == Some(d) && digraph.has_arc(u, cur))
            .expect("BFS distance admits a predecessor");
        chain.push(prev);
        cur = prev;
    }
    chain.reverse();
    let routes_traversed = (chain.len() - 1) as u32;
    let links_crossed: u32 = chain
        .windows(2)
        .map(|w| {
            routing
                .route(w[0], w[1])
                .expect("surviving arc has a route")
                .len() as u32
        })
        .sum();
    Some(Transmission {
        routes_traversed,
        links_crossed,
        cost: model.per_route * routes_traversed as f64 + model.per_link * links_crossed as f64,
        relay_points: chain,
    })
}

/// Worst-case transmission over all ordered surviving pairs: the priced
/// version of the surviving diameter. Returns `None` on disconnection.
pub fn worst_transmission(
    routing: &Routing,
    faults: &NodeSet,
    model: CostModel,
) -> Option<Transmission> {
    let n = routing.node_count();
    let mut worst: Option<Transmission> = None;
    for src in 0..n as Node {
        if faults.contains(src) {
            continue;
        }
        for dst in 0..n as Node {
            if src == dst || faults.contains(dst) {
                continue;
            }
            let tx = simulate_transmission(routing, faults, src, dst, model)?;
            if worst
                .as_ref()
                .is_none_or(|w| tx.routes_traversed > w.routes_traversed)
            {
                worst = Some(tx);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::KernelRouting;
    use ftr_graph::gen;

    #[test]
    fn transmission_matches_surviving_distance() {
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let faults = NodeSet::from_nodes(12, [6]);
        let s = kernel.routing().surviving(&faults);
        for src in 0..12u32 {
            for dst in 0..12u32 {
                if src == dst || faults.contains(src) || faults.contains(dst) {
                    continue;
                }
                let tx = simulate_transmission(
                    kernel.routing(),
                    &faults,
                    src,
                    dst,
                    CostModel::default(),
                )
                .unwrap();
                assert_eq!(tx.routes_traversed, s.distance(src, dst), "{src}->{dst}");
                assert_eq!(tx.relay_points.first(), Some(&src));
                assert_eq!(tx.relay_points.last(), Some(&dst));
            }
        }
    }

    #[test]
    fn cost_is_priced_by_model() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let model = CostModel {
            per_route: 10.0,
            per_link: 1.0,
        };
        let tx = simulate_transmission(kernel.routing(), &NodeSet::new(10), 0, 7, model).unwrap();
        let expected = 10.0 * tx.routes_traversed as f64 + tx.links_crossed as f64;
        assert!((tx.cost - expected).abs() < 1e-9);
        assert!(
            tx.links_crossed >= tx.routes_traversed,
            "routes have length >= 1"
        );
    }

    #[test]
    fn faulty_endpoint_is_unreachable() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let faults = NodeSet::from_nodes(10, [7]);
        assert!(
            simulate_transmission(kernel.routing(), &faults, 0, 7, CostModel::default()).is_none()
        );
    }

    #[test]
    fn self_transmission_is_free() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let tx = simulate_transmission(
            kernel.routing(),
            &NodeSet::new(10),
            3,
            3,
            CostModel::default(),
        )
        .unwrap();
        assert_eq!(tx.routes_traversed, 0);
        assert_eq!(tx.cost, 0.0);
    }

    #[test]
    fn worst_transmission_matches_diameter() {
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let faults = NodeSet::from_nodes(12, [0]);
        let s = kernel.routing().surviving(&faults);
        let w = worst_transmission(kernel.routing(), &faults, CostModel::default()).unwrap();
        assert_eq!(w.routes_traversed, s.diameter().unwrap());
    }
}

//! Simulation and experiment harness for the Peleg & Simons fault
//! tolerant routing reproduction.
//!
//! `ftr-core` implements the paper's constructions and verifies their
//! `(d, f)`-tolerance claims; this crate adds everything around them:
//!
//! * [`faults`] — reproducible fault scenarios (uniform, targeted,
//!   explicit) for protocol simulations;
//! * [`broadcast`] — the introduction's route-counter broadcast
//!   protocol, whose round count the surviving diameter bounds;
//! * [`message`] — end-to-end transmission under the paper's
//!   endpoint-dominated cost model (encrypting networks, error
//!   correction at route endpoints);
//! * [`experiments`] — one verification experiment per theorem
//!   (E1–E15) plus ablations (A1–A4), each emitting a result
//!   [`report::Table`];
//! * [`viz`] — DOT/ASCII renderings of the paper's Figures 1–3 from
//!   built routings.
//!
//! # Example
//!
//! ```
//! use ftr_sim::experiments::{e1_kernel_theorem3, Scale};
//!
//! let table = e1_kernel_theorem3(Scale::Quick);
//! assert!(table.all_yes("ok"), "Theorem 3 verified on the quick suite");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod churn;
pub mod experiments;
pub mod faults;
pub mod message;
pub mod report;
pub mod viz;

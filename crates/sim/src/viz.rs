//! Figure rendering: regenerates the paper's three schematic figures
//! from *built* routings (experiment E13).
//!
//! * Figure 1 — the circular routing: the circle `m_0 .. m_{K-1}` with
//!   arrows for the CIRC 1/CIRC 2 tree-routing components.
//! * Figure 2 — the tri-circular routing: three circles with in-circle
//!   forward arrows and cyclic cross arrows (T-CIRC 1–3).
//! * Figure 3 — the unidirectional bipolar routing: the two root trees
//!   with the B-POL 1–4 arrows.
//!
//! Output is Graphviz DOT (for rendering) plus a terminal-friendly
//! ASCII summary. Arrows denote *tree routings from a node (class) to a
//! set*, exactly as in the paper's captions.

use ftr_core::{BipolarRouting, CircularRouting, TriCircularRouting};

/// DOT rendering of Figure 1 from a built circular routing.
pub fn circular_figure_dot(circ: &CircularRouting) -> String {
    let k = circ.concentrator().len();
    let members = circ.concentrator().members();
    let mut out = String::from("digraph circular {\n  label=\"Figure 1: the circular routing (arrows: tree routings from a node to a set)\";\n  rankdir=LR;\n");
    out.push_str("  x [shape=circle, label=\"x ∉ Γ\"];\n");
    for (i, &m) in members.iter().enumerate() {
        out.push_str(&format!(
            "  g{i} [shape=ellipse, label=\"Γ_{i} = Γ(m_{i}={m})\"];\n  m{i} [shape=point, xlabel=\"m_{i}\"];\n  g{i} -> m{i} [style=dotted, arrowhead=none, label=\"edges\"];\n"
        ));
    }
    // CIRC 1: x -> every set.
    for i in 0..k {
        out.push_str(&format!("  x -> g{i} [color=blue];\n"));
    }
    // CIRC 2: forward half per circle position.
    let half = k.div_ceil(2);
    for i in 0..k {
        for j in 1..half {
            out.push_str(&format!(
                "  g{i} -> g{} [color=red, style=dashed];\n",
                (i + j) % k
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// ASCII rendering of Figure 1.
pub fn circular_figure_ascii(circ: &CircularRouting) -> String {
    let k = circ.concentrator().len();
    let half = k.div_ceil(2);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 1: circular routing over K = {k} neighborhood-set members\n"
    ));
    out.push_str(&format!("  circle: {:?}\n", circ.concentrator().members()));
    out.push_str("  CIRC 1: every x outside Γ  ->  every Γ_i\n");
    out.push_str(&format!(
        "  CIRC 2: x in Γ_i  ->  Γ_(i+1) .. Γ_(i+{}) (mod {k})\n",
        half.saturating_sub(1)
    ));
    out.push_str("  CIRC 3: direct edge routes\n");
    out
}

/// DOT rendering of Figure 2 from a built tri-circular routing.
pub fn tricircular_figure_dot(tri: &TriCircularRouting) -> String {
    let s = tri.circle_size();
    let mut out = String::from(
        "digraph tricircular {\n  label=\"Figure 2: the tri-circular routing\";\n  rankdir=LR;\n",
    );
    out.push_str("  x [shape=circle, label=\"x ∉ Γ\"];\n");
    for j in 0..3 {
        out.push_str(&format!(
            "  subgraph cluster_{j} {{ label=\"circle M^{j}\";\n"
        ));
        for i in 0..s {
            out.push_str(&format!(
                "    c{j}_{i} [shape=ellipse, label=\"Γ^{j}_{i}\"];\n"
            ));
        }
        out.push_str("  }\n");
    }
    for j in 0..3 {
        // T-CIRC 1 arrows (shown once per circle to keep the figure legible).
        out.push_str(&format!("  x -> c{j}_0 [color=blue];\n"));
        // T-CIRC 2: forward inside the circle.
        for i in 0..s {
            out.push_str(&format!(
                "  c{j}_{i} -> c{j}_{} [color=red, style=dashed];\n",
                (i + 1) % s
            ));
        }
        // T-CIRC 3: to every set of the next circle (drawn to set 0).
        out.push_str(&format!(
            "  c{j}_0 -> c{}_0 [color=green, penwidth=2];\n",
            (j + 1) % 3
        ));
    }
    out.push_str("}\n");
    out
}

/// ASCII rendering of Figure 2.
pub fn tricircular_figure_ascii(tri: &TriCircularRouting) -> String {
    let s = tri.circle_size();
    format!(
        "Figure 2: tri-circular routing, 3 circles of s = {s} members (K = {})\n\
         \x20 T-CIRC 1: every x outside Γ -> every Γ^j_i\n\
         \x20 T-CIRC 2: x in Γ^j_i -> next sets of circle j\n\
         \x20 T-CIRC 3: x in Γ^j_i -> every set of circle j+1 (mod 3)\n\
         \x20 T-CIRC 4: direct edge routes\n\
         \x20   M^0 --> M^1 --> M^2 --> M^0   (cyclic cross-links)\n",
        3 * s
    )
}

/// DOT rendering of Figure 3 from a built bipolar routing.
pub fn bipolar_figure_dot(b: &BipolarRouting) -> String {
    let (r1, r2) = b.roots();
    let mut out = String::from("digraph bipolar {\n  label=\"Figure 3: the unidirectional bipolar routing\";\n  rankdir=TB;\n");
    for (tag, root, members) in [("1", r1, b.m1()), ("2", r2, b.m2())] {
        out.push_str(&format!(
            "  subgraph cluster_{tag} {{ label=\"tree of r{tag} = {root}\";\n    r{tag} [shape=circle, label=\"r{tag}={root}\"];\n"
        ));
        for (i, &m) in members.iter().enumerate() {
            out.push_str(&format!(
                "    m{tag}_{i} [shape=box, label=\"m^{tag}_{i}={m}\"];\n    r{tag} -> m{tag}_{i} [arrowhead=none];\n    g{tag}_{i} [shape=ellipse, label=\"Γ^{tag}_{i}\"];\n"
            ));
        }
        out.push_str("  }\n");
        // B-POL 3/4: every member to every set of its own tree.
        for i in 0..members.len() {
            for j in 0..members.len() {
                out.push_str(&format!(
                    "  m{tag}_{i} -> g{tag}_{j} [color=red, style=dashed];\n"
                ));
            }
        }
    }
    out.push_str("  x [shape=circle, label=\"x\"];\n");
    out.push_str("  x -> m1_0 [color=blue, label=\"B-POL 1: tree to M1\"];\n");
    out.push_str("  x -> m2_0 [color=blue, label=\"B-POL 2: tree to M2\"];\n");
    out.push_str("}\n");
    out
}

/// ASCII rendering of Figure 3.
pub fn bipolar_figure_ascii(b: &BipolarRouting) -> String {
    let (r1, r2) = b.roots();
    format!(
        "Figure 3: unidirectional bipolar routing\n\
         \x20 roots: r1 = {r1} (|M1| = {}), r2 = {r2} (|M2| = {})\n\
         \x20 B-POL 1: every x ∉ M1 -> tree routing to M1\n\
         \x20 B-POL 2: every x ∉ M2 -> tree routing to M2\n\
         \x20 B-POL 3: every m ∈ M1 -> every Γ^1_j\n\
         \x20 B-POL 4: every m ∈ M2 -> every Γ^2_j\n\
         \x20 B-POL 5: reverses along the same paths; B-POL 6: edges\n",
        b.m1().len(),
        b.m2().len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_core::{RoutingKind, TriCircularVariant};
    use ftr_graph::gen;

    #[test]
    fn circular_figure_mentions_all_sets() {
        let g = gen::harary(3, 18).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        let dot = circular_figure_dot(&circ);
        assert!(dot.starts_with("digraph circular"));
        for i in 0..circ.concentrator().len() {
            assert!(dot.contains(&format!("g{i} ")), "set {i} missing");
        }
        let ascii = circular_figure_ascii(&circ);
        assert!(ascii.contains("CIRC 2"));
    }

    #[test]
    fn tricircular_figure_has_three_clusters() {
        let g = gen::cycle(45).unwrap();
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
        let dot = tricircular_figure_dot(&tri);
        assert_eq!(dot.matches("subgraph cluster_").count(), 3);
        assert!(tricircular_figure_ascii(&tri).contains("M^0 --> M^1"));
    }

    #[test]
    fn bipolar_figure_names_roots() {
        let g = gen::cycle(12).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        let (r1, r2) = b.roots();
        let dot = bipolar_figure_dot(&b);
        assert!(dot.contains(&format!("r1={r1}")));
        assert!(dot.contains(&format!("r2={r2}")));
        assert!(bipolar_figure_ascii(&b).contains("B-POL 3"));
    }
}

//! Fixture self-tests: every rule must fire at the exact file:line the
//! known-bad fixture plants, and nowhere else. The fixture sources live
//! under `tests/fixtures/<rule>/` — a directory name the workspace
//! walker deliberately skips, so the deliberate violations never leak
//! into the real lint run while remaining lintable as their own roots.

use std::path::PathBuf;

use ftr_lint::{run_lint, LintConfig, LintOutcome};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// A config with every scope empty: only the rules a test opts into
/// (or the scope-free rules) can fire.
fn bare_config(fixture: &str) -> LintConfig {
    LintConfig {
        root: fixture_root(fixture),
        unsafe_island: Vec::new(),
        hot_path_files: Vec::new(),
        panic_free_files: Vec::new(),
        print_allowed_files: Vec::new(),
        ledger_path: "test.ledger".into(),
    }
}

fn lint(config: &LintConfig) -> LintOutcome {
    run_lint(config).expect("fixture lint run")
}

/// `(file, line)` pairs of the violations a rule produced, in report
/// order.
fn fired(outcome: &LintOutcome, rule: &str) -> Vec<(String, u32)> {
    outcome
        .sorted_violations()
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.file.clone(), v.line))
        .collect()
}

fn sites_checked(outcome: &LintOutcome, rule: &str) -> u64 {
    outcome
        .rules
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, s)| s.sites_checked)
        .expect("rule present")
}

fn pairs(expected: &[(&str, u32)]) -> Vec<(String, u32)> {
    expected.iter().map(|(f, l)| (f.to_string(), *l)).collect()
}

#[test]
fn unsafe_island_fires_outside_the_island() {
    let outcome = lint(&bare_config("unsafe_island"));
    assert_eq!(
        fired(&outcome, "unsafe-island"),
        pairs(&[("bad.rs", 14)]),
        "only the real `unsafe` block fires — not the comment, block \
         comment, string, raw-string or byte-string decoys"
    );
    assert_eq!(outcome.total_violations(), 1);
    let v = &outcome.sorted_violations()[0];
    assert!(v.message.contains("FFI island"), "message: {}", v.message);
}

#[test]
fn hot_path_fires_in_hot_files_and_regions() {
    let mut config = bare_config("hot_path");
    config.hot_path_files = vec!["hot.rs".into()];
    let outcome = lint(&config);
    assert_eq!(
        fired(&outcome, "hot-path-lock-free"),
        pairs(&[
            ("hot.rs", 3),      // `use std::sync::Mutex`
            ("hot.rs", 12),     // `Mutex` in a type path
            ("hot.rs", 13),     // `.lock()` call
            ("regions.rs", 11), // `Mutex` inside `// lint: hot-path`
            ("regions.rs", 12), // `.lock()` inside the region
        ]),
        "whole hot files and annotated regions fire; regions.rs code \
         outside its region (RwLock, the cold_again Mutex) stays clean"
    );
    assert_eq!(outcome.total_violations(), 5);
    // Scopes checked: the configured hot file + one annotated region.
    assert_eq!(sites_checked(&outcome, "hot-path-lock-free"), 2);
}

#[test]
fn missing_hot_path_file_is_itself_a_violation() {
    let mut config = bare_config("hot_path");
    config.hot_path_files = vec!["no_such_file.rs".into()];
    let outcome = lint(&config);
    let hot = fired(&outcome, "hot-path-lock-free");
    assert!(
        hot.contains(&("no_such_file.rs".to_string(), 0)),
        "a configured scope that vanished must fail loudly, got {hot:?}"
    );
}

#[test]
fn ordering_ledger_reconciles_both_directions() {
    let outcome = lint(&bare_config("ordering"));
    assert_eq!(
        fired(&outcome, "atomic-ordering-ledger"),
        pairs(&[
            ("bad.rs", 12),     // Acquire with no ledger entry
            ("bad.rs", 23),     // SeqCst inside a hot-path region
            ("test.ledger", 4), // stale entry: gone_function
        ])
    );
    assert_eq!(outcome.total_violations(), 3);
    assert_eq!(outcome.ledger.entries, 3);
    assert_eq!(outcome.ledger.sites, 3);
    assert_eq!(outcome.ledger.ledgered, 2, "Relaxed + the hot SeqCst match");
    assert_eq!(outcome.ledger.stale, 1);
    let stale = outcome
        .sorted_violations()
        .into_iter()
        .find(|v| v.file == "test.ledger")
        .expect("stale diagnostic");
    assert!(
        stale.message.contains("stale ledger entry"),
        "{}",
        stale.message
    );
}

#[test]
fn panic_free_fires_outside_allow_annotations_and_tests() {
    let mut config = bare_config("panic_free");
    config.panic_free_files = vec!["bad.rs".into()];
    let outcome = lint(&config);
    assert_eq!(
        fired(&outcome, "panic-free-request-path"),
        pairs(&[
            ("bad.rs", 4),  // .unwrap()
            ("bad.rs", 5),  // .expect()
            ("bad.rs", 7),  // panic!
            ("bad.rs", 10), // unreachable!
        ]),
        "allow-panic-annotated sites (lines 17–18), debug_assert! and \
         #[cfg(test)] code stay clean"
    );
    assert_eq!(outcome.total_violations(), 4);
    // Candidates examined: 4 violations + 2 annotated sites, plus the
    // configured scope file itself.
    assert_eq!(sites_checked(&outcome, "panic-free-request-path"), 7);
}

#[test]
fn justified_allow_requires_a_plain_reason_comment() {
    let outcome = lint(&bare_config("justified_allow"));
    assert_eq!(
        fired(&outcome, "justified-allow"),
        pairs(&[
            ("bad.rs", 10), // bare attribute
            ("bad.rs", 14), // doc comment above is not a justification
        ]),
        "trailing and line-above plain comments justify; doc comments \
         and #[cfg(test)] code do not fire"
    );
    assert_eq!(outcome.total_violations(), 2);
    // Attributes examined: lines 3, 7, 10, 14 (the test-mod one is
    // exempt and uncounted).
    assert_eq!(sites_checked(&outcome, "justified-allow"), 4);
}

#[test]
fn bin_only_printing_spares_bins_and_annotated_sites() {
    let outcome = lint(&bare_config("bin_print"));
    assert_eq!(
        fired(&outcome, "bin-only-printing"),
        pairs(&[("lib_code.rs", 4), ("lib_code.rs", 5)]),
        "bin/main.rs prints freely; the allow-print site and the \
         string/comment decoys stay clean"
    );
    assert_eq!(outcome.total_violations(), 2);
    // Print sites examined: 3 in lib_code.rs + 1 in bin/main.rs.
    assert_eq!(sites_checked(&outcome, "bin-only-printing"), 4);
}

#[test]
fn annotation_grammar_rejects_malformed_directives() {
    let outcome = lint(&bare_config("annotations"));
    assert_eq!(
        fired(&outcome, "annotations"),
        pairs(&[
            ("bad.rs", 4),  // unknown directive (allow-painc typo)
            ("bad.rs", 7),  // allow-panic with an empty reason
            ("bad.rs", 10), // end-hot-path without an open region
            ("bad.rs", 13), // hot-path never closed
        ])
    );
    assert_eq!(outcome.total_violations(), 4);
    assert_eq!(sites_checked(&outcome, "annotations"), 4);
}

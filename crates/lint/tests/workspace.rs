//! Clean-workspace integration: the real repo, under the real config,
//! must lint clean — and the run must be meaningful (every rule
//! examined sites) and deterministic (byte-identical report).

use std::path::PathBuf;

use ftr_lint::{render, run_lint, LintConfig, RULES};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn workspace_lints_clean() {
    let config = LintConfig::workspace(workspace_root());
    let outcome = run_lint(&config).expect("lint run");
    let violations = outcome.sorted_violations();
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_examines_sites() {
    let config = LintConfig::workspace(workspace_root());
    let outcome = run_lint(&config).expect("lint run");
    assert_eq!(outcome.rules.len(), RULES.len());
    for (rule, stats) in &outcome.rules {
        assert!(
            stats.sites_checked > 0,
            "rule {rule} examined no sites — a vacuous pass is a broken gate"
        );
    }
    assert!(outcome.files_scanned > 0);
}

#[test]
fn ledger_coverage_is_total() {
    let config = LintConfig::workspace(workspace_root());
    let outcome = run_lint(&config).expect("lint run");
    assert!(outcome.ledger.sites > 0, "no Ordering sites found");
    assert_eq!(
        outcome.ledger.ledgered, outcome.ledger.sites,
        "every Ordering:: site needs an orderings.ledger entry"
    );
    assert_eq!(outcome.ledger.stale, 0, "stale ledger entries");
}

#[test]
fn report_is_byte_deterministic() {
    let config = LintConfig::workspace(workspace_root());
    let a = render(&run_lint(&config).expect("first run"));
    let b = render(&run_lint(&config).expect("second run"));
    assert_eq!(a, b, "render must be byte-identical across runs");
    assert!(a.ends_with('\n'));
    assert!(a.contains("\"violations_total\": 0"));
}

//! Fixture: ledger reconciliation and SeqCst-in-hot-path.

use std::sync::atomic::{AtomicU64, Ordering};

static C: AtomicU64 = AtomicU64::new(0);

fn ledgered() {
    C.fetch_add(1, Ordering::Relaxed); // covered by test.ledger
}

fn unledgered() {
    C.fetch_add(1, Ordering::Acquire); // line 12: no ledger entry
}

fn decoys() {
    let _ = "Ordering::SeqCst in a string";
    // Ordering::SeqCst in a comment.
    let _ = std::cmp::Ordering::Less; // not an atomic ordering
}

// lint: hot-path
fn hot() {
    C.load(Ordering::SeqCst); // line 23: SeqCst inside a hot region
}
// lint: end-hot-path

//! Fixture: `unsafe` outside the island must fire; decoys must not.

// The word unsafe in a comment is invisible.
/* block comment: unsafe { } */

fn decoys() {
    let _s = "unsafe in a string";
    let _r = r#"unsafe in a raw string"#;
    let _b = b"unsafe bytes";
}

fn bad() {
    let p = &7u8 as *const u8;
    let _v = unsafe { *p }; // line 14: the violation
}

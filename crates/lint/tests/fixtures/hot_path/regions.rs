//! Fixture: only the `// lint: hot-path` region is a scope here.

use std::sync::RwLock; // outside any region: fine in this file

fn cold(l: &RwLock<u32>) -> u32 {
    *l.read().unwrap()
}

// lint: hot-path
fn hot() {
    let m = std::sync::Mutex::new(1u32); // line 11: Mutex in region
    let _ = m.lock(); // line 12: .lock() in region
}
// lint: end-hot-path

fn cold_again() {
    let m = std::sync::Mutex::new(2u32);
    let _ = m.lock();
}

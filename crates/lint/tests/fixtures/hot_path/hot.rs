//! Fixture: whole-file hot-path scope — lock types and `.lock()` fire.

use std::sync::Mutex; // line 3: Mutex named in a hot file

fn decoys() {
    let _ = "Mutex in a string does not fire";
    // Mutex in a comment does not fire.
    let unlock = |x: u32| x; // `unlock` ident is not `.lock(`
    let _ = unlock(1);
}

fn bad(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // line 12: Mutex path + .lock() call
}

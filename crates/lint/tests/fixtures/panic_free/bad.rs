//! Fixture: panic candidates in a request-dispatch module.

fn bad(v: Option<u32>) -> u32 {
    let a = v.unwrap(); // line 4: .unwrap()
    let b = v.expect("present"); // line 5: .expect()
    if a + b > 100 {
        panic!("too big"); // line 7: panic!
    }
    match a {
        0 => unreachable!("zero was filtered"), // line 10: unreachable!
        n => n,
    }
}

fn annotated(v: Option<u32>) -> u32 {
    // lint: allow-panic(fixture: startup-only path)
    let a = v.unwrap();
    let b = v.unwrap(); // lint: allow-panic(fixture: trailing form)
    debug_assert!(a <= b); // debug_assert compiles out of release: exempt
    a + b
}

fn safe(v: Option<u32>) -> u32 {
    v.unwrap_or(0) // unwrap_or is not a panic candidate
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        assert_eq!(super::safe(None), 0);
        Option::<u32>::Some(3).unwrap();
    }
}

//! Fixture: the `// lint:` directive grammar itself.

// Unknown directive (violation at line 4):
// lint: allow-painc(typo must fail loudly)

// Empty reason (violation at line 7):
// lint: allow-panic()

// Close without open (violation at line 10):
// lint: end-hot-path

// Open never closed (violation at line 13):
// lint: hot-path
fn f() {}

//! Fixture: `#[allow]` needs a plain reason comment.

#[allow(dead_code)] // kept: exercised by the fixture harness
fn justified_trailing() {}

// The next item's allow is justified by this line.
#[allow(dead_code)]
fn justified_above() {}

#[allow(dead_code)]
fn bare() {} // line 10: the attribute on line 10 has no reason comment

/// A doc comment is for callers, not lint exemptions.
#[allow(dead_code)]
fn doc_comment_does_not_count() {} // line 14: still a violation

#[cfg(test)]
mod tests {
    #[allow(dead_code)]
    fn test_code_is_exempt() {}
}

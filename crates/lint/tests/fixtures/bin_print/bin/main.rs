//! Fixture: a `bin/` path may print freely.

fn main() {
    println!("bins own stdout");
}

//! Fixture: printing from library code.

fn bad() {
    println!("to stdout"); // line 4: println! in lib code
    eprintln!("to stderr"); // line 5: eprintln! in lib code
}

fn annotated() {
    // lint: allow-print(fixture: operator-facing progress line)
    println!("allowed");
}

fn decoys() {
    let _ = "println! inside a string";
    // println! inside a comment
}

//! The rule engine: walks every workspace source file, lexes it, and
//! enforces the declared invariants.
//!
//! Rules (report keys in parentheses):
//!
//! * **unsafe island** (`unsafe-island`) — the `unsafe` keyword may
//!   appear only in the configured island files (the `poll(2)` FFI
//!   shim). Everything else in the workspace is safe Rust, and stays
//!   that way by machine check rather than convention.
//! * **lock-free hot path** (`hot-path-lock-free`) — no `Mutex`, no
//!   `RwLock`, no `.lock()` call inside hot-path scopes: the configured
//!   whole-file modules plus every `// lint: hot-path` region.
//! * **atomic-ordering ledger** (`atomic-ordering-ledger`) — every
//!   `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site must
//!   match a [`crate::ledger::Ledger`] entry; stale entries and
//!   `SeqCst` inside a hot-path scope are errors.
//! * **panic-free request path** (`panic-free-request-path`) — no
//!   `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` / `assert*!` in the configured request-dispatch
//!   modules, outside `// lint: allow-panic(<reason>)` annotations and
//!   `#[cfg(test)]` code. (`debug_assert*!` is exempt: it compiles out
//!   of release builds, which is what serves traffic.)
//! * **justified allow** (`justified-allow`) — every `#[allow(...)]`
//!   needs a reason comment on the same or the preceding line.
//! * **bin-only printing** (`bin-only-printing`) — `print!`-family
//!   macros only under `bin`/`examples`/`benches`/`tests` paths (or an
//!   explicit `// lint: allow-print(<reason>)`).
//! * **annotation grammar** (`annotations`) — every `// lint:` comment
//!   must parse, and `hot-path` regions must be balanced.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::ledger::{Ledger, ORDERINGS};
use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// What to lint and which invariants bind where. Paths are
/// workspace-root-relative with forward slashes.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// The workspace root to walk.
    pub root: PathBuf,
    /// Files allowed to contain the `unsafe` keyword.
    pub unsafe_island: Vec<String>,
    /// Whole files that are hot-path scopes.
    pub hot_path_files: Vec<String>,
    /// Request-dispatch modules bound by the panic-freedom rule.
    pub panic_free_files: Vec<String>,
    /// Extra files (beyond `bin`/`examples`/`benches`/`tests` paths)
    /// allowed to print.
    pub print_allowed_files: Vec<String>,
    /// Workspace-relative path of the orderings ledger (absent file =
    /// empty ledger).
    pub ledger_path: String,
}

impl LintConfig {
    /// The configuration for *this* workspace: the invariants the
    /// serving stack documents in README's "Static analysis" section.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            unsafe_island: vec!["crates/serve/src/poll.rs".into()],
            hot_path_files: vec![
                "crates/core/src/engine.rs".into(),
                "crates/graph/src/bitmatrix.rs".into(),
                "crates/serve/src/query.rs".into(),
            ],
            panic_free_files: vec![
                "crates/serve/src/server.rs".into(),
                "crates/serve/src/query.rs".into(),
                "crates/serve/src/epoch.rs".into(),
                "crates/serve/src/snapshot.rs".into(),
                "crates/serve/src/proto.rs".into(),
                "crates/serve/src/ingest.rs".into(),
            ],
            print_allowed_files: vec![
                // The offline criterion stand-in *is* a bench harness;
                // printing results is its output interface.
                "crates/support/criterion/src/lib.rs".into(),
            ],
            ledger_path: "crates/lint/orderings.ledger".into(),
        }
    }
}

/// Report keys, in report order.
pub const RULES: [&str; 7] = [
    "unsafe-island",
    "hot-path-lock-free",
    "atomic-ordering-ledger",
    "panic-free-request-path",
    "justified-allow",
    "bin-only-printing",
    "annotations",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule key (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable reason.
    pub message: String,
}

/// Per-rule accounting.
#[derive(Debug, Default, Clone)]
pub struct RuleStats {
    /// How many sites this rule examined (rule-specific unit; see the
    /// module docs — always `> 0` on a real workspace).
    pub sites_checked: u64,
    /// The diagnostics that fired.
    pub violations: Vec<Violation>,
}

/// Ledger coverage accounting (the CI gate checks `ledgered == sites`).
#[derive(Debug, Default, Clone, Copy)]
pub struct LedgerStats {
    /// Parsed ledger entries.
    pub entries: u64,
    /// `Ordering::` sites found in the workspace.
    pub sites: u64,
    /// Sites matched by a ledger entry.
    pub ledgered: u64,
    /// Entries matching no site.
    pub stale: u64,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Files scanned (sorted).
    pub files_scanned: u64,
    /// Per-rule stats, in [`RULES`] order.
    pub rules: Vec<(&'static str, RuleStats)>,
    /// Ledger coverage.
    pub ledger: LedgerStats,
}

impl LintOutcome {
    /// Total diagnostics across all rules.
    pub fn total_violations(&self) -> usize {
        self.rules.iter().map(|(_, s)| s.violations.len()).sum()
    }

    /// All diagnostics, sorted by (file, line, rule).
    pub fn sorted_violations(&self) -> Vec<&Violation> {
        let mut all: Vec<&Violation> = self
            .rules
            .iter()
            .flat_map(|(_, s)| s.violations.iter())
            .collect();
        all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        all
    }
}

/// An `Ordering::<strength>` site (public so `--suggest-ledger` can
/// render templates from it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing symbol (`use` / `mod` / function name).
    pub symbol: String,
    /// The strength (`Relaxed` … `SeqCst`).
    pub ordering: String,
}

/// Runs every rule over the workspace.
///
/// # Errors
///
/// Propagates I/O errors from walking the tree or a malformed ledger
/// file (reported as `InvalidData`).
pub fn run_lint(config: &LintConfig) -> io::Result<LintOutcome> {
    let (outcome, _) = run_lint_with_sites(config)?;
    Ok(outcome)
}

/// [`run_lint`], also returning every `Ordering::` site found (used by
/// the `--suggest-ledger` mode of the CLI).
///
/// # Errors
///
/// Propagates I/O errors from walking the tree or a malformed ledger.
pub fn run_lint_with_sites(config: &LintConfig) -> io::Result<(LintOutcome, Vec<OrderingSite>)> {
    let files = collect_files(&config.root)?;
    let ledger = load_ledger(config)?;

    let mut rules: Vec<(&'static str, RuleStats)> =
        RULES.iter().map(|&r| (r, RuleStats::default())).collect();
    let mut sites: Vec<OrderingSite> = Vec::new();

    let mut hot_scope_count = 0u64;
    for rel in &config.hot_path_files {
        if !files.contains(rel) {
            push(
                &mut rules,
                "hot-path-lock-free",
                rel.clone(),
                0,
                "configured hot-path file is missing from the workspace".into(),
            );
        } else {
            hot_scope_count += 1;
        }
    }
    for rel in &config.unsafe_island {
        if !files.contains(rel) {
            push(
                &mut rules,
                "unsafe-island",
                rel.clone(),
                0,
                "configured unsafe-island file is missing from the workspace".into(),
            );
        }
    }

    for rel in &files {
        let text = fs::read(
            config
                .root
                .join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)),
        )
        .map(|b| String::from_utf8_lossy(&b).into_owned())?;
        let lexed = lex(&text);
        let file = FileView::build(rel, &lexed, config, &mut rules);
        hot_scope_count += file.hot_regions.len() as u64;
        scan_file(rel, &lexed, &file, config, &mut rules, &mut sites);
    }

    // Rule-specific site accounting.
    stat(&mut rules, "unsafe-island").sites_checked += files.len() as u64;
    stat(&mut rules, "hot-path-lock-free").sites_checked += hot_scope_count;
    stat(&mut rules, "panic-free-request-path").sites_checked +=
        config.panic_free_files.len() as u64;

    // Ledger reconciliation.
    let mut matched_keys: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut ledgered = 0u64;
    for site in &sites {
        let key = (
            site.file.clone(),
            site.symbol.clone(),
            site.ordering.clone(),
        );
        if ledger.entries.contains_key(&key) {
            ledgered += 1;
            matched_keys.insert(key);
        } else {
            push(
                &mut rules,
                "atomic-ordering-ledger",
                site.file.clone(),
                site.line,
                format!(
                    "Ordering::{} in `{}` has no ledger entry \
                     (add `{} | {} | {} | <why>` to {})",
                    site.ordering,
                    site.symbol,
                    site.file,
                    site.symbol,
                    site.ordering,
                    config.ledger_path
                ),
            );
        }
    }
    let mut stale = 0u64;
    for (key, entry) in &ledger.entries {
        if !matched_keys.contains(key) {
            stale += 1;
            push(
                &mut rules,
                "atomic-ordering-ledger",
                config.ledger_path.clone(),
                entry.line,
                format!(
                    "stale ledger entry: no Ordering::{} site in `{}` of {}",
                    entry.ordering, entry.symbol, entry.file
                ),
            );
        }
    }
    stat(&mut rules, "atomic-ordering-ledger").sites_checked += sites.len() as u64;

    let outcome = LintOutcome {
        files_scanned: files.len() as u64,
        ledger: LedgerStats {
            entries: ledger.entries.len() as u64,
            sites: sites.len() as u64,
            ledgered,
            stale,
        },
        rules,
    };
    Ok((outcome, sites))
}

fn load_ledger(config: &LintConfig) -> io::Result<Ledger> {
    let path = config.root.join(&config.ledger_path);
    match fs::read_to_string(&path) {
        Ok(text) => Ledger::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Ledger::default()),
        Err(e) => Err(e),
    }
}

fn stat<'a>(rules: &'a mut [(&'static str, RuleStats)], rule: &str) -> &'a mut RuleStats {
    // RULES is a fixed array the vec was built from, so the key exists.
    let idx = rules.iter().position(|(r, _)| *r == rule).unwrap_or(0);
    &mut rules[idx].1
}

fn push(
    rules: &mut [(&'static str, RuleStats)],
    rule: &'static str,
    file: String,
    line: u32,
    message: String,
) {
    stat(rules, rule).violations.push(Violation {
        rule,
        file,
        line,
        message,
    });
}

/// Deterministic (sorted) list of workspace-relative `.rs` paths.
/// Skips `target`, VCS metadata, and any `fixtures` directory (the
/// lint crate's own test fixtures contain deliberate violations).
fn collect_files(root: &Path) -> io::Result<BTreeSet<String>> {
    let mut files = BTreeSet::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(dir) = stack.pop() {
        let abs = root.join(&dir);
        let mut entries: Vec<_> = fs::read_dir(&abs)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        entries.sort();
        for name in entries {
            if matches!(name.as_str(), "target" | ".git" | "fixtures") {
                continue;
            }
            let rel = if dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                dir.join(&name)
            };
            let abs = root.join(&rel);
            if abs.is_dir() {
                stack.push(rel);
            } else if name.ends_with(".rs") {
                files.insert(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(files)
}

/// A parsed `// lint:` directive.
#[derive(Debug, PartialEq, Eq)]
enum Directive {
    HotPath,
    EndHotPath,
    AllowPanic,
    AllowPrint,
}

/// Per-file derived state the token scan consults.
struct FileView {
    /// Whole file is a hot-path scope.
    hot_file: bool,
    /// `(start, end)` line ranges of `// lint: hot-path` regions.
    hot_regions: Vec<(u32, u32)>,
    /// Lines covered by `allow-panic` (the annotation line and the
    /// next, so a trailing comment or a line-above comment both work).
    allow_panic: BTreeSet<u32>,
    /// Lines covered by `allow-print`.
    allow_print: BTreeSet<u32>,
    /// Per-token flag: inside `#[cfg(test)]` / `#[test]` code.
    in_test: Vec<bool>,
    /// File is bound by the panic-freedom rule.
    panic_scope: bool,
    /// Printing is allowed here by path or config.
    print_ok: bool,
}

impl FileView {
    fn build(
        rel: &str,
        lexed: &Lexed,
        config: &LintConfig,
        rules: &mut [(&'static str, RuleStats)],
    ) -> FileView {
        let mut view = FileView {
            hot_file: config.hot_path_files.iter().any(|f| f == rel),
            hot_regions: Vec::new(),
            allow_panic: BTreeSet::new(),
            allow_print: BTreeSet::new(),
            in_test: mark_test_tokens(&lexed.tokens),
            panic_scope: config.panic_free_files.iter().any(|f| f == rel),
            print_ok: path_may_print(rel) || config.print_allowed_files.iter().any(|f| f == rel),
        };
        let mut open_region: Option<u32> = None;
        for comment in &lexed.comments {
            let Some(raw) = directive_text(comment) else {
                continue;
            };
            stat(rules, "annotations").sites_checked += 1;
            match parse_directive(raw) {
                Ok(Directive::HotPath) => {
                    if open_region.is_some() {
                        push(
                            rules,
                            "annotations",
                            rel.to_string(),
                            comment.line,
                            "`lint: hot-path` region opened inside an open region".into(),
                        );
                    } else {
                        open_region = Some(comment.line);
                    }
                }
                Ok(Directive::EndHotPath) => match open_region.take() {
                    Some(start) => view.hot_regions.push((start, comment.line)),
                    None => push(
                        rules,
                        "annotations",
                        rel.to_string(),
                        comment.line,
                        "`lint: end-hot-path` without an open region".into(),
                    ),
                },
                Ok(Directive::AllowPanic) => {
                    view.allow_panic.insert(comment.line);
                    view.allow_panic.insert(comment.line + 1);
                }
                Ok(Directive::AllowPrint) => {
                    view.allow_print.insert(comment.line);
                    view.allow_print.insert(comment.line + 1);
                }
                Err(msg) => push(rules, "annotations", rel.to_string(), comment.line, msg),
            }
        }
        if let Some(start) = open_region {
            push(
                rules,
                "annotations",
                rel.to_string(),
                start,
                "`lint: hot-path` region never closed (missing `lint: end-hot-path`)".into(),
            );
            view.hot_regions.push((start, u32::MAX));
        }
        view
    }

    fn in_hot(&self, line: u32) -> bool {
        self.hot_file
            || self
                .hot_regions
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }
}

/// Extracts the directive body from a comment that opens with `lint:`
/// (after doc-comment `/` and `!` markers and whitespace).
fn directive_text(comment: &Comment) -> Option<&str> {
    let text = comment.text.trim_start_matches(['/', '!']).trim_start();
    text.strip_prefix("lint:").map(str::trim)
}

fn parse_directive(body: &str) -> Result<Directive, String> {
    if body == "hot-path" {
        return Ok(Directive::HotPath);
    }
    if body == "end-hot-path" {
        return Ok(Directive::EndHotPath);
    }
    for (prefix, directive) in [
        ("allow-panic", Directive::AllowPanic),
        ("allow-print", Directive::AllowPrint),
    ] {
        if let Some(rest) = body.strip_prefix(prefix) {
            let rest = rest.trim();
            let reason = rest
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .map(str::trim);
            return match reason {
                Some(r) if !r.is_empty() => Ok(directive),
                _ => Err(format!(
                    "`lint: {prefix}` needs a non-empty parenthesized reason: \
                     `// lint: {prefix}(<why>)`"
                )),
            };
        }
    }
    Err(format!(
        "unknown `lint:` directive {body:?} (want hot-path, end-hot-path, \
         allow-panic(<why>) or allow-print(<why>))"
    ))
}

/// Paths that may print by construction: binaries, examples, benches
/// and test trees.
fn path_may_print(rel: &str) -> bool {
    rel.split('/')
        .any(|c| matches!(c, "bin" | "examples" | "benches" | "tests"))
        || rel == "src/main.rs"
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items: the
/// attribute plus the following item (balanced braces, or up to `;`).
fn mark_test_tokens(tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct(b'#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).map(|t| &t.tok) == Some(&Tok::Punct(b'!')) {
            j += 1;
        }
        if tokens.get(j).map(|t| &t.tok) != Some(&Tok::Punct(b'[')) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test` (covers `#[test]`,
        // `#[cfg(test)]`, `#[cfg(all(test, …))]`).
        let mut depth = 0usize;
        let mut is_test = false;
        let mut k = j;
        while k < tokens.len() {
            match &tokens[k].tok {
                Tok::Punct(b'[') => depth += 1,
                Tok::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if s == "test" => is_test = true,
                _ => {}
            }
            k += 1;
        }
        if !is_test {
            i = k + 1;
            continue;
        }
        // Mark the attribute and the item that follows: through the
        // item's balanced `{ … }`, or to the first `;` if none opens.
        let mut end = k + 1;
        let mut brace_depth = 0usize;
        let mut opened = false;
        while end < tokens.len() {
            match &tokens[end].tok {
                Tok::Punct(b'{') => {
                    brace_depth += 1;
                    opened = true;
                }
                Tok::Punct(b'}') => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if opened && brace_depth == 0 {
                        break;
                    }
                }
                Tok::Punct(b';') if !opened => break,
                _ => {}
            }
            end += 1;
        }
        for slot in marked.iter_mut().take((end + 1).min(tokens.len())).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    marked
}

/// Panic-candidate method names (postfix `.name(` form).
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Panic-candidate macro names (`name!` form).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Print macro names (`name!` form).
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

fn scan_file(
    rel: &str,
    lexed: &Lexed,
    view: &FileView,
    config: &LintConfig,
    rules: &mut [(&'static str, RuleStats)],
    sites: &mut Vec<OrderingSite>,
) {
    let tokens = &lexed.tokens;
    let island = config.unsafe_island.iter().any(|f| f == rel);
    for (i, token) in tokens.iter().enumerate() {
        let line = token.line;
        let Tok::Ident(name) = &token.tok else {
            continue;
        };
        match name.as_str() {
            "unsafe" if !island => {
                push(
                    rules,
                    "unsafe-island",
                    rel.to_string(),
                    line,
                    format!(
                        "`unsafe` outside the FFI island ({})",
                        config.unsafe_island.join(", ")
                    ),
                );
            }
            "Mutex" | "RwLock" if view.in_hot(line) => {
                push(
                    rules,
                    "hot-path-lock-free",
                    rel.to_string(),
                    line,
                    format!("`{name}` named inside a hot-path scope"),
                );
            }
            "Ordering" => {
                if let Some(site) = ordering_site(tokens, i, rel) {
                    if site.ordering == "SeqCst" && view.in_hot(line) {
                        push(
                            rules,
                            "atomic-ordering-ledger",
                            rel.to_string(),
                            line,
                            "Ordering::SeqCst inside a hot-path scope (downgrade or \
                             move the synchronization off the hot path)"
                                .into(),
                        );
                    }
                    sites.push(site);
                }
            }
            "lock" => {
                // `.lock(` — a blocking acquisition.
                let after_dot = i > 0 && tokens[i - 1].tok == Tok::Punct(b'.');
                let call = tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(b'('));
                if after_dot && call && view.in_hot(line) {
                    push(
                        rules,
                        "hot-path-lock-free",
                        rel.to_string(),
                        line,
                        "`.lock()` call inside a hot-path scope".into(),
                    );
                }
            }
            "allow" if is_attribute_head(tokens, i) && !view.in_test[i] => {
                stat(rules, "justified-allow").sites_checked += 1;
                if !comment_near(lexed, line) {
                    push(
                        rules,
                        "justified-allow",
                        rel.to_string(),
                        line,
                        "#[allow(...)] without a reason comment on the same or \
                         previous line"
                            .into(),
                    );
                }
            }
            _ if PANIC_MACROS.contains(&name.as_str()) => {
                let is_macro = tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(b'!'));
                if is_macro && view.panic_scope && !view.in_test[i] {
                    stat(rules, "panic-free-request-path").sites_checked += 1;
                    if !view.allow_panic.contains(&line) {
                        push(
                            rules,
                            "panic-free-request-path",
                            rel.to_string(),
                            line,
                            format!(
                                "`{name}!` in a request-dispatch module (return a \
                                     structured error, or annotate \
                                     `// lint: allow-panic(<why>)`)"
                            ),
                        );
                    }
                }
            }
            _ if PANIC_METHODS.contains(&name.as_str()) => {
                let after_dot = i > 0 && tokens[i - 1].tok == Tok::Punct(b'.');
                let call = tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(b'('));
                if after_dot && call && view.panic_scope && !view.in_test[i] {
                    stat(rules, "panic-free-request-path").sites_checked += 1;
                    if !view.allow_panic.contains(&line) {
                        push(
                            rules,
                            "panic-free-request-path",
                            rel.to_string(),
                            line,
                            format!(
                                "`.{name}()` in a request-dispatch module (return a \
                                     structured error, or annotate \
                                     `// lint: allow-panic(<why>)`)"
                            ),
                        );
                    }
                }
            }
            _ if PRINT_MACROS.contains(&name.as_str()) => {
                let is_macro = tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(b'!'));
                if is_macro && !view.in_test[i] {
                    stat(rules, "bin-only-printing").sites_checked += 1;
                    if !view.print_ok && !view.allow_print.contains(&line) {
                        push(
                            rules,
                            "bin-only-printing",
                            rel.to_string(),
                            line,
                            format!(
                                "`{name}!` in library code (move output to a bin, or \
                                     annotate `// lint: allow-print(<why>)`)"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Matches `Ordering :: <strength>` at token `i` and resolves the
/// enclosing symbol.
fn ordering_site(tokens: &[Token], i: usize, rel: &str) -> Option<OrderingSite> {
    if tokens.get(i + 1).map(|t| &t.tok) != Some(&Tok::PathSep) {
        return None;
    }
    let Tok::Ident(strength) = &tokens.get(i + 2)?.tok else {
        return None;
    };
    if !ORDERINGS.contains(&strength.as_str()) {
        return None;
    }
    Some(OrderingSite {
        file: rel.to_string(),
        line: tokens[i].line,
        symbol: enclosing_symbol(tokens, i),
        ordering: strength.clone(),
    })
}

/// The symbol a site is attributed to: the nearest preceding `fn`
/// name; `use` for an import outside any function; `mod` otherwise.
/// (An approximation — good enough to key the ledger, and `ftr-lint
/// --suggest-ledger` computes keys with this same function, so entry
/// and site can never disagree on the convention.)
fn enclosing_symbol(tokens: &[Token], i: usize) -> String {
    let mut in_use = false;
    for j in (0..i).rev() {
        match &tokens[j].tok {
            Tok::Punct(b';') => break,
            Tok::Ident(s) if s == "use" => {
                in_use = true;
                break;
            }
            Tok::Ident(s) if s == "fn" => break,
            _ => {}
        }
    }
    for j in (0..i).rev() {
        if let Tok::Ident(s) = &tokens[j].tok {
            if s == "fn" {
                if let Some(Tok::Ident(name)) = tokens.get(j + 1).map(|t| &t.tok) {
                    return name.clone();
                }
            }
        }
    }
    if in_use {
        "use".to_string()
    } else {
        "mod".to_string()
    }
}

/// Is the `allow` at `i` the head of an attribute (`#[allow` or
/// `#![allow`)?
fn is_attribute_head(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| tokens.get(j)) else {
        return false;
    };
    if prev.tok != Tok::Punct(b'[') {
        return false;
    }
    match i.checked_sub(2).and_then(|j| tokens.get(j)).map(|t| &t.tok) {
        Some(Tok::Punct(b'#')) => true,
        Some(Tok::Punct(b'!')) => {
            i.checked_sub(3).and_then(|j| tokens.get(j)).map(|t| &t.tok) == Some(&Tok::Punct(b'#'))
        }
        _ => false,
    }
}

/// Is there a plain (non-doc) line comment on `line` or `line - 1`?
/// Doc comments don't count as allow-justifications: `///` text
/// documents the item for its callers, not the lint exemption.
fn comment_near(lexed: &Lexed, line: u32) -> bool {
    lexed.comments.iter().any(|c| {
        (c.line == line || c.line + 1 == line)
            && !c.text.starts_with('/')
            && !c.text.starts_with('!')
    })
}

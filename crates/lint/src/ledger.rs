//! The atomic-ordering ledger: a checked-in registry of every
//! `Ordering::<strength>` site in the workspace, with a one-line
//! justification for the chosen strength.
//!
//! Format (one entry per line, `#` comments and blank lines ignored):
//!
//! ```text
//! <file> | <symbol> | <ordering> | <justification>
//! ```
//!
//! * `file` — workspace-relative path, forward slashes.
//! * `symbol` — the enclosing function name, or `use` for a top-level
//!   import, or `mod` for module-level code. One entry covers *every*
//!   site with the same `(file, symbol, ordering)` key — a function
//!   that loads the same counter five times with `Relaxed` needs one
//!   entry, not five.
//! * `ordering` — `Relaxed`, `Acquire`, `Release`, `AcqRel` or `SeqCst`.
//! * `justification` — why this strength is sufficient (and, for
//!   anything above `Relaxed`, what it synchronizes with).
//!
//! The linter enforces the ledger in both directions: a site without an
//! entry is an error (undocumented ordering), and an entry without a
//! site is an error (stale ledger — the code moved and the audit trail
//! no longer matches it).

use std::collections::BTreeMap;
use std::fmt;

/// The five `std::sync::atomic` ordering strengths.
pub const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One parsed ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// Enclosing symbol (`use` / `mod` / function name).
    pub symbol: String,
    /// The ordering strength this entry justifies.
    pub ordering: String,
    /// The one-line justification.
    pub justification: String,
    /// 1-based line of the entry in the ledger file.
    pub line: u32,
}

/// The key a site or an entry is matched under.
pub type LedgerKey = (String, String, String);

/// A parsed ledger: entries indexed by `(file, symbol, ordering)`.
#[derive(Debug, Default)]
pub struct Ledger {
    /// Entries in key order (deterministic regardless of file order).
    pub entries: BTreeMap<LedgerKey, LedgerEntry>,
}

/// Why a ledger failed to parse.
#[derive(Debug)]
pub struct LedgerParseError {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for LedgerParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ledger line {}: {}", self.line, self.message)
    }
}

impl Ledger {
    /// Parses the ledger text.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerParseError`] for a malformed line, an unknown
    /// ordering strength, an empty justification, or a duplicate
    /// `(file, symbol, ordering)` key.
    pub fn parse(text: &str) -> Result<Ledger, LedgerParseError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = (i + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = trimmed.split('|').map(str::trim).collect();
            let [file, symbol, ordering, justification] = parts.as_slice() else {
                return Err(LedgerParseError {
                    line,
                    message: format!(
                        "want `file | symbol | ordering | justification`, got {} field(s)",
                        parts.len()
                    ),
                });
            };
            if !ORDERINGS.contains(ordering) {
                return Err(LedgerParseError {
                    line,
                    message: format!("unknown ordering {ordering:?} (want one of {ORDERINGS:?})"),
                });
            }
            if file.is_empty() || symbol.is_empty() {
                return Err(LedgerParseError {
                    line,
                    message: "empty file or symbol field".to_string(),
                });
            }
            if justification.is_empty() {
                return Err(LedgerParseError {
                    line,
                    message: "empty justification — the ledger exists to record the why"
                        .to_string(),
                });
            }
            let key = (file.to_string(), symbol.to_string(), ordering.to_string());
            let entry = LedgerEntry {
                file: file.to_string(),
                symbol: symbol.to_string(),
                ordering: ordering.to_string(),
                justification: justification.to_string(),
                line,
            };
            if entries.insert(key.clone(), entry).is_some() {
                return Err(LedgerParseError {
                    line,
                    message: format!("duplicate entry for {} | {} | {}", key.0, key.1, key.2),
                });
            }
        }
        Ok(Ledger { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_ignores_comments() {
        let text = "# header\n\n\
                    crates/a/src/x.rs | publish | Release | pairs with Acquire loads\n\
                    crates/a/src/x.rs | current_id | Acquire | pairs with the Release store\n";
        let ledger = Ledger::parse(text).unwrap();
        assert_eq!(ledger.entries.len(), 2);
        let key = (
            "crates/a/src/x.rs".to_string(),
            "publish".to_string(),
            "Release".to_string(),
        );
        assert_eq!(
            ledger.entries[&key].justification,
            "pairs with Acquire loads"
        );
        assert_eq!(ledger.entries[&key].line, 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "just one field",
            "a | b | c",                                  // missing justification
            "a | b | Sideways | why",                     // unknown ordering
            "a | b | SeqCst |   ",                        // empty justification
            " | b | SeqCst | why",                        // empty file
            "a | fn | Relaxed | x\na | fn | Relaxed | y", // duplicate key
        ] {
            assert!(Ledger::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rules in [`crate::rules`] match *token* sequences, never raw
//! text, so an `unsafe` inside a string literal, a `Mutex` in a doc
//! comment or an `Ordering::SeqCst` in a nested block comment can never
//! fire a diagnostic. The lexer therefore has to get exactly four
//! things right:
//!
//! * **comments** — `//` line comments (captured, so `// lint:`
//!   annotations can be parsed) and `/* … */` block comments with
//!   arbitrary nesting (discarded);
//! * **string-likes** — `"…"` with escapes, byte/C strings (`b"…"`,
//!   `c"…"`), and raw strings `r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"`
//!   with any number of hashes;
//! * **char-likes** — `'x'`, `b'x'`, escaped forms (`'\''`, `'\u{2603}'`)
//!   *distinguished from lifetimes* (`'a`, `'static`), which produce no
//!   token at all;
//! * **line numbers** — every token and comment carries its 1-based
//!   line, including tokens after multi-line strings and comments.
//!
//! Everything else is simple: identifiers (and keywords — the lexer
//! does not distinguish), `::` merged into one path-separator token,
//! every other punctuation byte emitted as itself. Numeric literals are
//! consumed and dropped; no rule looks at them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `Mutex`, `fn`, …).
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// Any single punctuation byte (`.`, `!`, `#`, `[`, `(`, `{`, …).
    Punct(u8),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// A captured `//` line comment (block comments are discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Text after the leading `//`, untrimmed.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` (one Rust source file) into tokens and line comments.
/// The lexer never fails: unterminated constructs consume the rest of
/// the file, which is the useful behavior for a linter (rustc itself
/// rejects such files long before ftr-lint matters).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b':' if self.peek(1) == Some(b':') => {
                    self.push(Tok::PathSep);
                    self.pos += 2;
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => self.ident_or_prefixed(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b.is_ascii_whitespace() => self.pos += 1,
                _ => {
                    self.push(Tok::Punct(b));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(Token {
            line: self.line,
            tok,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => return, // unterminated: consume to EOF
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(b'\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A `"…"` string with `\` escapes; may span lines.
    fn string(&mut self) {
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A raw string `r"…"` / `r#"…"#` (any hash count), cursor on the
    /// first `#` or `"` after the prefix ident.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            return; // `r#[ident]` etc. — a raw identifier, not a string
        }
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
            }
            if b == b'"' {
                let closed = (1..=hashes).all(|i| self.peek(i) == Some(b'#'));
                if closed {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `'x'` / `'\n'` / `'\u{…}'` char literals versus `'a` lifetimes.
    /// Lifetimes produce no token; their trailing identifier is consumed
    /// so it cannot leak into the token stream.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip to the closing quote.
                self.pos += 2;
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            return;
                        }
                        _ => self.pos += 1,
                    }
                }
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                if self.peek(2) == Some(b'\'') {
                    self.pos += 3; // 'x'
                } else {
                    // Lifetime: consume the quote and the identifier.
                    self.pos += 1;
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        self.pos += 1;
                    }
                }
            }
            Some(_) => {
                // `'('`-style char literal of one punctuation byte, or a
                // stray quote; either way consume up to the next quote on
                // this line.
                self.pos += 1;
                if self.peek(1) == Some(b'\'') {
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
            }
            None => self.pos += 1,
        }
    }

    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let ident = &self.bytes[start..self.pos];
        // String/char prefixes: the ident glues to the literal that
        // follows it (`b"…"`, `r#"…"#`, `br"…"`, `b'x'`).
        match (ident, self.peek(0)) {
            (b"r" | b"br" | b"cr", Some(b'"' | b'#')) => {
                self.raw_string();
                return;
            }
            (b"b" | b"c", Some(b'"')) => {
                self.string_from_quote();
                return;
            }
            (b"b", Some(b'\'')) => {
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        let text = String::from_utf8_lossy(ident).into_owned();
        self.push(Tok::Ident(text));
    }

    /// Cursor sits on the opening quote of a (non-raw) string.
    fn string_from_quote(&mut self) {
        self.string();
    }

    /// Numeric literal: consumed and dropped (suffixes, underscores,
    /// hex/oct/bin, exponents — none of it matters to any rule).
    fn number(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        {
            // `1..n` range syntax: stop before `..` so the dots emit as
            // punctuation, not as part of the number.
            if self.peek(0) == Some(b'.') && self.peek(1) == Some(b'.') {
                break;
            }
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let x = "unsafe Mutex Ordering::SeqCst";"#),
            ["let", "x"]
        );
        assert_eq!(idents(r#"let y = b"unsafe";"#), ["let", "y"]);
        assert_eq!(idents("let z = \"multi\nline unsafe\";"), ["let", "z"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        assert_eq!(idents(r###"let x = r"unsafe";"###), ["let", "x"]);
        assert_eq!(
            idents(r###"let x = r#"Mutex "quoted" RwLock"#;"###),
            ["let", "x"]
        );
        assert_eq!(
            idents("let x = r##\"Ordering::SeqCst \"# still inside\"##;"),
            ["let", "x"]
        );
        assert_eq!(idents(r###"let x = br#"unsafe"#;"###), ["let", "x"]);
    }

    #[test]
    fn nested_block_comments_hide_their_contents() {
        assert_eq!(
            idents("/* unsafe /* Mutex nested */ Ordering::SeqCst */ fn f() {}"),
            ["fn", "f"]
        );
        assert_eq!(idents("/* unterminated unsafe"), Vec::<String>::new());
    }

    #[test]
    fn line_comments_are_captured_not_tokenized() {
        let lexed = lex("fn f() {} // unsafe Mutex\n// lint: hot-path\n");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Ident(_)))
                .count(),
            2
        );
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].text, " unsafe Mutex");
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].text, " lint: hot-path");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not swallow the rest of the file as a string; the
        // identifiers around it must all surface.
        assert_eq!(
            idents("fn f<'a>(x: &'a str) -> &'a str { x }"),
            ["fn", "f", "x", "str", "str", "x"]
        );
        assert_eq!(
            idents("let c = 'x'; let l: &'static str;"),
            ["let", "c", "let", "l", "str"]
        );
        assert_eq!(
            idents(r"let c = '\''; let d = '\u{2603}'; unsafe {}"),
            ["let", "c", "let", "d", "unsafe"]
        );
        assert_eq!(idents("let q = b'\\n'; fn g() {}"), ["let", "q", "fn", "g"]);
    }

    #[test]
    fn path_sep_is_one_token_and_lines_are_tracked() {
        let lexed = lex("use std::sync::atomic::Ordering;\n\nfn f() {\n    Ordering::SeqCst\n}\n");
        let seq: Vec<(u32, &Tok)> = lexed.tokens.iter().map(|t| (t.line, &t.tok)).collect();
        // The second `Ordering` sits on line 4, followed by :: and SeqCst.
        let pos = seq
            .iter()
            .rposition(|(_, t)| matches!(t, Tok::Ident(s) if s == "Ordering"))
            .unwrap();
        assert_eq!(seq[pos].0, 4);
        assert_eq!(seq[pos + 1].1, &Tok::PathSep);
        assert!(matches!(seq[pos + 2].1, Tok::Ident(s) if s == "SeqCst"));
        assert_eq!(seq[pos + 2].0, 4);
    }

    #[test]
    fn numbers_and_ranges_do_not_confuse_the_stream() {
        assert_eq!(
            idents("for i in 0..10 { a[i] = 1.5e3; }"),
            ["for", "i", "in", "a", "i"]
        );
        assert_eq!(
            idents("let x = 0xff_u64; let y = 1_000;"),
            ["let", "x", "let", "y"]
        );
    }

    #[test]
    fn attributes_tokenize_structurally() {
        let lexed = lex("#[allow(dead_code)] fn f() {}");
        let kinds: Vec<String> = lexed
            .tokens
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::PathSep => "::".into(),
                Tok::Punct(b) => (*b as char).to_string(),
            })
            .collect();
        assert_eq!(
            kinds,
            [
                "#",
                "[",
                "allow",
                "(",
                "dead_code",
                ")",
                "]",
                "fn",
                "f",
                "(",
                ")",
                "{",
                "}"
            ]
        );
    }
}

//! `ftr-lint` CLI — runs the workspace invariant linter.
//!
//! ```text
//! ftr-lint --check [--root DIR] [--report FILE] [--quiet]
//! ftr-lint --suggest-ledger [--root DIR]
//! ```
//!
//! `--check` (the default) runs every rule and exits 1 if any
//! violation fired, 2 on configuration/I-O errors. `--report FILE`
//! additionally writes the deterministic JSON report.
//! `--suggest-ledger` prints template ledger lines for every
//! `Ordering::` site that is missing from the ledger, ready to paste
//! into `crates/lint/orderings.ledger` and justify.

use std::path::PathBuf;
use std::process::ExitCode;

use ftr_lint::{render, run_lint_with_sites, LintConfig};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    suggest_ledger: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        suggest_ledger: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--suggest-ledger" => args.suggest_ledger = true,
            "--quiet" => args.quiet = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--report" => {
                args.report = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--report needs a file path".to_string())?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "usage: ftr-lint [--check] [--suggest-ledger] [--root DIR] \
                     [--report FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("ftr-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let config = LintConfig::workspace(&args.root);
    let (outcome, sites) = match run_lint_with_sites(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ftr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.suggest_ledger {
        // Template lines for every site missing a ledger entry, deduped
        // by key and sorted — paste into the ledger and justify.
        let ledger_text =
            std::fs::read_to_string(args.root.join(&config.ledger_path)).unwrap_or_default();
        let ledger = match ftr_lint::Ledger::parse(&ledger_text) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("ftr-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let mut lines: Vec<String> = sites
            .iter()
            .filter(|s| {
                !ledger.entries.contains_key(&(
                    s.file.clone(),
                    s.symbol.clone(),
                    s.ordering.clone(),
                ))
            })
            .map(|s| format!("{} | {} | {} | TODO", s.file, s.symbol, s.ordering))
            .collect();
        lines.sort();
        lines.dedup();
        for line in &lines {
            println!("{line}");
        }
        if !args.quiet {
            eprintln!("ftr-lint: {} unledgered key(s)", lines.len());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, render(&outcome)) {
            eprintln!("ftr-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let violations = outcome.sorted_violations();
    for v in &violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    if !args.quiet {
        eprintln!(
            "ftr-lint: {} file(s), {} Ordering site(s) ({} ledgered, {} stale entries), \
             {} violation(s)",
            outcome.files_scanned,
            outcome.ledger.sites,
            outcome.ledger.ledgered,
            outcome.ledger.stale,
            violations.len()
        );
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Deterministic JSON rendering of a [`LintOutcome`].
//!
//! Hand-rolled (std only) on purpose: the report is the CI artifact
//! the gate validates, so it must be byte-identical across runs on an
//! unchanged tree. Keys come out in a fixed order, violations are
//! sorted by `(file, line, rule)`, and nothing time- or
//! environment-dependent is embedded.

use std::fmt::Write as _;

use crate::rules::LintOutcome;

/// Renders the report as pretty-printed JSON (trailing newline
/// included, ready to write to `LINT_REPORT.json`).
#[must_use]
pub fn render(outcome: &LintOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": \"ftr-lint\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", outcome.files_scanned);
    out.push_str("  \"rules\": {\n");
    let last = outcome.rules.len().saturating_sub(1);
    for (idx, (rule, stats)) in outcome.rules.iter().enumerate() {
        let _ = writeln!(out, "    {}: {{", quote(rule));
        let _ = writeln!(out, "      \"sites_checked\": {},", stats.sites_checked);
        let mut violations: Vec<_> = stats.violations.iter().collect();
        violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        if violations.is_empty() {
            out.push_str("      \"violations\": []\n");
        } else {
            out.push_str("      \"violations\": [\n");
            let vlast = violations.len() - 1;
            for (vi, v) in violations.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"file\": {}, \"line\": {}, \"message\": {}}}",
                    quote(&v.file),
                    v.line,
                    quote(&v.message)
                );
                out.push_str(if vi == vlast { "\n" } else { ",\n" });
            }
            out.push_str("      ]\n");
        }
        out.push_str(if idx == last { "    }\n" } else { "    },\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"ledger\": {\n");
    let _ = writeln!(out, "    \"entries\": {},", outcome.ledger.entries);
    let _ = writeln!(out, "    \"sites\": {},", outcome.ledger.sites);
    let _ = writeln!(out, "    \"ledgered\": {},", outcome.ledger.ledgered);
    let _ = writeln!(out, "    \"stale\": {}", outcome.ledger.stale);
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"violations_total\": {}",
        outcome.total_violations()
    );
    out.push_str("}\n");
    out
}

/// JSON string literal with the escapes the report can actually need.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{LintOutcome, RuleStats, Violation, RULES};

    #[test]
    fn renders_deterministically_and_escapes() {
        let mut outcome = LintOutcome {
            files_scanned: 2,
            ..LintOutcome::default()
        };
        outcome.rules = RULES.iter().map(|&r| (r, RuleStats::default())).collect();
        outcome.rules[0].1.sites_checked = 2;
        outcome.rules[0].1.violations.push(Violation {
            rule: RULES[0],
            file: "b.rs".into(),
            line: 9,
            message: "say \"no\"".into(),
        });
        outcome.rules[0].1.violations.push(Violation {
            rule: RULES[0],
            file: "a.rs".into(),
            line: 4,
            message: "first".into(),
        });
        let one = render(&outcome);
        let two = render(&outcome);
        assert_eq!(one, two);
        assert!(one.contains("\\\"no\\\""));
        // Sorted: a.rs before b.rs even though pushed after.
        let a = one.find("a.rs").unwrap();
        let b = one.find("b.rs").unwrap();
        assert!(a < b);
        assert!(one.contains("\"violations_total\": 2"));
        assert!(one.ends_with("}\n"));
    }
}

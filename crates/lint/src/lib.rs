//! `ftr-lint` — the workspace invariant linter.
//!
//! The serving stack makes promises that `rustc` cannot check for us:
//! the hot path takes no locks, `unsafe` lives in exactly one FFI
//! shim, every atomic-ordering choice is justified in writing, and a
//! malformed request can never panic a shard thread. This crate turns
//! those promises into machine-checked invariants: a hand-rolled,
//! string/comment/attribute-aware Rust lexer ([`lexer`]) feeds a rule
//! engine ([`rules`]) that walks every workspace source file, and CI
//! fails if any invariant regresses.
//!
//! The linter is deliberately **std-only** — it is the gate the rest
//! of the workspace passes through, so it must build everywhere the
//! workspace builds, including fully offline.
//!
//! # Rules
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `unsafe-island` | `unsafe` only in `crates/serve/src/poll.rs` |
//! | `hot-path-lock-free` | no `Mutex`/`RwLock`/`.lock()` in hot-path scopes |
//! | `atomic-ordering-ledger` | every `Ordering::` site ledgered; no `SeqCst` on the hot path |
//! | `panic-free-request-path` | no `unwrap`/`expect`/`panic!`-family in request-dispatch modules |
//! | `justified-allow` | every `#[allow(...)]` carries a reason comment |
//! | `bin-only-printing` | `print!`-family only under `bin`/`examples`/`benches`/`tests` |
//! | `annotations` | every `// lint:` directive parses; regions balance |
//!
//! Matching is **token-level**, never textual: `"unsafe"` in a string
//! literal, `Mutex` in a comment, or `Ordering::SeqCst` in a raw
//! string are invisible to every rule.
//!
//! # The `// lint:` annotation grammar
//!
//! Annotations are line comments (plain `//`, or doc `///`/`//!`)
//! whose body starts with `lint:`. Four directives exist:
//!
//! ```text
//! // lint: hot-path
//! // lint: end-hot-path
//! // lint: allow-panic(<reason>)
//! // lint: allow-print(<reason>)
//! ```
//!
//! * `hot-path` / `end-hot-path` bracket a **region**: every line
//!   between the two markers (inclusive) is a hot-path scope in
//!   addition to the whole-file scopes named in [`rules::LintConfig`].
//!   Regions must balance — an unclosed or doubly-opened region is an
//!   `annotations` violation (an unclosed region still extends to end
//!   of file for checking, so the mistake cannot *weaken* the rule).
//! * `allow-panic(<reason>)` exempts panic-candidate sites on the
//!   annotation's own line **and the next line** — so both a trailing
//!   comment and a comment-above work:
//!
//!   ```text
//!   let v = table[i]; // lint: allow-panic(index bounded by caller)
//!
//!   // lint: allow-panic(startup only, before the serve loop starts)
//!   let listener = bind(addr).expect("bind");
//!   ```
//! * `allow-print(<reason>)` is the same shape for the printing rule.
//! * The `<reason>` is **required and non-empty** — an annotation that
//!   silences a rule without saying why is itself a violation.
//! * Unknown directives (`// lint: anything-else`) are violations:
//!   a typo like `allow-painc` must fail loudly, not silently
//!   deactivate.
//!
//! # The orderings ledger
//!
//! `crates/lint/orderings.ledger` holds one line per
//! `(file, symbol, ordering)` key:
//!
//! ```text
//! crates/serve/src/epoch.rs | publish | Release | pairs with Acquire loads in current_id
//! ```
//!
//! See [`ledger`] for the format, and run
//! `ftr-lint --suggest-ledger` to print template entries for any
//! unledgered sites.
//!
//! # Reports
//!
//! `ftr-lint --check --report LINT_REPORT.json` writes a
//! deterministic JSON report (per-rule `sites_checked` / `violations`,
//! ledger coverage counts) and exits nonzero if anything fired. See
//! [`report`].

#![forbid(unsafe_code)]

pub mod ledger;
pub mod lexer;
pub mod report;
pub mod rules;

pub use ledger::{Ledger, LedgerEntry, LedgerParseError};
pub use report::render;
pub use rules::{
    run_lint, run_lint_with_sites, LedgerStats, LintConfig, LintOutcome, OrderingSite, RuleStats,
    Violation, RULES,
};

//! Changing the network (Section 6): clique-augmenting the kernel's
//! concentrator.
//!
//! If the routing designer may add links, turning the kernel separator
//! `M` into a clique makes any two concentrator members adjacent, so
//! after at most `t` faults every surviving pair routes
//! `x → M → M → y` in at most 3 steps: a `(3, t)`-tolerant routing at
//! the price of at most `t(t+1)/2` new links. The paper asks (open
//! problem 2) whether `O(t)` added links suffice.

use ftr_graph::{connectivity, Graph, Node};

use crate::kernel::KernelRouting;
use crate::{Guarantee, Routing, RoutingError, TheoremId};

/// A kernel routing over a clique-augmented network.
///
/// # Example
///
/// ```
/// use ftr_core::{AugmentedKernelRouting, RouteTable};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::torus(3, 4)?; // κ = 4, t = 3
/// let aug = AugmentedKernelRouting::build(&g)?;
/// assert!(aug.added_edges().len() <= 3 * 4 / 2);
/// let s = aug.routing().surviving(&NodeSet::from_nodes(12, [0, 5, 7]));
/// assert!(s.diameter().expect("tolerates 3 faults") <= 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AugmentedKernelRouting {
    augmented: Graph,
    kernel: KernelRouting,
    added: Vec<(Node, Node)>,
    t: usize,
}

impl AugmentedKernelRouting {
    /// Builds the augmented-kernel routing: finds a minimum separator of
    /// `g`, adds the missing links to make it a clique, and builds the
    /// kernel routing on the augmented graph.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::InsufficientConnectivity`] if `g` is
    ///   disconnected.
    /// * [`RoutingError::PropertyNotSatisfied`] if `g` is complete (no
    ///   separator exists — and nothing to improve: the graph already
    ///   routes every pair directly).
    pub fn build(g: &Graph) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        let sep = connectivity::min_separator(g)
            .ok_or_else(|| RoutingError::property("complete graphs need no augmentation"))?;
        let members: Vec<Node> = sep.iter().collect();
        let mut augmented = g.clone();
        let mut added = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if augmented.add_edge(a, b)? {
                    added.push((a, b));
                }
            }
        }
        let kernel = KernelRouting::build_with_separator(&augmented, &sep, kappa)?;
        Ok(AugmentedKernelRouting {
            augmented,
            kernel,
            added,
            t: kappa - 1,
        })
    }

    /// The augmented network (original plus clique links inside `M`).
    pub fn augmented_graph(&self) -> &Graph {
        &self.augmented
    }

    /// The route table over the augmented network.
    pub fn routing(&self) -> &Routing {
        self.kernel.routing()
    }

    /// Consumes the construction, returning the augmented network and
    /// the owned route table over it.
    pub fn into_parts(self) -> (Graph, Routing) {
        (self.augmented, self.kernel.into_routing())
    }

    /// The separator that was turned into a clique.
    pub fn separator(&self) -> &[Node] {
        self.kernel.separator()
    }

    /// The links added by the augmentation (at most `t(t+1)/2`).
    pub fn added_edges(&self) -> &[(Node, Node)] {
        &self.added
    }

    /// The number of faults `t` the construction tolerates (relative to
    /// the *original* graph's connectivity).
    pub fn tolerated_faults(&self) -> usize {
        self.t
    }

    /// Section 6's guarantee: `(3, t)`-tolerance on the augmented
    /// network, with this table's exact costs.
    pub fn guarantee(&self) -> Guarantee {
        Guarantee {
            scheme: "augment",
            theorem: TheoremId::Section6Augment,
            diameter: 3,
            faults: self.t,
            routes: self.routing().route_count(),
            memory_bytes: self.routing().memory_bytes(),
            audited: false,
        }
    }

    /// The added-link budget the paper states: `t(t+1)/2`.
    pub fn link_budget(&self) -> usize {
        self.t * (self.t + 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_graph::Path;

    /// Reconstructs the direct edge routes the augmentation relies on;
    /// confirms the clique is fully routed.
    fn clique_paths(members: &[Node]) -> Vec<Path> {
        let mut paths = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                paths.push(Path::edge(a, b).expect("members are distinct"));
            }
        }
        paths
    }
    use crate::{verify_tolerance, FaultStrategy};
    use ftr_graph::gen;

    #[test]
    fn augmentation_respects_link_budget() {
        for g in [
            gen::cycle(8).unwrap(),
            gen::petersen(),
            gen::torus(3, 4).unwrap(),
            gen::harary(4, 14).unwrap(),
        ] {
            let aug = AugmentedKernelRouting::build(&g).unwrap();
            assert!(
                aug.added_edges().len() <= aug.link_budget(),
                "added {} > budget {}",
                aug.added_edges().len(),
                aug.link_budget()
            );
            aug.routing().validate(aug.augmented_graph()).unwrap();
        }
    }

    #[test]
    fn separator_is_a_clique_after_augmentation() {
        let g = gen::petersen();
        let aug = AugmentedKernelRouting::build(&g).unwrap();
        let m = aug.separator();
        for (i, &a) in m.iter().enumerate() {
            for &b in &m[i + 1..] {
                assert!(aug.augmented_graph().has_edge(a, b));
            }
        }
        assert_eq!(clique_paths(m).len(), m.len() * (m.len() - 1) / 2);
    }

    #[test]
    fn section_6_bound_exhaustive_on_petersen() {
        let g = gen::petersen(); // t = 2
        let aug = AugmentedKernelRouting::build(&g).unwrap();
        let report = verify_tolerance(aug.routing(), 2, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&aug.guarantee().claim()), "{report}");
    }

    #[test]
    fn section_6_bound_exhaustive_on_cycle() {
        let g = gen::cycle(10).unwrap(); // t = 1
        let aug = AugmentedKernelRouting::build(&g).unwrap();
        let report = verify_tolerance(aug.routing(), 1, FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&aug.guarantee().claim()), "{report}");
    }

    #[test]
    fn complete_graph_rejected() {
        let g = gen::complete(5).unwrap();
        assert!(matches!(
            AugmentedKernelRouting::build(&g),
            Err(RoutingError::PropertyNotSatisfied { .. })
        ));
    }
}

//! The planner: given a graph and a fault/diameter target, survey the
//! [`SchemeRegistry`], build every applicable candidate in parallel and
//! return the best [`BuiltRouting`].
//!
//! Ranking is by guarantee first, cost second: among candidates whose
//! [`Guarantee`] covers the requested fault budget (and meets the
//! diameter target, when one is given), the winner is the smallest
//! guaranteed diameter, ties broken by the smaller exact route count and
//! then by registry order. Candidate builds run data-parallel through
//! `ftr_core::par`; the ranking consumes them in registry order, so the
//! chosen winner is identical whatever the thread count.

use std::fmt;

use ftr_graph::Graph;

use crate::error::{Inapplicable, InapplicableReason};
use crate::par;
use crate::scheme::{BuiltRouting, Guarantee, SchemeParams, SchemeRegistry};
use crate::RoutingError;

/// What the caller needs from a routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannerRequest {
    /// Fault budget the guarantee must cover.
    pub faults: usize,
    /// Optional surviving-diameter target; candidates guaranteeing more
    /// are rejected (recorded as [`CandidateOutcome::OverDiameterTarget`]).
    pub diameter: Option<u32>,
    /// Restrict to single-route-per-pair schemes (required when the
    /// result must be servable as a [`crate::Routing`] snapshot).
    pub single_routes_only: bool,
    /// Skip candidates whose *estimated* route count exceeds this cap
    /// (guards against `O(n²κ)` multiroutings on large graphs).
    pub max_routes: Option<usize>,
}

impl PlannerRequest {
    /// A request for `faults` tolerated failures, no diameter target, no
    /// restrictions.
    pub fn tolerate(faults: usize) -> Self {
        PlannerRequest {
            faults,
            diameter: None,
            single_routes_only: false,
            max_routes: None,
        }
    }

    /// Adds a diameter target.
    pub fn within_diameter(mut self, d: u32) -> Self {
        self.diameter = Some(d);
        self
    }

    /// Restricts to single-route schemes.
    pub fn single_routes(mut self) -> Self {
        self.single_routes_only = true;
        self
    }

    /// Caps the estimated route count of considered candidates.
    pub fn max_routes(mut self, cap: usize) -> Self {
        self.max_routes = Some(cap);
        self
    }
}

/// What happened to one registry scheme during planning.
#[derive(Debug, Clone)]
pub enum CandidateOutcome {
    /// The scheme ruled itself out (or was filtered by the request).
    Inapplicable(Inapplicable),
    /// Applicable, but its guarantee exceeds the requested diameter
    /// target; not built.
    OverDiameterTarget {
        /// The guarantee the scheme offered.
        offered: Guarantee,
        /// The requested target it missed.
        target: u32,
    },
    /// Applicability held but the build itself failed (a construction
    /// bug — surfaced, never swallowed).
    BuildFailed(RoutingError),
    /// Built; the guarantee carries exact route/memory costs.
    Built(Guarantee),
}

/// One registry scheme's planning record.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Scheme name.
    pub scheme: &'static str,
    /// Outcome for this request.
    pub outcome: CandidateOutcome,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            CandidateOutcome::Inapplicable(i) => write!(f, "{i}"),
            CandidateOutcome::OverDiameterTarget { offered, target } => write!(
                f,
                "{}: guarantees diameter {} > target {target}",
                self.scheme, offered.diameter
            ),
            CandidateOutcome::BuildFailed(e) => write!(f, "{}: build failed: {e}", self.scheme),
            CandidateOutcome::Built(g) => write!(f, "{g} ({} routes)", g.routes),
        }
    }
}

/// The planner's result: the winning routing plus the full candidate
/// record (what was considered, built, or ruled out, and why).
#[derive(Debug)]
pub struct Plan {
    /// The best built routing.
    pub winner: BuiltRouting,
    /// Every registry scheme's outcome, in registry order.
    pub candidates: Vec<Candidate>,
}

/// Why no routing could be planned.
#[derive(Debug)]
pub struct PlanError {
    /// Every registry scheme's outcome, in registry order.
    pub candidates: Vec<Candidate>,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no applicable scheme")?;
        for c in &self.candidates {
            write!(f, "; {c}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PlanError {}

/// Surveys a [`SchemeRegistry`] and builds the best applicable scheme
/// for a request. See the module docs for the ranking rule.
pub struct Planner {
    registry: SchemeRegistry,
    threads: usize,
}

impl Planner {
    /// A planner over the standard registry, building candidates on the
    /// available cores.
    pub fn new() -> Self {
        Planner {
            registry: SchemeRegistry::standard(),
            threads: par::default_threads(),
        }
    }

    /// A planner over a custom registry.
    pub fn with_registry(registry: SchemeRegistry) -> Self {
        Planner {
            registry,
            threads: par::default_threads(),
        }
    }

    /// Overrides the candidate-build thread count. The planned winner is
    /// identical for every value (builds are deterministic and ranking
    /// consumes them in registry order); this only tunes wall-clock.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one build thread is required");
        self.threads = threads;
        self
    }

    /// The registry this planner consults.
    pub fn registry(&self) -> &SchemeRegistry {
        &self.registry
    }

    /// Applicability survey only — no tables are built. One entry per
    /// registry scheme, in registry order, with the guarantee it would
    /// offer for the request (costs are estimates).
    pub fn survey(
        &self,
        g: &Graph,
        request: &PlannerRequest,
    ) -> Vec<(&'static str, Result<Guarantee, Inapplicable>)> {
        let params = SchemeParams {
            faults: Some(request.faults),
            ..SchemeParams::default()
        };
        self.registry
            .iter()
            .map(|s| (s.name(), self.check(s, g, &params, request)))
            .collect()
    }

    /// One scheme's pre-build eligibility for a request.
    fn check(
        &self,
        scheme: &dyn crate::Scheme,
        g: &Graph,
        params: &SchemeParams,
        request: &PlannerRequest,
    ) -> Result<Guarantee, Inapplicable> {
        if request.single_routes_only && !scheme.single_route_table() {
            return Err(Inapplicable::property(
                scheme.name(),
                "request requires a single-route table",
            ));
        }
        let guarantee = scheme.applicability(g, params)?;
        if let Some(cap) = request.max_routes {
            if guarantee.routes > cap {
                return Err(Inapplicable {
                    scheme: scheme.name(),
                    reason: InapplicableReason::OverRouteBudget {
                        estimated: guarantee.routes,
                        budget: cap,
                    },
                });
            }
        }
        Ok(guarantee)
    }

    /// Enumerates applicable schemes, builds the eligible candidates in
    /// parallel, ranks them and returns the winner with the full
    /// candidate record.
    ///
    /// # Errors
    ///
    /// [`PlanError`] (carrying every scheme's outcome) when nothing
    /// applicable could be built.
    pub fn plan(&self, g: &Graph, request: &PlannerRequest) -> Result<Plan, PlanError> {
        let params = SchemeParams {
            faults: Some(request.faults),
            ..SchemeParams::default()
        };

        // Pre-build outcomes, one slot per registry scheme.
        enum Slot {
            Ruled(CandidateOutcome),
            Eligible,
        }
        let schemes: Vec<&dyn crate::Scheme> = self.registry.iter().collect();
        let mut slots = Vec::with_capacity(schemes.len());
        let mut eligible = Vec::new();
        for (i, scheme) in schemes.iter().enumerate() {
            match self.check(*scheme, g, &params, request) {
                Err(inap) => slots.push(Slot::Ruled(CandidateOutcome::Inapplicable(inap))),
                Ok(offered) => {
                    if let Some(target) = request.diameter {
                        if offered.diameter > target {
                            slots.push(Slot::Ruled(CandidateOutcome::OverDiameterTarget {
                                offered,
                                target,
                            }));
                            continue;
                        }
                    }
                    eligible.push(i);
                    slots.push(Slot::Eligible);
                }
            }
        }

        // Data-parallel candidate builds (each build is itself
        // internally parallel only through the same bounded pool, so
        // oversubscription stays mild).
        let mut builds: Vec<Option<Result<BuiltRouting, RoutingError>>> =
            par::ordered_map(eligible.len(), self.threads, |j| {
                Some(schemes[eligible[j]].build(g, &params))
            });

        // Rank: smallest guaranteed diameter, then exact route count,
        // then registry order.
        let mut winner: Option<(u32, usize, usize)> = None; // (d, routes, eligible idx)
        for (j, build) in builds.iter().enumerate() {
            if let Some(Ok(built)) = build {
                let key = (built.guarantee().diameter, built.guarantee().routes, j);
                if winner.is_none_or(|best| key < best) {
                    winner = Some(key);
                }
            }
        }

        let mut candidates = Vec::with_capacity(schemes.len());
        let mut winner_built = None;
        for (i, slot) in slots.into_iter().enumerate() {
            let outcome = match slot {
                Slot::Ruled(outcome) => outcome,
                Slot::Eligible => {
                    let j = eligible.iter().position(|&e| e == i).expect("tracked");
                    match builds[j].take().expect("each build consumed once") {
                        Err(e) => CandidateOutcome::BuildFailed(e),
                        Ok(built) => {
                            let exact = *built.guarantee();
                            if winner.map(|(_, _, w)| w) == Some(j) {
                                winner_built = Some(built);
                            }
                            CandidateOutcome::Built(exact)
                        }
                    }
                }
            };
            candidates.push(Candidate {
                scheme: schemes[i].name(),
                outcome,
            });
        }

        match winner_built {
            Some(winner) => Ok(Plan { winner, candidates }),
            None => Err(PlanError { candidates }),
        }
    }
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl fmt::Debug for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Planner")
            .field("registry", &self.registry)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultStrategy;
    use ftr_graph::gen;

    #[test]
    fn plan_on_petersen_prefers_the_tightest_bound() {
        // Petersen (t = 2): kernel offers Theorem 3's (max{2t,4}, 2) =
        // (4, 2); the multi scheme's default concentrator mode and the
        // augmentation both offer (3, 2), so the winner guarantees 3.
        let g = gen::petersen();
        let plan = Planner::new()
            .plan(&g, &PlannerRequest::tolerate(2))
            .unwrap();
        assert_eq!(plan.winner.guarantee().diameter, 3);
        assert_eq!(plan.candidates.len(), 7);

        // Restricted to single-route tables, augment's (3, t) wins
        // outright (the multi scheme is filtered).
        let plan = Planner::new()
            .plan(&g, &PlannerRequest::tolerate(2).single_routes())
            .unwrap();
        assert_eq!(plan.winner.scheme(), "augment");
        let report = plan.winner.verify(FaultStrategy::Exhaustive, 2);
        assert!(
            report.satisfies(&plan.winner.guarantee().claim()),
            "{report}"
        );
    }

    #[test]
    fn diameter_target_filters_candidates() {
        let g = gen::petersen();
        let plan = Planner::new()
            .plan(
                &g,
                &PlannerRequest::tolerate(2)
                    .single_routes()
                    .within_diameter(3),
            )
            .unwrap();
        assert_eq!(plan.winner.scheme(), "augment");
        assert!(plan
            .candidates
            .iter()
            .any(|c| matches!(c.outcome, CandidateOutcome::OverDiameterTarget { .. })));
    }

    #[test]
    fn impossible_request_reports_every_reason() {
        let g = gen::cycle(8).unwrap(); // t = 1
        let err = Planner::new()
            .plan(&g, &PlannerRequest::tolerate(5))
            .unwrap_err();
        assert_eq!(err.candidates.len(), 7);
        for c in &err.candidates {
            assert!(
                matches!(c.outcome, CandidateOutcome::Inapplicable(_)),
                "{c}"
            );
        }
        assert!(err.to_string().contains("no applicable scheme"));
    }

    #[test]
    fn winner_is_deterministic_across_thread_counts() {
        let g = gen::cycle(12).unwrap();
        let request = PlannerRequest::tolerate(1);
        let solo = Planner::new().threads(1).plan(&g, &request).unwrap();
        for threads in [2, 4, 8] {
            let multi = Planner::new().threads(threads).plan(&g, &request).unwrap();
            assert_eq!(solo.winner.scheme(), multi.winner.scheme());
            assert_eq!(solo.winner.spec(), multi.winner.spec());
            assert_eq!(solo.winner.guarantee(), multi.winner.guarantee());
            assert_eq!(solo.candidates.len(), multi.candidates.len());
        }
    }

    #[test]
    fn max_routes_rules_out_expensive_candidates() {
        let g = gen::petersen();
        let survey = Planner::new().survey(&g, &PlannerRequest::tolerate(2).max_routes(50));
        let multi = survey.iter().find(|(name, _)| *name == "multi").unwrap();
        assert!(matches!(
            &multi.1,
            Err(Inapplicable {
                reason: InapplicableReason::OverRouteBudget { .. },
                ..
            })
        ));
    }

    #[test]
    fn survey_matches_plan_applicability() {
        let g = gen::cycle(45).unwrap(); // tricircular territory
        let request = PlannerRequest::tolerate(1);
        let survey = Planner::new().survey(&g, &request);
        let plan = Planner::new().plan(&g, &request).unwrap();
        for ((name, check), candidate) in survey.iter().zip(&plan.candidates) {
            assert_eq!(*name, candidate.scheme);
            match (&check, &candidate.outcome) {
                (Ok(_), CandidateOutcome::Built(_)) => {}
                (Err(a), CandidateOutcome::Inapplicable(b)) => assert_eq!(&a, &b),
                other => panic!("survey/plan disagree for {name}: {other:?}"),
            }
        }
        // On C45 the tri-circular (4, 1) beats circular's (6, 1); the
        // bipolar unidirectional routing also offers 4 but costs more
        // routes than... measure instead of guessing: the winner must
        // guarantee diameter <= 4.
        assert!(plan.winner.guarantee().diameter <= 4);
    }
}

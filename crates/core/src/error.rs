use std::error::Error;
use std::fmt;

use ftr_graph::{GraphError, Node};

/// Why a construction scheme cannot be applied to a graph, with the
/// scheme's name attached — the uniform "not for this network" half of
/// the error taxonomy. [`RoutingError`] remains the "the build itself
/// failed" half; [`Inapplicable::from_build_error`] classifies between
/// the two.
///
/// Every consumer (the planner, the sim sweep rows, the serve `SCHEMES`
/// verb) renders this through its one [`fmt::Display`] impl, so the
/// reason a scheme was skipped reads identically everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inapplicable {
    /// Name of the scheme that was ruled out (e.g. `"circular"`).
    pub scheme: &'static str,
    /// The structural reason.
    pub reason: InapplicableReason,
}

/// The structural reason a scheme was ruled out.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InapplicableReason {
    /// The graph's vertex connectivity is below what the construction
    /// requires (`0` found means disconnected).
    InsufficientConnectivity {
        /// Disjoint paths / connectivity required.
        needed: usize,
        /// Connectivity found.
        found: usize,
    },
    /// No concentrator (neighborhood set, separator, …) of the required
    /// size exists.
    ConcentratorTooSmall {
        /// Members required.
        needed: usize,
        /// Members found.
        found: usize,
    },
    /// A structural property the construction needs does not hold
    /// (two-trees roots, separating set, exact hypercube topology, …).
    MissingProperty {
        /// The violated requirement, human-readable.
        what: String,
    },
    /// The requested fault budget exceeds what the construction can
    /// promise on this graph.
    FaultBudgetExceeded {
        /// Faults the construction tolerates here.
        tolerates: usize,
        /// Faults requested.
        requested: usize,
    },
    /// The construction's estimated route count exceeds the planner's
    /// configured route budget.
    OverRouteBudget {
        /// Estimated ordered-pair route count.
        estimated: usize,
        /// The configured cap.
        budget: usize,
    },
}

impl Inapplicable {
    /// An [`InapplicableReason::MissingProperty`] for `scheme`.
    pub fn property(scheme: &'static str, what: impl Into<String>) -> Self {
        Inapplicable {
            scheme,
            reason: InapplicableReason::MissingProperty { what: what.into() },
        }
    }

    /// Classifies a build error: precondition failures (connectivity,
    /// concentrator size, missing properties) become the corresponding
    /// [`Inapplicable`] tagged with `scheme`; genuine construction bugs
    /// (route conflicts, invalid paths) are handed back unchanged.
    pub fn from_build_error(scheme: &'static str, e: RoutingError) -> Result<Self, RoutingError> {
        let reason = match e {
            RoutingError::InsufficientConnectivity { needed, found } => {
                InapplicableReason::InsufficientConnectivity { needed, found }
            }
            RoutingError::ConcentratorTooSmall { needed, found } => {
                InapplicableReason::ConcentratorTooSmall { needed, found }
            }
            RoutingError::PropertyNotSatisfied { what } => {
                InapplicableReason::MissingProperty { what }
            }
            RoutingError::Inapplicable(i) => return Ok(i),
            other => return Err(other),
        };
        Ok(Inapplicable { scheme, reason })
    }
}

impl fmt::Display for Inapplicable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} inapplicable: ", self.scheme)?;
        match &self.reason {
            InapplicableReason::InsufficientConnectivity { needed, found } => {
                write!(f, "needs connectivity {needed}, graph has {found}")
            }
            InapplicableReason::ConcentratorTooSmall { needed, found } => {
                write!(f, "concentrator needs {needed} members, found {found}")
            }
            InapplicableReason::MissingProperty { what } => write!(f, "{what}"),
            InapplicableReason::FaultBudgetExceeded {
                tolerates,
                requested,
            } => write!(f, "tolerates {tolerates} faults, {requested} requested"),
            InapplicableReason::OverRouteBudget { estimated, budget } => {
                write!(f, "~{estimated} routes exceed the {budget}-route budget")
            }
        }
    }
}

impl Error for Inapplicable {}

/// Errors produced while building or validating routings.
///
/// # Example
///
/// ```
/// use ftr_core::{Routing, RoutingError, RoutingKind};
/// use ftr_graph::Path;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = Routing::new(4, RoutingKind::Unidirectional);
/// r.insert(Path::new(vec![0, 1, 2])?)?;
/// let err = r.insert(Path::new(vec![0, 3, 2])?).unwrap_err();
/// assert!(matches!(err, RoutingError::RouteConflict { src: 0, dst: 2 }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// A second, different route was inserted for an ordered pair. The
    /// paper's model is "miserly": at most one route per ordered pair.
    RouteConflict {
        /// Source of the conflicting pair.
        src: Node,
        /// Destination of the conflicting pair.
        dst: Node,
    },
    /// A construction needed more node-disjoint paths than the graph
    /// provides (its connectivity is below the required `t + 1`).
    InsufficientConnectivity {
        /// Disjoint paths required.
        needed: usize,
        /// Disjoint paths found.
        found: usize,
    },
    /// The concentrator (neighborhood set, separator, ...) found in the
    /// graph is smaller than the construction requires.
    ConcentratorTooSmall {
        /// Members required (e.g. `6t + 9` for the tri-circular routing).
        needed: usize,
        /// Members found.
        found: usize,
    },
    /// The graph lacks a structural property the construction requires
    /// (e.g. the two-trees property for the bipolar routings).
    PropertyNotSatisfied {
        /// The violated requirement, human-readable.
        what: String,
    },
    /// A scheme's precondition failed (the scheme-API form of the
    /// precondition variants above, with the scheme name attached).
    Inapplicable(Inapplicable),
}

impl RoutingError {
    pub(crate) fn property(what: impl Into<String>) -> Self {
        RoutingError::PropertyNotSatisfied { what: what.into() }
    }
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Graph(e) => write!(f, "graph error: {e}"),
            RoutingError::RouteConflict { src, dst } => {
                write!(f, "conflicting route for pair ({src}, {dst})")
            }
            RoutingError::InsufficientConnectivity { needed, found } => write!(
                f,
                "needed {needed} node-disjoint paths but the graph provides {found}"
            ),
            RoutingError::ConcentratorTooSmall { needed, found } => write!(
                f,
                "concentrator needs {needed} members but only {found} were found"
            ),
            RoutingError::PropertyNotSatisfied { what } => {
                write!(f, "required property not satisfied: {what}")
            }
            RoutingError::Inapplicable(i) => write!(f, "{i}"),
        }
    }
}

impl Error for RoutingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RoutingError::Graph(e) => Some(e),
            RoutingError::Inapplicable(i) => Some(i),
            _ => None,
        }
    }
}

impl From<GraphError> for RoutingError {
    fn from(e: GraphError) -> Self {
        RoutingError::Graph(e)
    }
}

impl From<Inapplicable> for RoutingError {
    fn from(i: Inapplicable) -> Self {
        RoutingError::Inapplicable(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RoutingError::RouteConflict { src: 1, dst: 2 };
        assert_eq!(e.to_string(), "conflicting route for pair (1, 2)");
        let e = RoutingError::InsufficientConnectivity {
            needed: 4,
            found: 2,
        };
        assert!(e.to_string().contains("4") && e.to_string().contains("2"));
        let e = RoutingError::ConcentratorTooSmall {
            needed: 9,
            found: 3,
        };
        assert!(e.to_string().contains("9"));
        let e = RoutingError::property("two-trees roots not found");
        assert!(e.to_string().contains("two-trees"));
    }

    #[test]
    fn graph_error_converts_and_chains() {
        let ge = GraphError::EmptyPath;
        let re: RoutingError = ge.clone().into();
        assert_eq!(re, RoutingError::Graph(ge));
        assert!(Error::source(&re).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RoutingError>();
    }
}

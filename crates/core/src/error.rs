use std::error::Error;
use std::fmt;

use ftr_graph::{GraphError, Node};

/// Errors produced while building or validating routings.
///
/// # Example
///
/// ```
/// use ftr_core::{Routing, RoutingError, RoutingKind};
/// use ftr_graph::Path;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = Routing::new(4, RoutingKind::Unidirectional);
/// r.insert(Path::new(vec![0, 1, 2])?)?;
/// let err = r.insert(Path::new(vec![0, 3, 2])?).unwrap_err();
/// assert!(matches!(err, RoutingError::RouteConflict { src: 0, dst: 2 }));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// A second, different route was inserted for an ordered pair. The
    /// paper's model is "miserly": at most one route per ordered pair.
    RouteConflict {
        /// Source of the conflicting pair.
        src: Node,
        /// Destination of the conflicting pair.
        dst: Node,
    },
    /// A construction needed more node-disjoint paths than the graph
    /// provides (its connectivity is below the required `t + 1`).
    InsufficientConnectivity {
        /// Disjoint paths required.
        needed: usize,
        /// Disjoint paths found.
        found: usize,
    },
    /// The concentrator (neighborhood set, separator, ...) found in the
    /// graph is smaller than the construction requires.
    ConcentratorTooSmall {
        /// Members required (e.g. `6t + 9` for the tri-circular routing).
        needed: usize,
        /// Members found.
        found: usize,
    },
    /// The graph lacks a structural property the construction requires
    /// (e.g. the two-trees property for the bipolar routings).
    PropertyNotSatisfied {
        /// The violated requirement, human-readable.
        what: String,
    },
}

impl RoutingError {
    pub(crate) fn property(what: impl Into<String>) -> Self {
        RoutingError::PropertyNotSatisfied { what: what.into() }
    }
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::Graph(e) => write!(f, "graph error: {e}"),
            RoutingError::RouteConflict { src, dst } => {
                write!(f, "conflicting route for pair ({src}, {dst})")
            }
            RoutingError::InsufficientConnectivity { needed, found } => write!(
                f,
                "needed {needed} node-disjoint paths but the graph provides {found}"
            ),
            RoutingError::ConcentratorTooSmall { needed, found } => write!(
                f,
                "concentrator needs {needed} members but only {found} were found"
            ),
            RoutingError::PropertyNotSatisfied { what } => {
                write!(f, "required property not satisfied: {what}")
            }
        }
    }
}

impl Error for RoutingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RoutingError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RoutingError {
    fn from(e: GraphError) -> Self {
        RoutingError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = RoutingError::RouteConflict { src: 1, dst: 2 };
        assert_eq!(e.to_string(), "conflicting route for pair (1, 2)");
        let e = RoutingError::InsufficientConnectivity {
            needed: 4,
            found: 2,
        };
        assert!(e.to_string().contains("4") && e.to_string().contains("2"));
        let e = RoutingError::ConcentratorTooSmall {
            needed: 9,
            found: 3,
        };
        assert!(e.to_string().contains("9"));
        let e = RoutingError::property("two-trees roots not found");
        assert!(e.to_string().contains("two-trees"));
    }

    #[test]
    fn graph_error_converts_and_chains() {
        let ge = GraphError::EmptyPath;
        let re: RoutingError = ge.clone().into();
        assert_eq!(re, RoutingError::Graph(ge));
        assert!(Error::source(&re).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RoutingError>();
    }
}

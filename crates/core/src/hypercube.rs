//! The hypercube baseline quoted in the introduction.
//!
//! Dolev et al. (1984) show that the `d`-dimensional hypercube admits a
//! bidirectional routing with surviving diameter 3 and a unidirectional
//! routing with surviving diameter 2 (for fewer than `d` faults), and
//! *conjecture* that constant-diameter routings exist for every graph —
//! the conjecture this paper partially confirms.
//!
//! Their hypercube construction is not reproduced in this paper, so the
//! baseline implemented here is the canonical **bit-fixing (e-cube)
//! routing**: the route from `x` to `y` corrects the differing address
//! bits in ascending order. Experiment E14 measures its worst surviving
//! diameter next to the quoted bounds.

use ftr_graph::{gen, Graph, Node, Path};

use crate::par;
use crate::{Guarantee, Routing, RoutingError, RoutingKind, TheoremId, ToleranceClaim};

/// A hypercube together with its bit-fixing routing.
///
/// # Example
///
/// ```
/// use ftr_core::{HypercubeRouting, RouteTable, RoutingKind};
/// use ftr_graph::NodeSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let hc = HypercubeRouting::build(3, RoutingKind::Unidirectional)?;
/// let route = hc.routing().route(0b000, 0b101).unwrap();
/// assert_eq!(route.nodes(), vec![0b000, 0b001, 0b101]); // ascending bits
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HypercubeRouting {
    graph: Graph,
    routing: Routing,
    dim: usize,
}

impl HypercubeRouting {
    /// Builds `Q_dim` and its bit-fixing routing.
    ///
    /// For the bidirectional kind, the path from the smaller address is
    /// the ascending bit-fixing path and the reverse direction reuses it
    /// (so only one direction is "canonical" bit-fixing).
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::Graph`] if `dim` is 0 or large enough to
    /// exhaust memory (`dim > 20`, via the generator's validation).
    pub fn build(dim: usize, kind: RoutingKind) -> Result<Self, RoutingError> {
        let graph = gen::hypercube(dim)?;
        let n = graph.node_count();
        let mut routing = Routing::new(n, kind);
        // Per-source route derivation in parallel; insertion is
        // sequential in source order.
        let batches = par::ordered_map(n, par::default_threads(), |x| {
            let x = x as Node;
            (0..n as Node)
                .filter(|&y| x != y && (kind == RoutingKind::Unidirectional || x < y))
                .map(|y| bit_fixing_path(x, y))
                .collect::<Vec<_>>()
        });
        for batch in batches {
            for p in batch {
                routing.insert(p)?;
            }
        }
        routing.freeze();
        Ok(HypercubeRouting {
            graph,
            routing,
            dim,
        })
    }

    /// The hypercube graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The bit-fixing route table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Consumes the construction, returning the owned route table.
    pub fn into_routing(self) -> Routing {
        self.routing
    }

    /// The dimension `d` (connectivity of `Q_d`, so `t = d - 1`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of faults `t = d - 1` the quoted bounds refer to.
    pub fn tolerated_faults(&self) -> usize {
        self.dim - 1
    }

    /// The bound *quoted from Dolev et al.* for this routing kind:
    /// `(3, d-1)` bidirectional, `(2, d-1)` unidirectional.
    ///
    /// Note this is the bound of *their* (unpublished here)
    /// construction; bit-fixing is a stand-in baseline, and experiment
    /// E14 reports how close it comes. Contrast with
    /// [`HypercubeRouting::guarantee`], which is the bound bit-fixing
    /// itself provably meets.
    pub fn quoted_bound(&self) -> ToleranceClaim {
        ToleranceClaim {
            diameter: match self.routing.kind() {
                RoutingKind::Bidirectional => 3,
                RoutingKind::Unidirectional => 2,
            },
            faults: self.dim - 1,
        }
    }

    /// The guarantee bit-fixing itself provides: `(d + 1, d − 1)`.
    /// Every edge of `Q_d` is a bit-fixing route, so the surviving route
    /// graph contains the faulted hypercube, whose diameter under at
    /// most `d − 1` node faults is at most `d + 1` (the hypercube
    /// fault-diameter bound). The quoted `(3, d−1)` / `(2, d−1)` bounds
    /// belong to Dolev et al.'s unpublished construction, not to this
    /// baseline — see [`HypercubeRouting::quoted_bound`].
    pub fn guarantee(&self) -> Guarantee {
        Guarantee {
            scheme: "hypercube",
            theorem: TheoremId::FaultDiameter,
            diameter: self.dim as u32 + 1,
            faults: self.dim - 1,
            routes: self.routing.route_count(),
            memory_bytes: self.routing.memory_bytes(),
            audited: false,
        }
    }
}

/// The ascending bit-fixing path from `x` to `y` in the hypercube.
fn bit_fixing_path(x: Node, y: Node) -> Path {
    let mut nodes = vec![x];
    let mut cur = x;
    let mut diff = x ^ y;
    while diff != 0 {
        let bit = diff & diff.wrapping_neg(); // lowest set bit
        cur ^= bit;
        nodes.push(cur);
        diff ^= bit;
    }
    Path::new(nodes).expect("bit fixing visits distinct addresses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_tolerance, FaultStrategy, RouteTable};
    use ftr_graph::NodeSet;

    #[test]
    fn bit_fixing_paths_are_shortest() {
        let hc = HypercubeRouting::build(4, RoutingKind::Unidirectional).unwrap();
        hc.routing().validate(hc.graph()).unwrap();
        for x in 0..16u32 {
            for y in 0..16u32 {
                if x != y {
                    let route = hc.routing().route(x, y).unwrap();
                    assert_eq!(route.len() as u32, (x ^ y).count_ones());
                }
            }
        }
    }

    #[test]
    fn bidirectional_shares_paths() {
        let hc = HypercubeRouting::build(3, RoutingKind::Bidirectional).unwrap();
        hc.routing().validate(hc.graph()).unwrap();
        let fwd = hc.routing().route(1, 6).unwrap().nodes();
        let mut bwd = hc.routing().route(6, 1).unwrap().nodes();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn no_fault_diameter_is_one() {
        let hc = HypercubeRouting::build(3, RoutingKind::Unidirectional).unwrap();
        let s = hc.routing().surviving(&NodeSet::new(8));
        assert_eq!(s.diameter(), Some(1), "every pair has a route");
    }

    #[test]
    fn measured_bound_under_single_fault() {
        // Q3 with 1 fault: bit-fixing survives with small diameter.
        let hc = HypercubeRouting::build(3, RoutingKind::Bidirectional).unwrap();
        let report = verify_tolerance(hc.routing(), 1, FaultStrategy::Exhaustive, 2);
        let d = report.worst_diameter.expect("Q3 survives one fault");
        assert!(
            d <= 3,
            "bit-fixing on Q3 stays within the quoted bound: {d}"
        );
    }

    #[test]
    fn exhaustive_measurement_up_to_t_faults_q3() {
        // t = 2 faults on Q3: measure, do not assume. Bit-fixing is a
        // stand-in for Dolev et al.'s routing; E14 reports this number.
        let hc = HypercubeRouting::build(3, RoutingKind::Bidirectional).unwrap();
        let report = verify_tolerance(hc.routing(), 2, FaultStrategy::Exhaustive, 4);
        // The surviving graph stays connected (Q3 is 3-connected).
        assert!(report.worst_diameter.is_some());
    }

    #[test]
    fn dim_zero_rejected() {
        assert!(HypercubeRouting::build(0, RoutingKind::Unidirectional).is_err());
    }
}

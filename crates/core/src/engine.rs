//! The bitset-compiled surviving-graph engine.
//!
//! The `(d, f)`-tolerance verifier evaluates the same routing under
//! thousands-to-millions of fault sets. The route-walk implementations
//! ([`Routing`], [`MultiRouting`]) re-walk every route and rebuild an
//! adjacency-list [`ftr_graph::DiGraph`] per fault set; this module
//! compiles a routing **once** into a mask form under which each
//! evaluation is word-level bit arithmetic:
//!
//! * every route slot stores its **interior fault mask** (a bitset of
//!   the nodes whose failure kills the route — endpoints are handled by
//!   the alive-mask of the BFS, since a faulty endpoint removes the node
//!   itself), so "does fault set `F` kill this route" is one
//!   [`NodeSet::intersects`] word scan;
//! * an **inverted index** `node → route slots through it` lets the
//!   incremental [`FaultCursor`] maintain per-slot kill counts under
//!   single-fault toggles, touching only the routes through the toggled
//!   node — the exhaustive verifier's depth-first enumeration and the
//!   adversarial hill climber both toggle one fault at a time;
//! * the current surviving route graph lives in a [`BitMatrix`], whose
//!   all-pairs diameter is measured by row-OR frontier expansion with
//!   early exit on disconnection.
//!
//! The route-walk path remains the reference implementation; an
//! equivalence property test (`tests/engine_equivalence.rs`) checks the
//! two produce arc-for-arc identical surviving graphs.

use ftr_graph::{BfsScratch, BitMatrix, Node, NodeSet};

use crate::surviving::{FaultCursor, SurvivingGraph};
use crate::{MultiRouting, RouteTable, Routing};

/// Reusable per-thread state for [`CompiledRoutes`]'s batched
/// fault-set evaluation: a live route matrix kept synchronized with the
/// engine's fault-free base via clear/restore lists (never re-copied
/// per set), generation-stamped candidate-pair marks, and the BFS
/// scratch buffers.
struct BatchScratch {
    engine_id: Option<u64>,
    live: BitMatrix,
    pair_stamp: Vec<u64>,
    generation: u64,
    bfs: BfsScratch,
    dead: Vec<(Node, Node)>,
}

impl BatchScratch {
    fn new() -> Self {
        BatchScratch {
            engine_id: None,
            live: BitMatrix::new(0),
            pair_stamp: Vec::new(),
            generation: 0,
            bfs: BfsScratch::new(),
            dead: Vec::new(),
        }
    }

    /// Re-binds the scratch to `engine`, resetting the live matrix to
    /// the fault-free base when the engine changed (or when a panic
    /// unwound mid-evaluation and left arcs cleared).
    fn sync(&mut self, engine: &CompiledRoutes) {
        if self.engine_id != Some(engine.build_id) || !self.dead.is_empty() {
            self.engine_id = Some(engine.build_id);
            self.live.copy_from(&engine.base);
            self.pair_stamp.clear();
            self.pair_stamp.resize(engine.pair_count(), 0);
            self.generation = 0;
            self.dead.clear();
        }
    }
}

/// A routing compiled to per-route fault masks, an inverted node→routes
/// index and a bit-matrix route graph.
///
/// Build one with [`Compile::compile`] (or the `from_*` constructors)
/// and hand it to [`crate::verify_tolerance`] exactly like the original
/// table — `CompiledRoutes` implements [`RouteTable`], overriding the
/// evaluation paths with the mask-based fast versions.
///
/// # Example
///
/// ```
/// use ftr_core::{verify_tolerance, Compile, FaultStrategy, KernelRouting};
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let kernel = KernelRouting::build(&g)?;
/// let engine = kernel.routing().compile();
/// let fast = verify_tolerance(&engine, 2, FaultStrategy::Exhaustive, 2);
/// let slow = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 2);
/// assert_eq!(fast.worst_diameter, slow.worst_diameter);
/// assert_eq!(fast.sets_checked, slow.sets_checked);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledRoutes {
    /// Process-unique identity of this compilation (shared by clones,
    /// which have identical layout); lets [`EpochState`] verify it is
    /// being driven by the engine it was created from.
    build_id: u64,
    n: usize,
    /// Words per fault mask (`n.div_ceil(64)`).
    stride: usize,
    /// Routed ordered pairs, sorted for determinism.
    pairs: Vec<(Node, Node)>,
    /// Prefix offsets into the slot arrays, one entry per pair plus a
    /// trailing total: pair `p` owns slots `pair_slots[p]..pair_slots[p+1]`.
    pair_slots: Vec<u32>,
    /// Interior fault masks, `stride` words per slot.
    masks: Vec<u64>,
    /// Owning pair of each slot.
    slot_pair: Vec<u32>,
    /// Prefix offsets into `index`, one entry per node plus a trailing
    /// total.
    index_off: Vec<u32>,
    /// Inverted index: for each node, the slots whose interior contains
    /// it.
    index: Vec<u32>,
    /// The fault-free surviving route graph (an arc per routed pair).
    base: BitMatrix,
}

impl CompiledRoutes {
    /// Compiles a single-route-per-pair routing.
    ///
    /// Masks are built by streaming the borrowed route slices straight
    /// into the builder — for a frozen [`Routing`] that is one linear
    /// pass over the CSR arena with **zero per-route allocation** (an
    /// interior fault mask is orientation-independent, so the
    /// storage-order slice suffices). `routes()` iterates in ascending
    /// `(src, dst)` order in both the builder and frozen states, so the
    /// compilation is deterministic without a sort here.
    pub fn from_routing(routing: &Routing) -> Self {
        let mut b = MaskBuilder::new(routing.node_count(), routing.route_count());
        let mut prev: Option<(Node, Node)> = None;
        for (s, d, view) in routing.routes() {
            debug_assert!(prev < Some((s, d)), "routes() iterates in sorted order");
            prev = Some((s, d));
            b.begin_pair(s, d);
            b.push_slot(s, d, view.stored_nodes());
            b.end_pair();
        }
        b.finish()
    }

    /// Compiles a multirouting; an arc survives while *any* route of its
    /// bundle does, so a pair contributes one slot per parallel route.
    pub fn from_multirouting(multi: &MultiRouting) -> Self {
        let n = multi.node_count();
        let mut collected: Vec<(Node, Node, Vec<crate::RouteView<'_>>)> =
            multi.route_bundles().collect();
        collected.sort_unstable_by_key(|&(s, d, _)| (s, d));
        let mut b = MaskBuilder::new(n, collected.len());
        for (s, d, views) in collected {
            b.begin_pair(s, d);
            for view in views {
                b.push_slot(s, d, view.stored_nodes());
            }
            b.end_pair();
        }
        b.finish()
    }

    fn finish_from(n: usize, parts: MaskBuilder) -> Self {
        let MaskBuilder {
            stride,
            pairs,
            pair_slots,
            masks,
            slot_pair,
            base,
            ..
        } = parts;
        // Inverted index by counting sort: node -> slots through it.
        let mut counts = vec![0u32; n + 1];
        for slot in 0..slot_pair.len() {
            for v in Self::mask_nodes(&masks[slot * stride..(slot + 1) * stride]) {
                counts[v as usize] += 1;
            }
        }
        let mut index_off = vec![0u32; n + 1];
        for v in 0..n {
            index_off[v + 1] = index_off[v] + counts[v];
        }
        let mut cursor = index_off.clone();
        let mut index = vec![0u32; index_off[n] as usize];
        for slot in 0..slot_pair.len() {
            for v in Self::mask_nodes(&masks[slot * stride..(slot + 1) * stride]) {
                index[cursor[v as usize] as usize] = slot as u32;
                cursor[v as usize] += 1;
            }
        }

        static BUILD_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        CompiledRoutes {
            build_id: BUILD_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            n,
            stride,
            pairs,
            pair_slots,
            masks,
            slot_pair,
            index_off,
            index,
            base,
        }
    }

    fn mask_nodes(mask: &[u64]) -> impl Iterator<Item = Node> + '_ {
        mask.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&bits| {
                let rest = bits & (bits - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |bits| (wi * 64) as Node + bits.trailing_zeros())
        })
    }

    /// Number of routed ordered pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Total route slots (pairs for a [`Routing`], parallel routes
    /// summed for a [`MultiRouting`]).
    pub fn slot_count(&self) -> usize {
        self.slot_pair.len()
    }

    /// The routed ordered pairs, ascending by `(src, dst)` — pair `p` of
    /// this slice owns the slots of [`CompiledRoutes::pair_slot_range`].
    pub fn pairs(&self) -> &[(Node, Node)] {
        &self.pairs
    }

    /// The slot range owned by pair `p` (see [`CompiledRoutes::pairs`]).
    pub fn pair_slot_range(&self, p: usize) -> std::ops::Range<usize> {
        self.slots_of(p)
    }

    /// How many route slots pass *through* `v` (interior only, endpoints
    /// excluded) — one inverted-index row length. This is the
    /// route-coverage impact score the adversarial searcher seeds with:
    /// failing a high-impact node kills the most routes at once.
    pub fn routes_through(&self, v: Node) -> usize {
        let v = v as usize;
        assert!(v < self.n, "node {v} out of range for {} nodes", self.n);
        (self.index_off[v + 1] - self.index_off[v]) as usize
    }

    /// The interior nodes of one route slot (the nodes whose failure
    /// kills it), in ascending order.
    pub fn slot_interior(&self, slot: usize) -> impl Iterator<Item = Node> + '_ {
        Self::mask_nodes(&self.masks[slot * self.stride..(slot + 1) * self.stride])
    }

    /// The slots owned by pair `p`.
    fn slots_of(&self, p: usize) -> std::ops::Range<usize> {
        self.pair_slots[p] as usize..self.pair_slots[p + 1] as usize
    }

    /// Returns `true` if the slot's route avoids every faulty node —
    /// one word-level scan of its interior mask (the same primitive as
    /// [`NodeSet::intersects`]).
    fn slot_survives(&self, slot: usize, fault_words: &[u64]) -> bool {
        !ftr_graph::words_intersect(
            &self.masks[slot * self.stride..(slot + 1) * self.stride],
            fault_words,
        )
    }

    fn assert_capacity(&self, faults: &NodeSet) {
        assert_eq!(
            faults.capacity(),
            self.n,
            "fault set capacity must equal the routing's node count"
        );
    }

    /// One batched evaluation against a synchronized [`BatchScratch`]:
    /// walk the inverted index from each faulty node to the *candidate*
    /// pairs (only routes through a faulty node can die), clear the arcs
    /// of pairs whose every slot is killed, measure, then restore the
    /// cleared arcs. Cost is `O(routes through F)` plus the BFS — the
    /// base matrix is never re-copied.
    fn batch_eval_one(&self, faults: &NodeSet, scratch: &mut BatchScratch) -> Option<u32> {
        let words = faults.words();
        scratch.generation += 1;
        let generation = scratch.generation;
        debug_assert!(scratch.dead.is_empty());
        for v in faults.iter() {
            let range =
                self.index_off[v as usize] as usize..self.index_off[v as usize + 1] as usize;
            for &slot in &self.index[range] {
                let p = self.slot_pair[slot as usize] as usize;
                if scratch.pair_stamp[p] == generation {
                    continue;
                }
                scratch.pair_stamp[p] = generation;
                if !self.slots_of(p).any(|s| self.slot_survives(s, words)) {
                    let (s, d) = self.pairs[p];
                    scratch.live.clear(s, d);
                    scratch.dead.push((s, d));
                }
            }
        }
        let result = scratch.live.diameter_with(Some(faults), &mut scratch.bfs);
        for &(s, d) in &scratch.dead {
            scratch.live.set(s, d);
        }
        scratch.dead.clear();
        result
    }
}

/// Accumulates the per-pair slot arrays of a compilation; sources are
/// pushed in ascending `(src, dst)` order by the `from_*` constructors
/// and [`CompiledRoutes::finish_from`] derives the inverted index.
struct MaskBuilder {
    n: usize,
    stride: usize,
    pairs: Vec<(Node, Node)>,
    pair_slots: Vec<u32>,
    masks: Vec<u64>,
    slot_pair: Vec<u32>,
    base: BitMatrix,
}

impl MaskBuilder {
    fn new(n: usize, pair_hint: usize) -> Self {
        let stride = n.div_ceil(64);
        let mut pair_slots = Vec::with_capacity(pair_hint + 1);
        pair_slots.push(0u32);
        MaskBuilder {
            n,
            stride,
            pairs: Vec::with_capacity(pair_hint),
            pair_slots,
            masks: Vec::with_capacity(pair_hint * stride),
            slot_pair: Vec::with_capacity(pair_hint),
            base: BitMatrix::new(n),
        }
    }

    fn begin_pair(&mut self, s: Node, d: Node) {
        self.pairs.push((s, d));
        self.base.set(s, d);
    }

    /// Adds one route slot for the current pair, masking the interior
    /// nodes of `nodes` (endpoints are handled by the BFS alive-mask).
    fn push_slot(&mut self, s: Node, d: Node, nodes: &[Node]) {
        let start = self.masks.len();
        self.masks.resize(start + self.stride, 0);
        for &v in nodes {
            if v != s && v != d {
                self.masks[start + v as usize / 64] |= 1u64 << (v % 64);
            }
        }
        self.slot_pair.push((self.pairs.len() - 1) as u32);
    }

    fn end_pair(&mut self) {
        self.pair_slots.push(self.slot_pair.len() as u32);
    }

    fn finish(self) -> CompiledRoutes {
        CompiledRoutes::finish_from(self.n, self)
    }
}

impl RouteTable for CompiledRoutes {
    fn node_count(&self) -> usize {
        self.n
    }

    fn surviving(&self, faults: &NodeSet) -> SurvivingGraph {
        self.assert_capacity(faults);
        let words = faults.words();
        SurvivingGraph::from_routes(
            self.n,
            faults,
            self.pairs.iter().enumerate().map(|(p, &(s, d))| {
                let survives = self.slots_of(p).any(|slot| self.slot_survives(slot, words));
                (s, d, survives)
            }),
        )
    }

    fn surviving_diameter(&self, faults: &NodeSet) -> Option<u32> {
        self.assert_capacity(faults);
        let words = faults.words();
        // One scratch matrix per thread, overwritten from `base` per
        // fault set — the random-sampling verifier calls this once per
        // trial, and cloning `base` outright allocated a fresh matrix
        // every time (2 MiB per call at n = 4096).
        thread_local! {
            static SCRATCH: std::cell::RefCell<BitMatrix> =
                std::cell::RefCell::new(BitMatrix::new(0));
        }
        SCRATCH.with(|cell| {
            let mut live = cell.borrow_mut();
            live.copy_from(&self.base);
            for (p, &(s, d)) in self.pairs.iter().enumerate() {
                if !self.slots_of(p).any(|slot| self.slot_survives(slot, words)) {
                    live.clear(s, d);
                }
            }
            live.diameter(Some(faults))
        })
    }

    fn surviving_diameter_batch(&self, fault_sets: &[NodeSet]) -> Vec<Option<u32>> {
        #[cfg(feature = "obs-counters")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            crate::obs::BATCH_CALLS.fetch_add(1, Relaxed);
            crate::obs::BATCH_SETS.fetch_add(fault_sets.len() as u64, Relaxed);
        }
        thread_local! {
            static SCRATCH: std::cell::RefCell<BatchScratch> =
                std::cell::RefCell::new(BatchScratch::new());
        }
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.sync(self);
            let mut out = Vec::with_capacity(fault_sets.len());
            for faults in fault_sets {
                self.assert_capacity(faults);
                out.push(self.batch_eval_one(faults, scratch));
            }
            out
        })
    }

    fn cursor(&self) -> Box<dyn FaultCursor + '_> {
        Box::new(CompiledCursor {
            engine: self,
            state: self.epoch_state(),
        })
    }
}

/// The engine's incremental cursor: a borrowed wrapper around
/// [`EpochState`] that enforces the [`FaultCursor`] toggle discipline.
struct CompiledCursor<'a> {
    engine: &'a CompiledRoutes,
    state: EpochState,
}

impl FaultCursor for CompiledCursor<'_> {
    fn insert(&mut self, v: Node) {
        assert!(
            self.state.insert(self.engine, v),
            "node {v} is already faulty"
        );
    }

    fn remove(&mut self, v: Node) {
        assert!(self.state.remove(self.engine, v), "node {v} is not faulty");
    }

    fn diameter(&mut self) -> Option<u32> {
        self.state.diameter()
    }

    fn faults(&self) -> &NodeSet {
        self.state.faults()
    }
}

/// An *owned* incremental fault state over a [`CompiledRoutes`] engine —
/// the epoch-advance primitive behind the `ftr-serve` snapshot store.
///
/// [`RouteTable::cursor`] borrows the engine for its whole lifetime,
/// which a long-lived server holding the engine in an
/// [`std::sync::Arc`] cannot express. `EpochState` carries the same
/// per-slot kill counts, per-pair live counts and live route
/// [`BitMatrix`], but owns them outright; every mutation takes the
/// engine by reference instead. Applying a fault batch is
/// `O(routes through the toggled nodes)` — no recompilation, no route
/// re-walks — after which [`EpochState::live`] and
/// [`EpochState::faults`] are cheap to clone into an immutable epoch
/// snapshot.
///
/// # Example
///
/// ```
/// use ftr_core::{Compile, KernelRouting};
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let engine = KernelRouting::build(&g)?.routing().compile();
/// let mut state = engine.epoch_state();
/// assert!(state.insert(&engine, 3));
/// assert!(!state.insert(&engine, 3), "insert is idempotent");
/// let under_fault = state.diameter();
/// assert!(state.remove(&engine, 3));
/// assert_eq!(state.faults().len(), 0);
/// assert!(under_fault >= state.diameter());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EpochState {
    /// The `build_id` of the engine this state was created from.
    engine_id: u64,
    /// Per slot: how many current faults lie on the route's interior.
    kill: Vec<u32>,
    /// Per pair: how many of its slots have `kill == 0`.
    pair_live: Vec<u32>,
    /// The surviving route graph under the current fault set (arcs of
    /// pairs with at least one live slot; faulty endpoints are excluded
    /// by the diameter's alive-mask, not by clearing arcs).
    live: BitMatrix,
    faults: NodeSet,
}

impl CompiledRoutes {
    /// A fresh (fault-free) [`EpochState`] for this engine.
    pub fn epoch_state(&self) -> EpochState {
        EpochState {
            engine_id: self.build_id,
            kill: vec![0; self.slot_count()],
            pair_live: (0..self.pair_count())
                .map(|p| self.slots_of(p).len() as u32)
                .collect(),
            live: self.base.clone(),
            faults: NodeSet::new(self.n),
        }
    }
}

impl EpochState {
    fn check(&self, engine: &CompiledRoutes, v: Node) {
        assert_eq!(
            self.engine_id, engine.build_id,
            "epoch state used with a different engine"
        );
        assert!(
            (v as usize) < engine.n,
            "node {v} out of range for {} nodes",
            engine.n
        );
    }

    /// Marks `v` faulty; returns `false` (and changes nothing) if it
    /// already was. Touches only the routes through `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `engine` is not the engine this
    /// state was created from.
    pub fn insert(&mut self, engine: &CompiledRoutes, v: Node) -> bool {
        self.check(engine, v);
        if !self.faults.insert(v) {
            return false;
        }
        let range =
            engine.index_off[v as usize] as usize..engine.index_off[v as usize + 1] as usize;
        for &slot in &engine.index[range] {
            let slot = slot as usize;
            if self.kill[slot] == 0 {
                let p = engine.slot_pair[slot] as usize;
                self.pair_live[p] -= 1;
                if self.pair_live[p] == 0 {
                    let (s, d) = engine.pairs[p];
                    self.live.clear(s, d);
                }
            }
            self.kill[slot] += 1;
        }
        true
    }

    /// Marks `v` healthy again; returns `false` (and changes nothing) if
    /// it was not faulty.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `engine` is not the engine this
    /// state was created from.
    pub fn remove(&mut self, engine: &CompiledRoutes, v: Node) -> bool {
        self.check(engine, v);
        if !self.faults.remove(v) {
            return false;
        }
        let range =
            engine.index_off[v as usize] as usize..engine.index_off[v as usize + 1] as usize;
        for &slot in &engine.index[range] {
            let slot = slot as usize;
            self.kill[slot] -= 1;
            if self.kill[slot] == 0 {
                let p = engine.slot_pair[slot] as usize;
                self.pair_live[p] += 1;
                if self.pair_live[p] == 1 {
                    let (s, d) = engine.pairs[p];
                    self.live.set(s, d);
                }
            }
        }
        true
    }

    /// The current fault set.
    pub fn faults(&self) -> &NodeSet {
        &self.faults
    }

    /// Whether route slot `slot` survives the current fault set (no
    /// current fault lies on its interior) — the per-slot kill counter
    /// the toggles maintain, exposed for the audit searcher's pruning.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the engine's slot count.
    pub fn slot_live(&self, slot: usize) -> bool {
        self.kill[slot] == 0
    }

    /// The surviving route graph under the current faults: an arc per
    /// pair with at least one live route. Faulty *endpoints* stay in the
    /// matrix — exclude them with the fault set as an avoid-mask, as
    /// [`EpochState::diameter`] does.
    pub fn live(&self) -> &BitMatrix {
        &self.live
    }

    /// The surviving diameter under the current fault set (`None` means
    /// disconnection) — identical to
    /// [`RouteTable::surviving_diameter`] at the same fault set.
    pub fn diameter(&self) -> Option<u32> {
        self.live.diameter(Some(&self.faults))
    }
}

/// Route tables that can be compiled into the bitset engine.
///
/// The experiment harness and benches call [`Compile::compile`] once per
/// routing and run every verification on the compiled form.
pub trait Compile: RouteTable {
    /// Compiles this table into a [`CompiledRoutes`] engine.
    fn compile(&self) -> CompiledRoutes;
}

impl Compile for Routing {
    fn compile(&self) -> CompiledRoutes {
        CompiledRoutes::from_routing(self)
    }
}

impl Compile for MultiRouting {
    fn compile(&self) -> CompiledRoutes {
        CompiledRoutes::from_multirouting(self)
    }
}

impl Compile for CompiledRoutes {
    fn compile(&self) -> CompiledRoutes {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoutingKind, ToleranceClaim};
    use ftr_graph::{gen, Path, INFINITY};

    fn demo_routing() -> Routing {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            r.insert(Path::new(vec![a, b]).unwrap()).unwrap();
        }
        r.insert(Path::new(vec![0, 1, 2]).unwrap()).unwrap();
        r
    }

    #[test]
    fn compiled_surviving_matches_legacy_on_demo() {
        let r = demo_routing();
        let engine = r.compile();
        assert_eq!(engine.node_count(), 4);
        assert_eq!(engine.pair_count(), 10);
        for faulty in 0..4u32 {
            let faults = NodeSet::from_nodes(4, [faulty]);
            let slow = r.surviving(&faults);
            let fast = engine.surviving(&faults);
            for x in 0..4 {
                for y in 0..4 {
                    assert_eq!(slow.has_edge(x, y), fast.has_edge(x, y), "({x}, {y})");
                }
            }
            assert_eq!(slow.diameter(), fast.diameter());
            assert_eq!(engine.surviving_diameter(&faults), slow.diameter());
        }
    }

    #[test]
    fn cursor_tracks_toggles() {
        let r = demo_routing();
        let engine = r.compile();
        let mut cursor = RouteTable::cursor(&engine);
        assert_eq!(cursor.diameter(), Some(2));
        cursor.insert(1);
        assert_eq!(cursor.diameter(), Some(2)); // 0 -> 3 -> 2 detour
        cursor.insert(3);
        assert_eq!(cursor.diameter(), None); // 0 cut from 2
        cursor.remove(1);
        cursor.remove(3);
        assert_eq!(cursor.diameter(), Some(2), "toggles fully undo");
    }

    #[test]
    fn cursor_agrees_with_scratch_evaluation() {
        let g = gen::petersen();
        let kernel = crate::KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let mut cursor = RouteTable::cursor(&engine);
        for a in 0..10u32 {
            cursor.insert(a);
            for b in (a + 1)..10u32 {
                cursor.insert(b);
                let faults = NodeSet::from_nodes(10, [a, b]);
                assert_eq!(
                    cursor.diameter(),
                    kernel.routing().surviving_diameter(&faults),
                    "faults {{{a}, {b}}}"
                );
                cursor.remove(b);
            }
            cursor.remove(a);
        }
    }

    #[test]
    fn multirouting_bundles_need_every_route_dead() {
        let mut m = MultiRouting::new(4, RoutingKind::Bidirectional, 2);
        m.insert(Path::new(vec![0, 1, 2]).unwrap()).unwrap();
        m.insert(Path::new(vec![0, 3, 2]).unwrap()).unwrap();
        let engine = m.compile();
        assert_eq!(engine.pair_count(), 2);
        assert_eq!(engine.slot_count(), 4);
        let s = engine.surviving(&NodeSet::from_nodes(4, [1]));
        assert!(s.has_edge(0, 2), "detour through 3 survives");
        let s = engine.surviving(&NodeSet::from_nodes(4, [1, 3]));
        assert!(!s.has_edge(0, 2));
    }

    #[test]
    fn faulty_endpoint_removes_node_not_just_routes() {
        let engine = demo_routing().compile();
        let faults = NodeSet::from_nodes(4, [0]);
        let s = engine.surviving(&faults);
        assert_eq!(s.surviving_count(), 3);
        assert_eq!(s.distance(0, 2), INFINITY);
        assert_eq!(engine.surviving_diameter(&faults), Some(2));
    }

    #[test]
    fn verify_claim_through_engine() {
        let g = gen::petersen();
        let kernel = crate::KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let report = crate::verify_tolerance(&engine, 2, crate::FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&kernel.guarantee_theorem_3().claim()));
        let absurd = ToleranceClaim {
            diameter: 0,
            faults: 2,
        };
        assert!(!report.satisfies(&absurd));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn mismatched_fault_capacity_panics() {
        let engine = demo_routing().compile();
        let _ = engine.surviving(&NodeSet::new(9));
    }

    #[test]
    fn epoch_state_toggles_are_idempotent_and_undo() {
        let engine = demo_routing().compile();
        let mut state = engine.epoch_state();
        let fresh = state.clone();
        assert_eq!(state.diameter(), Some(2));
        assert!(state.insert(&engine, 1));
        assert!(!state.insert(&engine, 1), "double insert is a no-op");
        assert_eq!(state.faults().len(), 1);
        assert_eq!(state.diameter(), Some(2)); // 0 -> 3 -> 2 detour
        assert!(state.insert(&engine, 3));
        assert_eq!(state.diameter(), None);
        assert!(state.remove(&engine, 1));
        assert!(!state.remove(&engine, 1), "double remove is a no-op");
        assert!(state.remove(&engine, 3));
        assert_eq!(state.kill, fresh.kill, "toggles fully undo");
        assert_eq!(state.pair_live, fresh.pair_live);
        assert_eq!(state.live, fresh.live);
    }

    #[test]
    fn epoch_state_agrees_with_scratch_evaluation() {
        let g = gen::petersen();
        let kernel = crate::KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        let mut state = engine.epoch_state();
        for a in 0..10u32 {
            state.insert(&engine, a);
            for b in (a + 1)..10u32 {
                state.insert(&engine, b);
                let faults = NodeSet::from_nodes(10, [a, b]);
                assert_eq!(
                    state.diameter(),
                    kernel.routing().surviving_diameter(&faults),
                    "faults {{{a}, {b}}}"
                );
                // The live matrix matches the surviving graph arc set on
                // healthy endpoints.
                let s = engine.surviving(&faults);
                for x in 0..10 {
                    for y in 0..10 {
                        if x != y && !faults.contains(x) && !faults.contains(y) {
                            assert_eq!(state.live().has(x, y), s.has_edge(x, y), "({x}, {y})");
                        }
                    }
                }
                state.remove(&engine, b);
            }
            state.remove(&engine, a);
        }
    }

    #[test]
    #[should_panic(expected = "different engine")]
    fn epoch_state_rejects_foreign_engine() {
        let engine = demo_routing().compile();
        let other = gen::petersen();
        let other_engine = crate::KernelRouting::build(&other)
            .unwrap()
            .routing()
            .compile();
        let mut state = engine.epoch_state();
        state.insert(&other_engine, 0);
    }
}

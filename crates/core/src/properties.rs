//! The paper's intermediate *properties*, machine-checkable.
//!
//! Each main theorem factors through a named property of the surviving
//! graph (Lemmas 6/8/11/18/21 prove property ⇒ bound; Lemmas 7/9/12/19/22
//! prove construction ⇒ property). The end-to-end bounds are verified by
//! [`crate::verify_tolerance`]; this module checks the *property* half,
//! so a failure pinpoints which lemma an implementation change broke.
//!
//! All checkers quantify over non-faulty nodes of a given
//! [`SurvivingGraph`], mirroring the paper's "for any fault distribution,
//! as long as |F| ≤ t".

use ftr_graph::{Node, NodeSet, INFINITY};

use crate::SurvivingGraph;

fn alive(s: &SurvivingGraph, v: Node) -> bool {
    !s.faults().contains(v)
}

fn nodes(s: &SurvivingGraph) -> impl Iterator<Item = Node> + '_ {
    (0..s.digraph().node_count() as Node).filter(move |&v| alive(s, v))
}

/// Property CIRC 1 (Section 4): every non-faulty node outside the
/// concentrator `m` has some non-faulty member within distance 2 in the
/// surviving graph.
pub fn circ_1(s: &SurvivingGraph, m: &[Node]) -> bool {
    let members = NodeSet::from_nodes(s.digraph().node_count(), m.iter().copied());
    nodes(s)
        .filter(|&x| !members.contains(x))
        .all(|x| m.iter().any(|&y| alive(s, y) && s.distance(x, y) <= 2))
}

/// Property CIRC 2 (Section 4): every two non-faulty concentrator
/// members are within distance 2 of each other.
pub fn circ_2(s: &SurvivingGraph, m: &[Node]) -> bool {
    m.iter().filter(|&&x| alive(s, x)).all(|&x| {
        m.iter()
            .filter(|&&y| alive(s, y) && y != x)
            .all(|&y| s.distance(x, y) <= 2)
    })
}

/// Property CIRC (Lemma 8): every two non-faulty nodes share a common
/// non-faulty concentrator member within distance 3 of both.
pub fn circ_common(s: &SurvivingGraph, m: &[Node]) -> bool {
    common_relay_within(s, m, 3)
}

/// Property T-CIRC (Lemma 11): every two non-faulty nodes share a
/// common non-faulty concentrator member within distance 2 of both.
pub fn t_circ(s: &SurvivingGraph, m: &[Node]) -> bool {
    common_relay_within(s, m, 2)
}

fn common_relay_within(s: &SurvivingGraph, m: &[Node], bound: u32) -> bool {
    let live: Vec<Node> = m.iter().copied().filter(|&z| alive(s, z)).collect();
    // distances from each live member (bidirectional routings make
    // dist(x, z) = dist(z, x), which these properties assume)
    let dists: Vec<Vec<u32>> = live
        .iter()
        .map(|&z| s.digraph().bfs_distances(z, Some(s.faults())))
        .collect();
    let all: Vec<Node> = nodes(s).collect();
    for (i, &x) in all.iter().enumerate() {
        for &y in &all[i + 1..] {
            let ok = live
                .iter()
                .enumerate()
                .any(|(zi, _)| dists[zi][x as usize] <= bound && dists[zi][y as usize] <= bound);
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Properties B-POL 1/2 (Section 5): every non-faulty node outside the
/// pole set has a *direct surviving route to* some non-faulty pole
/// member (distance exactly 1, in the x→pole direction).
pub fn b_pol_to_pole(s: &SurvivingGraph, pole: &[Node]) -> bool {
    let members = NodeSet::from_nodes(s.digraph().node_count(), pole.iter().copied());
    nodes(s)
        .filter(|&x| !members.contains(x))
        .all(|x| pole.iter().any(|&y| alive(s, y) && s.has_edge(x, y)))
}

/// Property B-POL 3 (Section 5): every non-faulty node outside
/// `M = M1 ∪ M2` is reachable *from* some non-faulty member by a direct
/// surviving route (distance 1 in the pole→x direction).
pub fn b_pol_from_pole(s: &SurvivingGraph, m1: &[Node], m2: &[Node]) -> bool {
    let n = s.digraph().node_count();
    let members = NodeSet::from_nodes(n, m1.iter().chain(m2).copied());
    nodes(s).filter(|&x| !members.contains(x)).all(|x| {
        m1.iter()
            .chain(m2)
            .any(|&y| alive(s, y) && s.has_edge(y, x))
    })
}

/// Property B-POL 4 / 2B-POL 2 (Section 5): non-faulty nodes within the
/// same pole set are within distance 2 of each other.
pub fn b_pol_intra_pole(s: &SurvivingGraph, pole: &[Node]) -> bool {
    circ_2(s, pole)
}

/// Property 2B-POL 3 (Section 5): every non-faulty `M1` member has a
/// direct surviving route to some non-faulty `M2` member (the
/// asymmetric cross-link of the bidirectional bipolar routing).
pub fn b_pol_cross(s: &SurvivingGraph, m1: &[Node], m2: &[Node]) -> bool {
    m1.iter()
        .filter(|&&x| alive(s, x))
        .all(|&x| m2.iter().any(|&y| alive(s, y) && s.has_edge(x, y)))
}

/// The diameter implication the lemmas conclude with: every ordered
/// pair of non-faulty nodes is within `bound` (convenience used by the
/// property tests; equivalent to `diameter() <= bound`).
pub fn diameter_within(s: &SurvivingGraph, bound: u32) -> bool {
    match s.diameter() {
        Some(d) => d <= bound,
        None => false,
    }
}

/// Distance helper mirroring the paper's `dist(x, y, R(G,ρ)/F)`;
/// re-exported for tests that spell out lemma statements literally.
pub fn dist(s: &SurvivingGraph, x: Node, y: Node) -> u32 {
    if !alive(s, x) || !alive(s, y) {
        INFINITY
    } else {
        s.distance(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BipolarRouting, CircularRouting, RouteTable, RoutingKind, TriCircularRouting,
        TriCircularVariant,
    };
    use ftr_graph::gen;

    /// Enumerate all fault sets of size <= f over n nodes.
    fn fault_sets(n: usize, f: usize) -> Vec<NodeSet> {
        let mut out = vec![NodeSet::new(n)];
        if f >= 1 {
            for a in 0..n as Node {
                out.push(NodeSet::from_nodes(n, [a]));
            }
        }
        if f >= 2 {
            for a in 0..n as Node {
                for b in (a + 1)..n as Node {
                    out.push(NodeSet::from_nodes(n, [a, b]));
                }
            }
        }
        out
    }

    #[test]
    fn lemma_7_circular_satisfies_circ_1_and_2() {
        // Lemma 7 is stated for K = 2t+1; build that variant.
        let g = gen::cycle(15).unwrap(); // t = 1, K = 3 = 2t+1
        let circ = CircularRouting::build_with_size(&g, 3).unwrap();
        let m = circ.concentrator().members().to_vec();
        for faults in fault_sets(15, 1) {
            let s = circ.routing().surviving(&faults);
            assert!(circ_1(&s, &m), "CIRC 1 fails under {faults:?}");
            assert!(circ_2(&s, &m), "CIRC 2 fails under {faults:?}");
        }
    }

    #[test]
    fn lemma_9_minimal_circular_satisfies_property_circ() {
        let g = gen::harary(3, 20).unwrap(); // t = 2 even, K = 3 = t+1
        let circ = CircularRouting::build(&g).unwrap();
        let m = circ.concentrator().members().to_vec();
        for faults in fault_sets(20, 2) {
            let s = circ.routing().surviving(&faults);
            assert!(circ_common(&s, &m), "Property CIRC fails under {faults:?}");
            // Lemma 8: Property CIRC ⇒ (6, t)
            assert!(diameter_within(&s, 6));
        }
    }

    #[test]
    fn lemma_12_tricircular_satisfies_t_circ() {
        let g = gen::cycle(45).unwrap(); // t = 1
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
        let m = tri.concentrator().members().to_vec();
        for faults in fault_sets(45, 1) {
            let s = tri.routing().surviving(&faults);
            assert!(t_circ(&s, &m), "Property T-CIRC fails under {faults:?}");
            // Lemma 11: Property T-CIRC ⇒ (4, t)
            assert!(diameter_within(&s, 4));
        }
    }

    #[test]
    fn lemma_19_unidirectional_bipolar_satisfies_b_pol_1_to_4() {
        let g = gen::cycle(14).unwrap(); // t = 1
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        let (m1, m2) = (b.m1().to_vec(), b.m2().to_vec());
        for faults in fault_sets(14, 1) {
            let s = b.routing().surviving(&faults);
            assert!(b_pol_to_pole(&s, &m1), "B-POL 1 fails under {faults:?}");
            assert!(b_pol_to_pole(&s, &m2), "B-POL 2 fails under {faults:?}");
            assert!(
                b_pol_from_pole(&s, &m1, &m2),
                "B-POL 3 fails under {faults:?}"
            );
            assert!(
                b_pol_intra_pole(&s, &m1),
                "B-POL 4 (M1) fails under {faults:?}"
            );
            assert!(
                b_pol_intra_pole(&s, &m2),
                "B-POL 4 (M2) fails under {faults:?}"
            );
            // Lemma 18: B-POL 1..4 ⇒ (4, t)
            assert!(diameter_within(&s, 4));
        }
    }

    #[test]
    fn lemma_22_bidirectional_bipolar_satisfies_2b_pol_1_to_3() {
        let g = gen::cycle(14).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Bidirectional).unwrap();
        let (m1, m2) = (b.m1().to_vec(), b.m2().to_vec());
        let m: Vec<Node> = m1.iter().chain(&m2).copied().collect();
        for faults in fault_sets(14, 1) {
            let s = b.routing().surviving(&faults);
            // 2B-POL 1: every x outside M has a direct link into M
            assert!(b_pol_to_pole(&s, &m), "2B-POL 1 fails under {faults:?}");
            assert!(
                b_pol_intra_pole(&s, &m1),
                "2B-POL 2 (M1) fails under {faults:?}"
            );
            assert!(
                b_pol_intra_pole(&s, &m2),
                "2B-POL 2 (M2) fails under {faults:?}"
            );
            assert!(b_pol_cross(&s, &m1, &m2), "2B-POL 3 fails under {faults:?}");
            // Lemma 21: 2B-POL 1..3 ⇒ (5, t)
            assert!(diameter_within(&s, 5));
        }
    }

    #[test]
    fn dist_mirrors_surviving_distance() {
        let g = gen::cycle(14).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Bidirectional).unwrap();
        let faults = NodeSet::from_nodes(14, [2]);
        let s = b.routing().surviving(&faults);
        assert_eq!(dist(&s, 0, 2), INFINITY, "faulty endpoint");
        assert_eq!(dist(&s, 0, 1), s.distance(0, 1));
    }
}
